//! Property tests: the vectorized, dictionary-aware kernels must be
//! byte-identical to the retained scalar reference implementations
//! (`kernels::reference`) over seeded random data — all comparison ops,
//! nulls, and batch sizes straddling the 64-element lane boundary.
//!
//! Two contracts are checked:
//!
//! * **plain columns**: vectorized output `==` reference output
//!   representationally (same dense values, same validity);
//! * **dictionary columns**: dict-aware kernel output, materialized, `==`
//!   the plain kernel run on the materialized input.

use lakehouse_columnar::kernels::reference as scalar;
use lakehouse_columnar::kernels::{self, Aggregator, CmpOp};
use lakehouse_columnar::{Bitmap, Column, DataType, DictColumn, Field, RecordBatch, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SIZES: &[usize] = &[1, 63, 64, 65, 1024];

const ALL_OPS: &[CmpOp] = &[
    CmpOp::Eq,
    CmpOp::NotEq,
    CmpOp::Lt,
    CmpOp::LtEq,
    CmpOp::Gt,
    CmpOp::GtEq,
];

/// Deterministic per-(size, case) RNG so failures reproduce exactly.
fn rng_for(seed: u64, size: usize, case: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ (size as u64).wrapping_mul(0x9e37_79b9) ^ case)
}

fn random_validity(rng: &mut StdRng, n: usize) -> Option<Bitmap> {
    match rng.gen_range(0..3) {
        0 => None,
        _ => {
            let bools: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.8)).collect();
            Some(Bitmap::from_bools(&bools))
        }
    }
}

fn random_i64(rng: &mut StdRng, n: usize) -> Column {
    let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-50..50)).collect();
    Column::Int64(values, random_validity(rng, n))
}

fn random_f64(rng: &mut StdRng, n: usize) -> Column {
    let values: Vec<f64> = (0..n)
        .map(|_| match rng.gen_range(0..8) {
            0 => 0.0,
            1 => -0.0,
            _ => rng.gen_range(-10.0..10.0),
        })
        .collect();
    Column::Float64(values, random_validity(rng, n))
}

fn random_strings(rng: &mut StdRng, n: usize, cardinality: usize) -> Vec<String> {
    (0..n)
        .map(|_| format!("v{}", rng.gen_range(0..cardinality.max(1))))
        .collect()
}

fn random_utf8(rng: &mut StdRng, n: usize) -> Column {
    let card = rng.gen_range(1..8usize);
    Column::Utf8(random_strings(rng, n, card), random_validity(rng, n))
}

fn random_bool(rng: &mut StdRng, n: usize) -> Column {
    let values: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    Column::Bool(values, random_validity(rng, n))
}

fn random_dict(rng: &mut StdRng, n: usize) -> DictColumn {
    let card = rng.gen_range(1..6usize);
    let values = random_strings(rng, n, card);
    DictColumn::encode(&values, random_validity(rng, n)).expect("encode")
}

/// Representational equality: same variant, same dense values, same validity.
/// (`PartialEq` on plain pairs already is representational; this helper just
/// names the intent at call sites.)
fn assert_identical(fast: &Column, slow: &Column, what: &str) {
    assert_eq!(fast, slow, "{what}: vectorized != reference");
    assert_eq!(
        fast.validity().is_some(),
        slow.validity().is_some(),
        "{what}: validity presence differs"
    );
}

#[test]
fn cmp_columns_matches_reference() {
    for &n in SIZES {
        for case in 0..4u64 {
            let mut rng = rng_for(0xc31, n, case);
            let pairs = [
                (random_i64(&mut rng, n), random_i64(&mut rng, n)),
                (random_f64(&mut rng, n), random_f64(&mut rng, n)),
                (random_utf8(&mut rng, n), random_utf8(&mut rng, n)),
            ];
            for (l, r) in &pairs {
                for &op in ALL_OPS {
                    let fast = kernels::cmp_columns(op, l, r).expect("vectorized");
                    let slow = scalar::cmp_columns_ref(op, l, r).expect("reference");
                    assert_identical(&fast, &slow, &format!("cmp_columns {op:?} n={n}"));
                }
            }
        }
    }
}

#[test]
fn cmp_scalar_matches_reference() {
    for &n in SIZES {
        for case in 0..4u64 {
            let mut rng = rng_for(0x5ca1a, n, case);
            let cases = [
                (
                    random_i64(&mut rng, n),
                    Value::Int64(rng.gen_range(-50..50)),
                ),
                (
                    random_f64(&mut rng, n),
                    Value::Float64(rng.gen_range(-10.0..10.0)),
                ),
                (
                    random_utf8(&mut rng, n),
                    Value::Utf8(format!("v{}", rng.gen_range(0..8))),
                ),
            ];
            for (col, v) in &cases {
                for &op in ALL_OPS {
                    let fast = kernels::cmp_column_scalar(op, col, v).expect("vectorized");
                    let slow = scalar::cmp_column_scalar_ref(op, col, v).expect("reference");
                    assert_identical(&fast, &slow, &format!("cmp_scalar {op:?} n={n}"));
                }
            }
        }
    }
}

#[test]
fn dict_cmp_matches_plain_on_materialized() {
    for &n in SIZES {
        for case in 0..4u64 {
            let mut rng = rng_for(0xd1c7, n, case);
            let d = random_dict(&mut rng, n);
            let dict_col = Column::Dict(d.clone());
            let plain = d.materialize();
            for &op in ALL_OPS {
                // Scalar comparisons: in-dictionary and out-of-dictionary
                // needles.
                for needle in ["v0", "nope"] {
                    let v = Value::Utf8(needle.to_string());
                    let fast = kernels::cmp_column_scalar(op, &dict_col, &v).expect("dict");
                    let slow = scalar::cmp_column_scalar_ref(op, &plain, &v).expect("plain ref");
                    assert_identical(&fast, &slow, &format!("dict cmp_scalar {op:?} n={n}"));
                }
                // Column-vs-column, dict on either side.
                let other = random_utf8(&mut rng, n);
                let fast = kernels::cmp_columns(op, &dict_col, &other).expect("dict lhs");
                let slow = scalar::cmp_columns_ref(op, &plain, &other).expect("plain ref");
                assert_identical(&fast, &slow, &format!("dict cmp_columns {op:?} n={n}"));
            }
        }
    }
}

#[test]
fn boolean_kernels_match_reference() {
    for &n in SIZES {
        for case in 0..6u64 {
            let mut rng = rng_for(0xb001, n, case);
            let l = random_bool(&mut rng, n);
            let r = random_bool(&mut rng, n);
            assert_identical(
                &kernels::and_kleene(&l, &r).expect("and"),
                &scalar::and_kleene_ref(&l, &r).expect("and ref"),
                &format!("and_kleene n={n}"),
            );
            assert_identical(
                &kernels::or_kleene(&l, &r).expect("or"),
                &scalar::or_kleene_ref(&l, &r).expect("or ref"),
                &format!("or_kleene n={n}"),
            );
            let sel = kernels::to_selection(&l).expect("to_selection");
            let sel_ref = scalar::to_selection_ref(&l).expect("to_selection ref");
            assert_eq!(sel, sel_ref, "to_selection n={n}");
        }
    }
}

#[test]
fn filter_and_take_match_reference() {
    for &n in SIZES {
        for case in 0..4u64 {
            let mut rng = rng_for(0xf117e4, n, case);
            let batch = RecordBatch::try_new(
                Schema::new(vec![
                    Field::new("i", DataType::Int64, true),
                    Field::new("f", DataType::Float64, true),
                    Field::new("s", DataType::Utf8, true),
                    Field::new("d", DataType::Utf8, true),
                ]),
                vec![
                    random_i64(&mut rng, n),
                    random_f64(&mut rng, n),
                    random_utf8(&mut rng, n),
                    Column::Dict(random_dict(&mut rng, n)),
                ],
            )
            .expect("batch");
            let mask_bools: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
            let mask = Bitmap::from_bools(&mask_bools);
            let fast = kernels::filter_batch(&batch, &mask).expect("filter");
            let slow = scalar::filter_batch_ref(&batch, &mask).expect("filter ref");
            for (cf, cs) in fast.columns().iter().zip(slow.columns()) {
                assert_eq!(cf.materialize(), cs.materialize(), "filter_batch n={n}");
            }
            // Plain columns must match representationally, not just logically.
            for i in 0..3 {
                assert_identical(fast.column(i), slow.column(i), &format!("filter col {i}"));
            }

            let indices: Vec<usize> = (0..n.min(200)).map(|_| rng.gen_range(0..n)).collect();
            let fast = kernels::take_batch(&batch, &indices).expect("take");
            let slow = scalar::take_batch_ref(&batch, &indices).expect("take ref");
            for i in 0..3 {
                assert_identical(fast.column(i), slow.column(i), &format!("take col {i}"));
            }
            assert_eq!(
                fast.column(3).materialize(),
                slow.column(3).materialize(),
                "take dict n={n}"
            );
        }
    }
}

#[test]
fn hash_kernels_match_reference() {
    for &n in SIZES {
        for case in 0..4u64 {
            let mut rng = rng_for(0x4a54, n, case);
            let d = random_dict(&mut rng, n);
            let cols = vec![
                random_i64(&mut rng, n),
                random_f64(&mut rng, n),
                random_utf8(&mut rng, n),
                random_bool(&mut rng, n),
                d.materialize(),
            ];
            for c in &cols {
                assert_eq!(
                    kernels::hash_column(c).expect("hash"),
                    scalar::hash_column_ref(c).expect("hash ref"),
                    "hash_column n={n}"
                );
            }
            // Dictionary column hashes like the strings it encodes.
            assert_eq!(
                kernels::hash_column(&Column::Dict(d.clone())).expect("dict hash"),
                scalar::hash_column_ref(&d.materialize()).expect("plain ref"),
                "dict hash n={n}"
            );
            let batch = RecordBatch::try_new(
                Schema::new(vec![
                    Field::new("a", DataType::Int64, true),
                    Field::new("b", DataType::Utf8, true),
                ]),
                vec![cols[0].clone(), Column::Dict(d)],
            )
            .expect("batch");
            assert_eq!(
                kernels::hash_batch_rows(&batch, &[0, 1]).expect("rows"),
                scalar::hash_batch_rows_ref(&batch, &[0, 1]).expect("rows ref"),
                "hash_batch_rows n={n}"
            );
        }
    }
}

#[test]
fn aggregates_match_reference() {
    let aggs = [
        Aggregator::Count,
        Aggregator::CountStar,
        Aggregator::CountDistinct,
        Aggregator::Sum,
        Aggregator::Min,
        Aggregator::Max,
        Aggregator::Avg,
    ];
    for &n in SIZES {
        for case in 0..4u64 {
            let mut rng = rng_for(0xa66, n, case);
            let numeric = [random_i64(&mut rng, n), random_f64(&mut rng, n)];
            for col in &numeric {
                for agg in aggs {
                    let fast = kernels::aggregate_column(agg, col).expect("agg");
                    let slow = scalar::aggregate_column_ref(agg, col).expect("agg ref");
                    assert_eq!(fast, slow, "{agg:?} n={n}");
                }
            }
            // Strings: everything except SUM/AVG, on plain and dict forms.
            let d = random_dict(&mut rng, n);
            let plain = d.materialize();
            for agg in [
                Aggregator::Count,
                Aggregator::CountStar,
                Aggregator::CountDistinct,
                Aggregator::Min,
                Aggregator::Max,
            ] {
                let slow = scalar::aggregate_column_ref(agg, &plain).expect("agg ref");
                assert_eq!(
                    kernels::aggregate_column(agg, &plain).expect("plain agg"),
                    slow,
                    "{agg:?} utf8 n={n}"
                );
                assert_eq!(
                    kernels::aggregate_column(agg, &Column::Dict(d.clone())).expect("dict agg"),
                    slow,
                    "{agg:?} dict n={n}"
                );
            }
        }
    }
}

#[test]
fn grouped_aggregation_matches_per_row_updates() {
    use lakehouse_columnar::kernels::{update_grouped, AggState, Grouper};
    for &n in SIZES {
        for case in 0..3u64 {
            let mut rng = rng_for(0x62b, n, case);
            let key_plain = random_utf8(&mut rng, n);
            let dict_values = random_strings(&mut rng, n, 4);
            let key_dict = Column::Dict(
                DictColumn::encode(&dict_values, random_validity(&mut rng, n)).expect("encode"),
            );
            let arg = random_i64(&mut rng, n);
            for key in [&key_plain, &key_dict] {
                let mut grouper = Grouper::new();
                let mut ids = Vec::new();
                grouper
                    .group_ids(std::slice::from_ref(key), &mut ids)
                    .expect("group_ids");
                for agg in [Aggregator::Sum, Aggregator::Count, Aggregator::Min] {
                    let mut fast = vec![AggState::new(agg); grouper.num_groups()];
                    update_grouped(&mut fast, &ids, Some(&arg)).expect("update_grouped");
                    let mut slow = vec![AggState::new(agg); grouper.num_groups()];
                    for (i, &g) in ids.iter().enumerate() {
                        slow[g as usize]
                            .update(&arg.get(i).expect("get"))
                            .expect("update");
                    }
                    for (f, s) in fast.iter().zip(&slow) {
                        assert_eq!(
                            f.finish(DataType::Int64).expect("finish"),
                            s.finish(DataType::Int64).expect("finish"),
                            "grouped {agg:?} n={n}"
                        );
                    }
                }
            }
        }
    }
}
