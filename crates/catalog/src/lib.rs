//! # lakehouse-catalog
//!
//! A Nessie-like data catalog: **git semantics for data** (paper §4.3).
//!
//! The catalog versions the *entire* lakehouse namespace at once — every
//! commit captures a consistent view of all tables — which is exactly why the
//! paper picked Nessie: transformation runs touch multiple artifacts and need
//! an atomic, transactional merge.
//!
//! Concepts:
//!
//! * [`ContentRef`] — what a table name points to (metadata location +
//!   snapshot id);
//! * [`Commit`] — an immutable, content-addressed change set with parent
//!   commits (a DAG, exactly like git);
//! * [`Reference`] — a named branch (mutable head) or tag (frozen);
//! * [`Catalog`] — the store-backed catalog with optimistic-concurrency
//!   commits (CAS on the reference document) and three-way merges with
//!   key-level conflict detection.
//!
//! The *transform-audit-write* pattern of the paper maps to: create an
//! ephemeral branch → run the DAG committing artifacts there → merge into the
//! target branch only if every step and expectation passed → delete the
//! ephemeral branch (paper Fig. 4).

pub mod catalog;
pub mod commit;
pub mod error;
pub mod refs;
pub mod state;

pub use catalog::Catalog;
pub use commit::{Commit, CommitId, ContentRef, Operation};
pub use error::{CatalogError, Result};
pub use refs::{RefKind, Reference};
pub use state::CatalogState;
