//! Error type for catalog operations.

use lakehouse_store::StoreError;
use std::fmt;

/// Errors from catalog operations.
#[derive(Debug)]
pub enum CatalogError {
    /// The named reference (branch/tag) does not exist.
    RefNotFound(String),
    /// A reference with this name already exists.
    RefAlreadyExists(String),
    /// The named commit does not exist.
    CommitNotFound(String),
    /// Optimistic concurrency failure: the branch head moved during a commit.
    ConcurrentUpdate(String),
    /// A commit's bounded CAS loop lost the race every time: `attempts`
    /// tries (each with backoff) all found the head moved underneath them.
    CommitContended { branch: String, attempts: u32 },
    /// A merge found keys changed on both sides with different contents.
    MergeConflict { keys: Vec<String> },
    /// Tags are immutable; committing to one is an error.
    TagIsImmutable(String),
    /// A table key lookup failed.
    KeyNotFound(String),
    /// Catalog metadata failed to parse.
    Corrupt(String),
    /// Underlying object-store failure.
    Store(StoreError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RefNotFound(r) => write!(f, "reference not found: {r}"),
            Self::RefAlreadyExists(r) => write!(f, "reference already exists: {r}"),
            Self::CommitNotFound(c) => write!(f, "commit not found: {c}"),
            Self::ConcurrentUpdate(r) => {
                write!(f, "concurrent update on reference {r}; retry the commit")
            }
            Self::CommitContended { branch, attempts } => write!(
                f,
                "commit to {branch} contended: lost the CAS race {attempts} times; \
                 retry under lighter write load"
            ),
            Self::MergeConflict { keys } => {
                write!(f, "merge conflict on keys: {}", keys.join(", "))
            }
            Self::TagIsImmutable(t) => write!(f, "cannot commit to tag {t}"),
            Self::KeyNotFound(k) => write!(f, "table key not found: {k}"),
            Self::Corrupt(msg) => write!(f, "corrupt catalog metadata: {msg}"),
            Self::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CatalogError {
    fn from(e: StoreError) -> Self {
        CatalogError::Store(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CatalogError>;
