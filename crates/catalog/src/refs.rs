//! Named references: branches (mutable heads) and tags (frozen pointers).

use crate::commit::CommitId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Whether a reference can move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefKind {
    Branch,
    Tag,
}

/// A named pointer into the commit DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reference {
    pub name: String,
    pub kind: RefKind,
    /// Head commit; `None` only for a freshly-initialized empty branch.
    pub head: Option<CommitId>,
}

/// The single reference document, CAS-swapped atomically on every ref
/// mutation (Nessie similarly serializes ref updates through its version
/// store). BTreeMap keeps serialization canonical.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefDocument {
    pub refs: BTreeMap<String, Reference>,
}

impl RefDocument {
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("ref document serialization cannot fail")
    }

    pub fn from_bytes(bytes: &[u8]) -> Option<RefDocument> {
        serde_json::from_slice(bytes).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_round_trip() {
        let mut doc = RefDocument::default();
        doc.refs.insert(
            "main".into(),
            Reference {
                name: "main".into(),
                kind: RefKind::Branch,
                head: Some("abc123".into()),
            },
        );
        doc.refs.insert(
            "v1".into(),
            Reference {
                name: "v1".into(),
                kind: RefKind::Tag,
                head: Some("def456".into()),
            },
        );
        let rt = RefDocument::from_bytes(&doc.to_bytes()).unwrap();
        assert_eq!(doc, rt);
    }

    #[test]
    fn canonical_bytes_stable() {
        let mut a = RefDocument::default();
        let mut b = RefDocument::default();
        for name in ["z", "a", "m"] {
            let r = Reference {
                name: name.into(),
                kind: RefKind::Branch,
                head: None,
            };
            a.refs.insert(name.into(), r.clone());
        }
        for name in ["a", "m", "z"] {
            let r = Reference {
                name: name.into(),
                kind: RefKind::Branch,
                head: None,
            };
            b.refs.insert(name.into(), r.clone());
        }
        assert_eq!(a.to_bytes(), b.to_bytes());
    }
}
