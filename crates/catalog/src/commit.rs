//! Immutable, content-addressed commits forming the catalog DAG.

use serde::{Deserialize, Serialize};

/// A commit identifier: hex-encoded content hash of the commit document.
pub type CommitId = String;

/// What a table key points to. Mirrors Nessie's Iceberg content: the
/// location of the table-metadata object plus the snapshot that was current
/// when the commit was made.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentRef {
    /// Object-store path of the table metadata document.
    pub metadata_location: String,
    /// Snapshot id within that metadata that this commit pins.
    pub snapshot_id: u64,
}

impl ContentRef {
    pub fn new(metadata_location: impl Into<String>, snapshot_id: u64) -> Self {
        ContentRef {
            metadata_location: metadata_location.into(),
            snapshot_id,
        }
    }
}

/// One change within a commit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "op")]
pub enum Operation {
    /// Create or update the content a key points to.
    Put { key: String, content: ContentRef },
    /// Remove a key.
    Delete { key: String },
}

impl Operation {
    /// The table key this operation touches.
    pub fn key(&self) -> &str {
        match self {
            Operation::Put { key, .. } | Operation::Delete { key } => key,
        }
    }
}

/// An immutable commit: parents (1 for normal commits, 2 for merges, 0 for
/// the root), a logical sequence number, provenance, and the operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Commit {
    pub parents: Vec<CommitId>,
    /// Monotonic logical sequence (max(parent.seq) + 1); gives a total-ish
    /// order for log display without wall clocks.
    pub seq: u64,
    pub author: String,
    pub message: String,
    pub operations: Vec<Operation>,
}

impl Commit {
    /// Serialize to canonical JSON bytes (serde_json preserves field order,
    /// so identical commits produce identical bytes and therefore ids).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("commit serialization cannot fail")
    }

    /// Parse from JSON bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Commit> {
        serde_json::from_slice(bytes).ok()
    }

    /// Content-addressed id: FNV-1a-128-style double hash, hex encoded.
    /// Deterministic across runs (part of the reproducibility invariant).
    pub fn id(&self) -> CommitId {
        let bytes = self.to_bytes();
        let h1 = fnv1a64(0xcbf29ce484222325, &bytes);
        // Second lane with a different seed for 128 bits total.
        let h2 = fnv1a64(h1 ^ 0x9e3779b97f4a7c15, &bytes);
        format!("{h1:016x}{h2:016x}")
    }
}

fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(msg: &str) -> Commit {
        Commit {
            parents: vec!["abc".into()],
            seq: 1,
            author: "test".into(),
            message: msg.into(),
            operations: vec![Operation::Put {
                key: "db.table".into(),
                content: ContentRef::new("meta/1.json", 42),
            }],
        }
    }

    #[test]
    fn id_is_deterministic_and_content_addressed() {
        assert_eq!(commit("a").id(), commit("a").id());
        assert_ne!(commit("a").id(), commit("b").id());
        assert_eq!(commit("a").id().len(), 32);
    }

    #[test]
    fn json_round_trip() {
        let c = commit("round trip");
        let rt = Commit::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(c, rt);
        assert_eq!(c.id(), rt.id());
    }

    #[test]
    fn bad_json_is_none() {
        assert!(Commit::from_bytes(b"{not json").is_none());
    }

    #[test]
    fn operation_key() {
        let p = Operation::Put {
            key: "k1".into(),
            content: ContentRef::new("m", 1),
        };
        let d = Operation::Delete { key: "k2".into() };
        assert_eq!(p.key(), "k1");
        assert_eq!(d.key(), "k2");
    }
}
