//! The store-backed catalog: optimistic commits, branches, tags, merges.

use crate::commit::{Commit, CommitId, ContentRef, Operation};
use crate::error::{CatalogError, Result};
use crate::refs::{RefDocument, RefKind, Reference};
use crate::state::CatalogState;
use bytes::Bytes;
use lakehouse_store::{Backoff, ObjectPath, ObjectStore, StoreError};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// The default branch name, created on `init`.
pub const MAIN_BRANCH: &str = "main";

const MAX_CAS_RETRIES: u32 = 16;

/// Backoff bounds for lost CAS races. A lost race means another writer
/// *succeeded*, so contention is productive — delays start small (the
/// re-read itself already costs a store round-trip) but still decorrelate
/// herds of committers under heavy write load.
const CAS_BACKOFF_BASE: Duration = Duration::from_millis(5);
const CAS_BACKOFF_CAP: Duration = Duration::from_millis(250);

/// Seeded decorrelated-jitter backoff between CAS attempts, charged to the
/// store's simulated clock (no wall-clock sleep; deterministic in tests).
struct CasBackoff<'a> {
    backoff: Backoff,
    store: &'a dyn ObjectStore,
    retries: Arc<lakehouse_obs::Counter>,
}

impl<'a> CasBackoff<'a> {
    fn new(store: &'a dyn ObjectStore, seed: u64) -> CasBackoff<'a> {
        CasBackoff {
            backoff: Backoff::new(CAS_BACKOFF_BASE, CAS_BACKOFF_CAP, seed),
            store,
            retries: lakehouse_obs::global().counter("catalog.cas_retries"),
        }
    }

    fn wait(&mut self) {
        self.retries.inc();
        let delay = self.backoff.next_delay();
        lakehouse_obs::recorder().record(
            lakehouse_obs::EventKind::CasRetry,
            "refs.json",
            delay.as_nanos() as u64,
        );
        if let Some(metrics) = self.store.store_metrics() {
            metrics.record_stall(delay);
        }
    }
}

/// Seed the per-commit backoff RNG from thread identity so concurrent
/// committers draw *different* jitter (the whole point of decorrelation)
/// while single-threaded tests stay deterministic.
fn backoff_seed() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    hasher.finish()
}

/// A git-like catalog persisted in an object store.
///
/// * Commits are immutable JSON objects at `<root>/commits/<id>.json`.
/// * All references live in one JSON document at `<root>/refs.json`, updated
///   with compare-and-swap — the only mutable object, which makes every ref
///   move atomic.
pub struct Catalog {
    store: Arc<dyn ObjectStore>,
    root: String,
    /// Replay cache: commit id → materialized state.
    state_cache: Mutex<HashMap<CommitId, CatalogState>>,
    /// Commits are immutable and content-addressed, so they are perfectly
    /// cacheable — this mirrors Nessie serving its version store from
    /// memory rather than hitting object storage per lookup.
    commit_cache: Mutex<HashMap<CommitId, Commit>>,
}

impl Catalog {
    /// Initialize a new catalog (creates an empty `main` branch). Errors if
    /// a catalog already exists at this root.
    pub fn init(store: Arc<dyn ObjectStore>, root: impl Into<String>) -> Result<Catalog> {
        let root = root.into();
        let catalog = Catalog {
            store,
            root,
            state_cache: Mutex::new(HashMap::new()),
            commit_cache: Mutex::new(HashMap::new()),
        };
        let mut doc = RefDocument::default();
        doc.refs.insert(
            MAIN_BRANCH.to_string(),
            Reference {
                name: MAIN_BRANCH.to_string(),
                kind: RefKind::Branch,
                head: None,
            },
        );
        catalog
            .store
            .put_if_matches(&catalog.refs_path()?, None, Bytes::from(doc.to_bytes()))
            .map_err(|e| match e {
                StoreError::PreconditionFailed(_) => {
                    CatalogError::RefAlreadyExists("catalog already initialized".into())
                }
                other => other.into(),
            })?;
        Ok(catalog)
    }

    /// Open an existing catalog.
    pub fn open(store: Arc<dyn ObjectStore>, root: impl Into<String>) -> Result<Catalog> {
        let catalog = Catalog {
            store,
            root: root.into(),
            state_cache: Mutex::new(HashMap::new()),
            commit_cache: Mutex::new(HashMap::new()),
        };
        catalog.read_refs()?; // validate existence
        Ok(catalog)
    }

    fn refs_path(&self) -> Result<ObjectPath> {
        Ok(ObjectPath::new(format!("{}/refs.json", self.root))?)
    }

    fn commit_path(&self, id: &str) -> Result<ObjectPath> {
        Ok(ObjectPath::new(format!("{}/commits/{id}.json", self.root))?)
    }

    /// Extra attempts after a catalog object fails to parse. Parse failure
    /// on an immutable (or CAS-updated) JSON object means the *bytes* are
    /// bad — a torn read, possibly sitting poisoned in a cache layer — so
    /// each retry first tells the store to drop any cached copy
    /// (`ObjectStore::invalidate_corrupt`) and re-reads the backend. Without
    /// chaos or a cache the re-reads see the same object and the same error
    /// surfaces; with them, this is what un-wedges a poisoned page.
    const CORRUPT_REREADS: u32 = 2;

    fn read_refs(&self) -> Result<(RefDocument, Bytes)> {
        let path = self.refs_path()?;
        let mut attempts = 0;
        loop {
            let bytes = self.store.get(&path).map_err(|e| match e {
                StoreError::NotFound(_) => CatalogError::Corrupt("catalog not initialized".into()),
                other => other.into(),
            })?;
            match RefDocument::from_bytes(&bytes) {
                Some(doc) => return Ok((doc, bytes)),
                None if attempts < Self::CORRUPT_REREADS => {
                    self.store.invalidate_corrupt(&path);
                    attempts += 1;
                }
                None => return Err(CatalogError::Corrupt("unparseable refs.json".into())),
            }
        }
    }

    /// All references, sorted by name.
    pub fn list_refs(&self) -> Result<Vec<Reference>> {
        let (doc, _) = self.read_refs()?;
        Ok(doc.refs.into_values().collect())
    }

    /// Look up one reference.
    pub fn get_ref(&self, name: &str) -> Result<Reference> {
        let (doc, _) = self.read_refs()?;
        doc.refs
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::RefNotFound(name.to_string()))
    }

    /// Fetch a commit by id (memoized: commits are immutable).
    pub fn get_commit(&self, id: &str) -> Result<Commit> {
        if let Some(c) = self.commit_cache.lock().get(id) {
            return Ok(c.clone());
        }
        let path = self.commit_path(id)?;
        let mut attempts = 0;
        let commit = loop {
            let bytes = self.store.get(&path).map_err(|e| match e {
                StoreError::NotFound(_) => CatalogError::CommitNotFound(id.to_string()),
                other => other.into(),
            })?;
            match Commit::from_bytes(&bytes) {
                Some(c) => break c,
                None if attempts < Self::CORRUPT_REREADS => {
                    self.store.invalidate_corrupt(&path);
                    attempts += 1;
                }
                None => {
                    return Err(CatalogError::Corrupt(format!("unparseable commit {id}")));
                }
            }
        };
        self.commit_cache
            .lock()
            .insert(id.to_string(), commit.clone());
        Ok(commit)
    }

    /// Create a branch pointing at `from`'s head (another ref name or a
    /// commit id); `None` starts an empty branch.
    pub fn create_branch(&self, name: &str, from: Option<&str>) -> Result<Reference> {
        self.create_ref(name, from, RefKind::Branch)
    }

    /// Create an immutable tag.
    pub fn create_tag(&self, name: &str, from: &str) -> Result<Reference> {
        self.create_ref(name, Some(from), RefKind::Tag)
    }

    fn create_ref(&self, name: &str, from: Option<&str>, kind: RefKind) -> Result<Reference> {
        let head = match from {
            Some(src) => self.resolve(src)?,
            None => None,
        };
        self.update_refs(|doc| {
            if doc.refs.contains_key(name) {
                return Err(CatalogError::RefAlreadyExists(name.to_string()));
            }
            let r = Reference {
                name: name.to_string(),
                kind,
                head: head.clone(),
            };
            doc.refs.insert(name.to_string(), r.clone());
            Ok(r)
        })
    }

    /// Delete a branch or tag. The commits remain (they may be reachable
    /// from other refs); garbage collection is out of scope, as in Nessie.
    pub fn delete_ref(&self, name: &str) -> Result<()> {
        self.update_refs(|doc| {
            doc.refs
                .remove(name)
                .map(|_| ())
                .ok_or_else(|| CatalogError::RefNotFound(name.to_string()))
        })
    }

    /// Resolve a ref name *or* commit id to a commit id.
    pub fn resolve(&self, name_or_id: &str) -> Result<Option<CommitId>> {
        let (doc, _) = self.read_refs()?;
        if let Some(r) = doc.refs.get(name_or_id) {
            return Ok(r.head.clone());
        }
        // Fall back to treating the string as a commit id.
        if self.store.exists(&self.commit_path(name_or_id)?) {
            return Ok(Some(name_or_id.to_string()));
        }
        Err(CatalogError::RefNotFound(name_or_id.to_string()))
    }

    /// Commit operations onto a branch (optimistic CAS with bounded retry;
    /// retries only re-read the head — if the head moved, the caller's view
    /// is stale and we surface `ConcurrentUpdate` unless the new head still
    /// matches what the commit was built against).
    pub fn commit(
        &self,
        branch: &str,
        author: &str,
        message: &str,
        operations: Vec<Operation>,
    ) -> Result<CommitId> {
        let mut backoff = CasBackoff::new(self.store.as_ref(), backoff_seed());
        for attempt in 0..MAX_CAS_RETRIES {
            if attempt > 0 {
                backoff.wait();
            }
            let (doc, expected_bytes) = self.read_refs()?;
            let reference = doc
                .refs
                .get(branch)
                .ok_or_else(|| CatalogError::RefNotFound(branch.to_string()))?;
            if reference.kind == RefKind::Tag {
                return Err(CatalogError::TagIsImmutable(branch.to_string()));
            }
            let parent = reference.head.clone();
            let seq = match &parent {
                Some(p) => self.get_commit(p)?.seq + 1,
                None => 0,
            };
            let commit = Commit {
                parents: parent.clone().into_iter().collect(),
                seq,
                author: author.to_string(),
                message: message.to_string(),
                operations: operations.clone(),
            };
            let id = commit.id();
            // Commits are content-addressed: writing the same commit twice
            // is idempotent, so a plain put is safe.
            self.store
                .put(&self.commit_path(&id)?, Bytes::from(commit.to_bytes()))?;
            self.commit_cache.lock().insert(id.clone(), commit.clone());
            let mut new_doc = doc.clone();
            new_doc.refs.get_mut(branch).expect("checked above").head = Some(id.clone());
            match self.store.put_if_matches(
                &self.refs_path()?,
                Some(&expected_bytes),
                Bytes::from(new_doc.to_bytes()),
            ) {
                Ok(()) => return Ok(id),
                Err(StoreError::PreconditionFailed(_)) => continue, // re-read and retry
                Err(e) => return Err(e.into()),
            }
        }
        Err(CatalogError::CommitContended {
            branch: branch.to_string(),
            attempts: MAX_CAS_RETRIES,
        })
    }

    /// First-parent commit log of a ref, newest first, up to `limit`.
    pub fn log(&self, name: &str, limit: usize) -> Result<Vec<(CommitId, Commit)>> {
        let mut out = Vec::new();
        let mut cursor = self.resolve(name)?;
        while let Some(id) = cursor {
            if out.len() >= limit {
                break;
            }
            let commit = self.get_commit(&id)?;
            cursor = commit.parents.first().cloned();
            out.push((id, commit));
        }
        Ok(out)
    }

    /// Materialize the table namespace visible at a ref or commit id.
    ///
    /// State replays the **first-parent chain**: merge commits carry the
    /// effective operations of the merged-in branch, so the chain alone
    /// reconstructs the full state (same flattening trick Nessie's global
    /// state log uses).
    pub fn state_at(&self, name_or_id: &str) -> Result<CatalogState> {
        let head = self.resolve(name_or_id)?;
        match head {
            None => Ok(CatalogState::new()),
            Some(id) => self.state_of_commit(&id),
        }
    }

    fn state_of_commit(&self, id: &CommitId) -> Result<CatalogState> {
        if let Some(s) = self.state_cache.lock().get(id) {
            return Ok(s.clone());
        }
        // Collect the uncached prefix of the first-parent chain.
        let mut chain = Vec::new();
        let mut cursor = Some(id.clone());
        let mut base_state = CatalogState::new();
        while let Some(cid) = cursor {
            if let Some(s) = self.state_cache.lock().get(&cid) {
                base_state = s.clone();
                break;
            }
            let commit = self.get_commit(&cid)?;
            cursor = commit.parents.first().cloned();
            chain.push((cid, commit));
        }
        for (cid, commit) in chain.into_iter().rev() {
            base_state.apply(&commit);
            self.state_cache.lock().insert(cid, base_state.clone());
        }
        Ok(base_state)
    }

    /// Content a table key points to at a ref.
    pub fn get_content(&self, name_or_id: &str, key: &str) -> Result<ContentRef> {
        self.state_at(name_or_id)?
            .get(key)
            .cloned()
            .ok_or_else(|| CatalogError::KeyNotFound(key.to_string()))
    }

    /// All ancestor commit ids of `id` (inclusive), following *all* parents.
    fn ancestors(&self, id: &CommitId) -> Result<HashSet<CommitId>> {
        let mut seen = HashSet::new();
        let mut stack = vec![id.clone()];
        while let Some(cid) = stack.pop() {
            if !seen.insert(cid.clone()) {
                continue;
            }
            let commit = self.get_commit(&cid)?;
            stack.extend(commit.parents.iter().cloned());
        }
        Ok(seen)
    }

    /// Nearest common ancestor by maximum `seq` (well-defined for our DAGs:
    /// seq strictly increases along every edge).
    fn merge_base(&self, a: &CommitId, b: &CommitId) -> Result<Option<CommitId>> {
        let ancestors_a = self.ancestors(a)?;
        let ancestors_b = self.ancestors(b)?;
        let mut best: Option<(u64, CommitId)> = None;
        for id in ancestors_a.intersection(&ancestors_b) {
            let seq = self.get_commit(id)?.seq;
            if best.as_ref().is_none_or(|(s, _)| seq > *s) {
                best = Some((seq, id.clone()));
            }
        }
        Ok(best.map(|(_, id)| id))
    }

    /// Merge branch `from` into branch `to`.
    ///
    /// Fast-forwards when possible; otherwise performs a three-way merge
    /// with key-level conflict detection: a key changed on both sides to
    /// different contents aborts with [`CatalogError::MergeConflict`] and
    /// leaves `to` untouched (the transactional guarantee the paper's
    /// transform-audit-write pattern relies on).
    pub fn merge(&self, from: &str, to: &str, author: &str) -> Result<Option<CommitId>> {
        let from_head = self
            .resolve(from)?
            .ok_or_else(|| CatalogError::RefNotFound(format!("{from} has no commits")))?;
        let to_ref = self.get_ref(to)?;
        if to_ref.kind == RefKind::Tag {
            return Err(CatalogError::TagIsImmutable(to.to_string()));
        }
        let Some(to_head) = to_ref.head.clone() else {
            // Empty target: fast-forward to the source head.
            self.move_branch(to, None, Some(from_head.clone()))?;
            return Ok(Some(from_head));
        };
        if to_head == from_head {
            return Ok(None); // already up to date
        }
        let from_ancestors = self.ancestors(&from_head)?;
        if from_ancestors.contains(&to_head) {
            // Target is behind source: fast-forward.
            self.move_branch(to, Some(to_head), Some(from_head.clone()))?;
            return Ok(Some(from_head));
        }
        let to_ancestors = self.ancestors(&to_head)?;
        if to_ancestors.contains(&from_head) {
            return Ok(None); // source already contained in target
        }
        // Three-way merge.
        let base = self
            .merge_base(&from_head, &to_head)?
            .ok_or_else(|| CatalogError::Corrupt("no common ancestor".into()))?;
        let base_state = self.state_of_commit(&base)?;
        let from_state = self.state_of_commit(&from_head)?;
        let to_state = self.state_of_commit(&to_head)?;
        let from_changes = base_state.diff(&from_state);
        let to_changes = base_state.diff(&to_state);
        let conflicts: Vec<String> = from_changes
            .iter()
            .filter(|(k, v)| to_changes.get(*k).is_some_and(|tv| tv != *v))
            .map(|(k, _)| k.clone())
            .collect();
        if !conflicts.is_empty() {
            return Err(CatalogError::MergeConflict { keys: conflicts });
        }
        let operations: Vec<Operation> = from_changes
            .into_iter()
            .map(|(key, content)| match content {
                Some(content) => Operation::Put { key, content },
                None => Operation::Delete { key },
            })
            .collect();
        let seq = self
            .get_commit(&to_head)?
            .seq
            .max(self.get_commit(&from_head)?.seq)
            + 1;
        let commit = Commit {
            parents: vec![to_head.clone(), from_head.clone()],
            seq,
            author: author.to_string(),
            message: format!("merge {from} into {to}"),
            operations,
        };
        let id = commit.id();
        self.store
            .put(&self.commit_path(&id)?, Bytes::from(commit.to_bytes()))?;
        self.commit_cache.lock().insert(id.clone(), commit.clone());
        self.move_branch(to, Some(to_head), Some(id.clone()))?;
        Ok(Some(id))
    }

    /// Garbage-collect commit objects unreachable from any reference
    /// (the cleanup Nessie leaves to its `gc` tool). Returns the number of
    /// commit objects deleted. Content-addressed and immutable commits make
    /// this safe: a deleted commit can never be referenced again except by
    /// re-creating the identical commit, which re-writes the object.
    pub fn gc(&self) -> Result<usize> {
        let (doc, _) = self.read_refs()?;
        let mut reachable = HashSet::new();
        for r in doc.refs.values() {
            if let Some(head) = &r.head {
                reachable.extend(self.ancestors(head)?);
            }
        }
        let prefix = format!("{}/commits", self.root);
        let mut deleted = 0;
        for path in self.store.list(&prefix)? {
            let file = path.file_name();
            let Some(id) = file.strip_suffix(".json") else {
                continue;
            };
            if !reachable.contains(id) {
                self.store.delete(&path)?;
                self.commit_cache.lock().remove(id);
                self.state_cache.lock().remove(id);
                deleted += 1;
            }
        }
        Ok(deleted)
    }

    /// CAS-move a branch head from `expected` to `new`.
    fn move_branch(
        &self,
        name: &str,
        expected: Option<CommitId>,
        new: Option<CommitId>,
    ) -> Result<()> {
        self.update_refs(|doc| {
            let r = doc
                .refs
                .get_mut(name)
                .ok_or_else(|| CatalogError::RefNotFound(name.to_string()))?;
            if r.head != expected {
                return Err(CatalogError::ConcurrentUpdate(name.to_string()));
            }
            r.head = new.clone();
            Ok(())
        })
    }

    /// Read-modify-CAS loop over the ref document.
    fn update_refs<T>(&self, mut mutate: impl FnMut(&mut RefDocument) -> Result<T>) -> Result<T> {
        let mut backoff = CasBackoff::new(self.store.as_ref(), backoff_seed());
        for attempt in 0..MAX_CAS_RETRIES {
            if attempt > 0 {
                backoff.wait();
            }
            let (doc, expected_bytes) = self.read_refs()?;
            let mut new_doc = doc.clone();
            let out = mutate(&mut new_doc)?;
            match self.store.put_if_matches(
                &self.refs_path()?,
                Some(&expected_bytes),
                Bytes::from(new_doc.to_bytes()),
            ) {
                Ok(()) => return Ok(out),
                Err(StoreError::PreconditionFailed(_)) => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Err(CatalogError::ConcurrentUpdate("refs.json".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakehouse_store::InMemoryStore;

    fn new_catalog() -> Catalog {
        Catalog::init(Arc::new(InMemoryStore::new()), "_catalog").unwrap()
    }

    fn put_op(key: &str, snap: u64) -> Operation {
        Operation::Put {
            key: key.into(),
            content: ContentRef::new(format!("meta/{key}/{snap}.json"), snap),
        }
    }

    #[test]
    fn init_creates_main() {
        let c = new_catalog();
        let r = c.get_ref(MAIN_BRANCH).unwrap();
        assert_eq!(r.kind, RefKind::Branch);
        assert!(r.head.is_none());
    }

    #[test]
    fn double_init_fails() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        Catalog::init(Arc::clone(&store), "_catalog").unwrap();
        assert!(Catalog::init(store, "_catalog").is_err());
    }

    #[test]
    fn open_requires_existing() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        assert!(Catalog::open(Arc::clone(&store), "_catalog").is_err());
        Catalog::init(Arc::clone(&store), "_catalog").unwrap();
        assert!(Catalog::open(store, "_catalog").is_ok());
    }

    #[test]
    fn commit_advances_head_and_state() {
        let c = new_catalog();
        let id1 = c
            .commit("main", "me", "add t1", vec![put_op("t1", 1)])
            .unwrap();
        assert_eq!(c.get_ref("main").unwrap().head, Some(id1.clone()));
        let id2 = c
            .commit("main", "me", "add t2", vec![put_op("t2", 1)])
            .unwrap();
        assert_ne!(id1, id2);
        let state = c.state_at("main").unwrap();
        assert_eq!(state.len(), 2);
        assert_eq!(c.get_content("main", "t1").unwrap().snapshot_id, 1);
    }

    #[test]
    fn commit_to_tag_rejected() {
        let c = new_catalog();
        c.commit("main", "me", "x", vec![put_op("t1", 1)]).unwrap();
        c.create_tag("v1", "main").unwrap();
        assert!(matches!(
            c.commit("v1", "me", "y", vec![put_op("t1", 2)]),
            Err(CatalogError::TagIsImmutable(_))
        ));
    }

    #[test]
    fn branch_isolation() {
        let c = new_catalog();
        c.commit("main", "me", "base", vec![put_op("t1", 1)])
            .unwrap();
        c.create_branch("feat", Some("main")).unwrap();
        c.commit("feat", "me", "feature work", vec![put_op("t1", 2)])
            .unwrap();
        // main still sees snapshot 1, feat sees 2.
        assert_eq!(c.get_content("main", "t1").unwrap().snapshot_id, 1);
        assert_eq!(c.get_content("feat", "t1").unwrap().snapshot_id, 2);
    }

    #[test]
    fn fast_forward_merge() {
        let c = new_catalog();
        c.commit("main", "me", "base", vec![put_op("t1", 1)])
            .unwrap();
        c.create_branch("feat", Some("main")).unwrap();
        let feat_head = c
            .commit("feat", "me", "work", vec![put_op("t2", 1)])
            .unwrap();
        let merged = c.merge("feat", "main", "me").unwrap();
        assert_eq!(merged, Some(feat_head.clone()));
        assert_eq!(c.get_ref("main").unwrap().head, Some(feat_head));
        assert_eq!(c.state_at("main").unwrap().len(), 2);
    }

    #[test]
    fn three_way_merge_without_conflict() {
        let c = new_catalog();
        c.commit("main", "me", "base", vec![put_op("t1", 1)])
            .unwrap();
        c.create_branch("feat", Some("main")).unwrap();
        c.commit("feat", "me", "feat change", vec![put_op("t2", 1)])
            .unwrap();
        c.commit("main", "me", "main change", vec![put_op("t3", 1)])
            .unwrap();
        let merged = c.merge("feat", "main", "me").unwrap();
        assert!(merged.is_some());
        let state = c.state_at("main").unwrap();
        assert_eq!(state.len(), 3);
        // Merge commit has two parents.
        let mc = c.get_commit(&merged.unwrap()).unwrap();
        assert_eq!(mc.parents.len(), 2);
    }

    #[test]
    fn conflicting_merge_aborts() {
        let c = new_catalog();
        c.commit("main", "me", "base", vec![put_op("t1", 1)])
            .unwrap();
        c.create_branch("feat", Some("main")).unwrap();
        c.commit("feat", "me", "feat t1", vec![put_op("t1", 2)])
            .unwrap();
        c.commit("main", "me", "main t1", vec![put_op("t1", 3)])
            .unwrap();
        let err = c.merge("feat", "main", "me").unwrap_err();
        match err {
            CatalogError::MergeConflict { keys } => assert_eq!(keys, vec!["t1".to_string()]),
            other => panic!("expected conflict, got {other}"),
        }
        // Target untouched.
        assert_eq!(c.get_content("main", "t1").unwrap().snapshot_id, 3);
    }

    #[test]
    fn identical_change_both_sides_is_not_conflict() {
        let c = new_catalog();
        c.commit("main", "me", "base", vec![put_op("t1", 1)])
            .unwrap();
        c.create_branch("feat", Some("main")).unwrap();
        c.commit("feat", "me", "same", vec![put_op("t1", 2)])
            .unwrap();
        c.commit("main", "me", "same", vec![put_op("t1", 2)])
            .unwrap();
        assert!(c.merge("feat", "main", "me").is_ok());
        assert_eq!(c.get_content("main", "t1").unwrap().snapshot_id, 2);
    }

    #[test]
    fn merge_into_empty_branch_fast_forwards() {
        let c = new_catalog();
        c.create_branch("feat", None).unwrap();
        c.commit("feat", "me", "x", vec![put_op("t1", 1)]).unwrap();
        c.merge("feat", "main", "me").unwrap();
        assert_eq!(c.state_at("main").unwrap().len(), 1);
    }

    #[test]
    fn merge_already_up_to_date() {
        let c = new_catalog();
        c.commit("main", "me", "x", vec![put_op("t1", 1)]).unwrap();
        c.create_branch("feat", Some("main")).unwrap();
        assert_eq!(c.merge("feat", "main", "me").unwrap(), None);
    }

    #[test]
    fn log_first_parent_order() {
        let c = new_catalog();
        c.commit("main", "me", "one", vec![put_op("t1", 1)])
            .unwrap();
        c.commit("main", "me", "two", vec![put_op("t1", 2)])
            .unwrap();
        c.commit("main", "me", "three", vec![put_op("t1", 3)])
            .unwrap();
        let log = c.log("main", 10).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].1.message, "three");
        assert_eq!(log[2].1.message, "one");
        assert_eq!(c.log("main", 2).unwrap().len(), 2);
    }

    #[test]
    fn delete_branch() {
        let c = new_catalog();
        c.create_branch("temp", None).unwrap();
        c.delete_ref("temp").unwrap();
        assert!(matches!(
            c.get_ref("temp"),
            Err(CatalogError::RefNotFound(_))
        ));
        assert!(c.delete_ref("temp").is_err());
    }

    #[test]
    fn resolve_commit_id_directly() {
        let c = new_catalog();
        let id = c.commit("main", "me", "x", vec![put_op("t1", 1)]).unwrap();
        c.commit("main", "me", "y", vec![put_op("t1", 2)]).unwrap();
        // Time travel to the first commit by id.
        assert_eq!(c.get_content(&id, "t1").unwrap().snapshot_id, 1);
        assert!(c.resolve("bogus").is_err());
    }

    #[test]
    fn tag_preserves_state_forever() {
        let c = new_catalog();
        c.commit("main", "me", "x", vec![put_op("t1", 1)]).unwrap();
        c.create_tag("v1", "main").unwrap();
        c.commit("main", "me", "y", vec![put_op("t1", 2)]).unwrap();
        assert_eq!(c.get_content("v1", "t1").unwrap().snapshot_id, 1);
        assert_eq!(c.get_content("main", "t1").unwrap().snapshot_id, 2);
    }

    #[test]
    fn duplicate_branch_rejected() {
        let c = new_catalog();
        assert!(matches!(
            c.create_branch("main", None),
            Err(CatalogError::RefAlreadyExists(_))
        ));
    }

    #[test]
    fn ephemeral_branch_workflow() {
        // The paper's Fig. 4 flow: feat branch → ephemeral run branch →
        // merge up → delete ephemeral.
        let c = new_catalog();
        c.commit("main", "me", "prod data", vec![put_op("taxi_table", 1)])
            .unwrap();
        c.create_branch("feat_1", Some("main")).unwrap();
        c.create_branch("run_12", Some("feat_1")).unwrap();
        c.commit(
            "run_12",
            "runner",
            "materialize trips",
            vec![put_op("trips", 1)],
        )
        .unwrap();
        c.commit(
            "run_12",
            "runner",
            "materialize pickups",
            vec![put_op("pickups", 1)],
        )
        .unwrap();
        c.merge("run_12", "feat_1", "runner").unwrap();
        c.delete_ref("run_12").unwrap();
        let feat = c.state_at("feat_1").unwrap();
        assert_eq!(feat.len(), 3);
        // Production untouched until the final merge.
        assert_eq!(c.state_at("main").unwrap().len(), 1);
        c.merge("feat_1", "main", "me").unwrap();
        assert_eq!(c.state_at("main").unwrap().len(), 3);
    }

    #[test]
    fn gc_removes_only_unreachable_commits() {
        let c = new_catalog();
        c.commit("main", "me", "keep1", vec![put_op("t1", 1)])
            .unwrap();
        c.create_branch("doomed", Some("main")).unwrap();
        c.commit("doomed", "me", "orphan1", vec![put_op("t2", 1)])
            .unwrap();
        c.commit("doomed", "me", "orphan2", vec![put_op("t3", 1)])
            .unwrap();
        c.commit("main", "me", "keep2", vec![put_op("t1", 2)])
            .unwrap();
        // Nothing unreachable yet.
        assert_eq!(c.gc().unwrap(), 0);
        c.delete_ref("doomed").unwrap();
        // The two orphaned commits go; main's history survives.
        assert_eq!(c.gc().unwrap(), 2);
        assert_eq!(c.log("main", 10).unwrap().len(), 2);
        assert_eq!(c.state_at("main").unwrap().len(), 1);
        // Idempotent.
        assert_eq!(c.gc().unwrap(), 0);
    }

    #[test]
    fn gc_keeps_commits_reachable_via_tags_and_merges() {
        let c = new_catalog();
        c.commit("main", "me", "base", vec![put_op("t1", 1)])
            .unwrap();
        c.create_tag("v1", "main").unwrap();
        c.create_branch("feat", Some("main")).unwrap();
        c.commit("feat", "me", "feat work", vec![put_op("t2", 1)])
            .unwrap();
        c.commit("main", "me", "main work", vec![put_op("t3", 1)])
            .unwrap();
        c.merge("feat", "main", "me").unwrap();
        c.delete_ref("feat").unwrap();
        // The feat commit is still reachable through the merge's second
        // parent; the tag pins the base.
        assert_eq!(c.gc().unwrap(), 0);
        assert_eq!(c.state_at("main").unwrap().len(), 3);
    }

    #[test]
    fn deleted_key_merges() {
        let c = new_catalog();
        c.commit("main", "me", "base", vec![put_op("t1", 1), put_op("t2", 1)])
            .unwrap();
        c.create_branch("feat", Some("main")).unwrap();
        c.commit(
            "feat",
            "me",
            "drop t2",
            vec![Operation::Delete { key: "t2".into() }],
        )
        .unwrap();
        c.commit("main", "me", "main work", vec![put_op("t3", 1)])
            .unwrap();
        c.merge("feat", "main", "me").unwrap();
        let s = c.state_at("main").unwrap();
        assert!(s.get("t2").is_none());
        assert!(s.get("t3").is_some());
    }
}
