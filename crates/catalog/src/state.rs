//! Materialized catalog state: the key → content map visible at a commit,
//! built by replaying the commit history.

use crate::commit::{Commit, ContentRef, Operation};
use std::collections::BTreeMap;

/// The table namespace as of a particular commit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatalogState {
    entries: BTreeMap<String, ContentRef>,
}

impl CatalogState {
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply a commit's operations in order.
    pub fn apply(&mut self, commit: &Commit) {
        for op in &commit.operations {
            match op {
                Operation::Put { key, content } => {
                    self.entries.insert(key.clone(), content.clone());
                }
                Operation::Delete { key } => {
                    self.entries.remove(key);
                }
            }
        }
    }

    /// Content for a table key.
    pub fn get(&self, key: &str) -> Option<&ContentRef> {
        self.entries.get(key)
    }

    /// All table keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keys whose content differs between `self` (base) and `other`, with
    /// the new content (`None` = deleted in `other`).
    pub fn diff(&self, other: &CatalogState) -> BTreeMap<String, Option<ContentRef>> {
        let mut out = BTreeMap::new();
        for (k, v) in &other.entries {
            if self.entries.get(k) != Some(v) {
                out.insert(k.clone(), Some(v.clone()));
            }
        }
        for k in self.entries.keys() {
            if !other.entries.contains_key(k) {
                out.insert(k.clone(), None);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(key: &str, snap: u64) -> Operation {
        Operation::Put {
            key: key.into(),
            content: ContentRef::new(format!("meta/{key}.json"), snap),
        }
    }

    fn commit(ops: Vec<Operation>) -> Commit {
        Commit {
            parents: vec![],
            seq: 0,
            author: "t".into(),
            message: "m".into(),
            operations: ops,
        }
    }

    #[test]
    fn apply_put_and_delete() {
        let mut s = CatalogState::new();
        s.apply(&commit(vec![put("a", 1), put("b", 1)]));
        assert_eq!(s.len(), 2);
        s.apply(&commit(vec![Operation::Delete { key: "a".into() }]));
        assert_eq!(s.len(), 1);
        assert!(s.get("a").is_none());
        assert_eq!(s.get("b").unwrap().snapshot_id, 1);
    }

    #[test]
    fn later_put_overwrites() {
        let mut s = CatalogState::new();
        s.apply(&commit(vec![put("a", 1)]));
        s.apply(&commit(vec![put("a", 2)]));
        assert_eq!(s.get("a").unwrap().snapshot_id, 2);
    }

    #[test]
    fn diff_detects_changes() {
        let mut base = CatalogState::new();
        base.apply(&commit(vec![put("a", 1), put("b", 1), put("c", 1)]));
        let mut other = base.clone();
        other.apply(&commit(vec![
            put("a", 2),
            Operation::Delete { key: "b".into() },
            put("d", 1),
        ]));
        let d = base.diff(&other);
        assert_eq!(d.len(), 3);
        assert_eq!(d["a"].as_ref().unwrap().snapshot_id, 2);
        assert!(d["b"].is_none());
        assert_eq!(d["d"].as_ref().unwrap().snapshot_id, 1);
        assert!(!d.contains_key("c"));
    }

    #[test]
    fn diff_of_identical_is_empty() {
        let mut s = CatalogState::new();
        s.apply(&commit(vec![put("a", 1)]));
        assert!(s.diff(&s.clone()).is_empty());
    }
}
