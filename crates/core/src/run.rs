//! Pipeline runs: the transform-audit-write executor (paper §4.3, §4.4.2,
//! Fig. 4).
//!
//! Every run:
//!
//! 1. snapshots and fingerprints the project (code is data);
//! 2. creates an **ephemeral catalog branch** `run_<id>` off the target
//!    branch (or off a recorded data version, for replays);
//! 3. compiles the logical pipeline to a physical plan — `Fused` packs steps
//!    into container stages with in-memory data passing, `Naive` maps one
//!    step to one container with object-store spillover;
//! 4. executes stages on the serverless runtime (charging simulated startup
//!    latency per container) and materializes artifacts into the ephemeral
//!    branch;
//! 5. audits expectations — any failure deletes the ephemeral branch and
//!    leaves the target branch untouched;
//! 6. on success, merges the ephemeral branch and deletes it.

use crate::error::{BauplanError, Result};
use crate::functions::{FnContext, FnOutput};
use crate::lakehouse::Lakehouse;
use crate::provider::LakehouseProvider;
use lakehouse_catalog::{ContentRef, Operation};
use lakehouse_columnar::RecordBatch;
use lakehouse_planner::project::NodeKind;
use lakehouse_planner::{
    ExecutionMode, LogicalPipeline, PhysicalPipeline, PipelineDag, PipelineProject,
    ProjectSnapshot, RunRecord, StepAction,
};
use lakehouse_runtime::EnvSpec;
use lakehouse_table::{PartitionSpec, SnapshotOperation, Table};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Options for a pipeline run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Target branch (artifacts merge here on success).
    pub branch: String,
    /// Override the configured execution mode.
    pub mode: Option<ExecutionMode>,
    /// Merge into the target branch on success. Replays set this false to
    /// stay sandboxed; the ephemeral branch is kept for inspection.
    pub merge: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            branch: "main".into(),
            mode: None,
            merge: true,
        }
    }
}

impl RunOptions {
    pub fn on_branch(branch: impl Into<String>) -> RunOptions {
        RunOptions {
            branch: branch.into(),
            ..Default::default()
        }
    }

    pub fn with_mode(mut self, mode: ExecutionMode) -> RunOptions {
        self.mode = Some(mode);
        self
    }
}

/// The outcome of a run, including the simulation's latency accounting.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub run_id: u64,
    pub success: bool,
    pub branch: String,
    /// Ephemeral branch used (deleted unless a sandboxed replay kept it).
    pub ephemeral_branch: String,
    pub mode: ExecutionMode,
    /// Artifact name → rows materialized.
    pub artifact_rows: BTreeMap<String, u64>,
    /// Expectation name → verdict.
    pub audit_results: BTreeMap<String, bool>,
    /// Total simulated latency: container startups + data passing + object
    /// store traffic attributable to this run.
    pub simulated_total: Duration,
    /// Simulated time spent in container startups only.
    pub simulated_startup: Duration,
    /// Simulated time spent in object-store operations only.
    pub simulated_store: Duration,
    /// (cold, warm, resume) container starts during the run.
    pub container_starts: (u64, u64, u64),
    /// Object-store (gets, puts) during the run.
    pub store_ops: (u64, u64),
    /// Number of container invocations (stages executed).
    pub stages_executed: usize,
    /// Peak working set across this run's SQL queries (bytes), measured by
    /// the streaming executor. 0 when `stream_execution` is off.
    pub peak_query_bytes: usize,
    /// The run's span tree: plan, stages, steps, container starts, scans.
    /// Every run is traced (forced), so this is always populated.
    pub trace: lakehouse_obs::SpanTree,
}

/// Baseline snapshot of the per-instance metric sources a run reports deltas
/// against. The global [`lakehouse_obs::MetricsRegistry`] counters are
/// process-wide (shared across lakehouses and parallel tests), so run
/// accounting samples the instance-local sources and diffs them instead.
struct MetricBaseline {
    clock: Duration,
    store_time: Duration,
    gets: u64,
    puts: u64,
    starts: (u64, u64, u64),
}

/// What changed between a [`MetricBaseline`] and now.
struct MetricDelta {
    simulated_startup: Duration,
    simulated_store: Duration,
    container_starts: (u64, u64, u64),
    store_ops: (u64, u64),
}

impl MetricBaseline {
    fn capture(lh: &Lakehouse) -> MetricBaseline {
        let metrics = lh.store_metrics();
        MetricBaseline {
            clock: lh.clock().now(),
            store_time: metrics.simulated_time(),
            gets: metrics.gets(),
            puts: metrics.puts(),
            starts: lh.runtime().containers().start_counts(),
        }
    }

    fn delta(&self, lh: &Lakehouse) -> MetricDelta {
        let metrics = lh.store_metrics();
        let starts = lh.runtime().containers().start_counts();
        MetricDelta {
            simulated_startup: lh.clock().now() - self.clock,
            simulated_store: metrics.simulated_time() - self.store_time,
            container_starts: (
                starts.0 - self.starts.0,
                starts.1 - self.starts.1,
                starts.2 - self.starts.2,
            ),
            store_ops: (metrics.gets() - self.gets, metrics.puts() - self.puts),
        }
    }
}

impl Lakehouse {
    /// Execute a pipeline with the transform-audit-write pattern.
    pub fn run(&self, project: &PipelineProject, options: &RunOptions) -> Result<RunReport> {
        self.execute_run(project.clone(), options.clone(), None)
    }

    /// Re-execute a recorded run in a sandbox: same code snapshot, same data
    /// version. `from_node` limits execution to `node` and its descendants
    /// (the CLI's `--run-id N -m node+`). Never merges.
    pub fn replay(&self, run_id: u64, from_node: Option<&str>) -> Result<RunReport> {
        let (project, data_version, branch) = {
            let runs = self.runs.lock();
            let rec = runs.get(run_id).map_err(BauplanError::Planner)?;
            (
                rec.project.clone(),
                rec.data_version.clone(),
                rec.branch.clone(),
            )
        };
        let selection = match from_node {
            Some(node) => {
                let dag = PipelineDag::extract(&project)?;
                Some(dag.descendants_inclusive(node)?)
            }
            None => None,
        };
        let options = RunOptions {
            branch,
            mode: None,
            merge: false,
        };
        self.execute_run(project, options, Some((data_version, selection)))
    }

    /// Run asynchronously on a worker thread (the Table 1 `Asynch` modality).
    pub fn run_async(self: &Arc<Self>, project: PipelineProject, options: RunOptions) -> RunHandle {
        let lh = Arc::clone(self);
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let join = std::thread::spawn(move || {
            let result = lh.execute_run(project, options, None);
            let _ = tx.send(result);
        });
        RunHandle {
            rx,
            join: Some(join),
        }
    }

    fn execute_run(
        &self,
        project: PipelineProject,
        options: RunOptions,
        replay: Option<(String, Option<Vec<String>>)>,
    ) -> Result<RunReport> {
        let mode = options.mode.unwrap_or(self.config.execution_mode);
        let snapshot = ProjectSnapshot::of(&project);
        let run_id = self.runs.lock().reserve();

        // Every run is traced (forced): the resulting span tree ships with
        // the report. Simulated timestamps come from the lakehouse clocks.
        let _sim = self.install_sim();
        let trace = lakehouse_obs::Trace::start_forced("run");
        trace.attr("run_id", run_id);
        trace.attr("branch", options.branch.as_str());
        trace.attr("mode", format!("{mode:?}"));

        // Plan.
        let plan_span = lakehouse_obs::span("plan");
        let dag = PipelineDag::extract(&project)?;
        let selection = replay.as_ref().and_then(|(_, sel)| sel.clone());
        let logical = LogicalPipeline::plan_with_dag(&project, &dag, selection.as_deref())?;
        // Stage packing uses the log-driven memory estimator (paper §5):
        // nodes that ran before get history-based working-set predictions.
        let physical = PhysicalPipeline::compile(
            &logical,
            &dag,
            mode,
            self.runtime.memory().capacity(),
            |node| {
                self.estimator
                    .estimate(node, self.config.default_step_memory)
            },
        )?;
        plan_span.attr("stages", physical.stages.len() as u64);
        drop(plan_span);

        // Data version this run reads (for the registry + replays).
        let base_ref = match &replay {
            Some((data_version, _)) => data_version.clone(),
            None => options.branch.clone(),
        };
        let data_version = self
            .catalog
            .resolve(&base_ref)?
            .unwrap_or_else(|| "<empty>".to_string());

        // Ephemeral branch (Fig. 4): run_<id>.
        let ephemeral = format!("run_{run_id}");
        self.catalog.create_branch(&ephemeral, Some(&base_ref))?;

        // Metric baselines for the report.
        let baseline = MetricBaseline::capture(self);

        // The naive baseline (the paper's first version) reads whole tables —
        // no scan-level predicate pushdown — and runs each node in a
        // stateless container.
        let provider = self
            .provider(&ephemeral)
            .with_pushdown(mode == ExecutionMode::Fused);
        let mut peak_query_bytes = 0usize;
        let outcome = self.execute_stages(
            &project,
            &logical,
            &physical,
            &provider,
            run_id,
            &mut peak_query_bytes,
        );

        // Collect deltas regardless of success.
        let MetricDelta {
            simulated_startup,
            simulated_store,
            container_starts,
            store_ops,
        } = baseline.delta(self);

        let (success, artifact_rows, audit_results, failure) = match outcome {
            Ok((rows, audits)) => {
                let all_passed = audits.values().all(|&v| v);
                let failed_audit = audits.iter().find(|(_, &v)| !v).map(|(k, _)| k.clone());
                (
                    all_passed,
                    rows,
                    audits,
                    failed_audit.map(|node| BauplanError::ExpectationFailed { node }),
                )
            }
            Err(e) => (false, BTreeMap::new(), BTreeMap::new(), Some(e)),
        };

        // Transactional finish: merge only a fully-green run. The recorded
        // data version is the post-run commit (it includes the run's own
        // artifacts, so partial replays like `-m pickups+` can read their
        // parents' outputs); failed runs record the pre-run version.
        let mut recorded_version = data_version.clone();
        if success && options.merge {
            self.catalog
                .merge(&ephemeral, &options.branch, &self.config.author)?;
            self.catalog.delete_ref(&ephemeral)?;
            if let Some(head) = self.catalog.resolve(&options.branch)? {
                recorded_version = head;
            }
        } else if success {
            // Sandboxed success (replay): keep the ephemeral branch for
            // inspection.
            if let Some(head) = self.catalog.resolve(&ephemeral)? {
                recorded_version = head;
            }
        } else {
            // Failure: drop the dirty branch; target stays untouched.
            let _ = self.catalog.delete_ref(&ephemeral);
        }

        // Record the run.
        self.runs
            .lock()
            .record(RunRecord {
                run_id,
                project,
                snapshot,
                data_version: recorded_version,
                branch: options.branch.clone(),
                success,
                output_rows: artifact_rows.clone(),
            })
            .map_err(BauplanError::Planner)?;

        trace.attr("success", if success { "true" } else { "false" });
        let run_trace = trace.finish();

        if let Some(e) = failure {
            return Err(e);
        }

        Ok(RunReport {
            run_id,
            success,
            branch: options.branch,
            ephemeral_branch: ephemeral,
            mode,
            artifact_rows,
            audit_results,
            simulated_total: simulated_startup + simulated_store,
            simulated_startup,
            simulated_store,
            container_starts,
            store_ops,
            stages_executed: physical.stages.len(),
            peak_query_bytes,
            trace: run_trace,
        })
    }

    /// Execute all stages, returning (artifact rows, audit verdicts).
    /// `peak_query_bytes` accumulates the max streaming-executor working set
    /// across SQL steps (left at 0 when streaming is off).
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn execute_stages(
        &self,
        project: &PipelineProject,
        logical: &LogicalPipeline,
        physical: &PhysicalPipeline,
        provider: &LakehouseProvider,
        run_id: u64,
        peak_query_bytes: &mut usize,
    ) -> Result<(BTreeMap<String, u64>, BTreeMap<String, bool>)> {
        let mut artifact_rows = BTreeMap::new();
        let mut audit_results = BTreeMap::new();
        // Stage-level dependencies, derived from the physical plan's
        // cross-stage edges. Stages are emitted in topological step order,
        // so picking the lowest-index ready stage reproduces the sequential
        // order exactly — the ready-set loop only matters because each stage
        // passes through the admission gate as its own schedulable unit, so
        // stages from concurrent runs interleave under one policy.
        let n = physical.stages.len();
        let stage_of = |name: &str| -> Option<usize> {
            physical
                .stages
                .iter()
                .position(|st| st.steps.iter().any(|s| s == name))
        };
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &physical.edges {
            if let (Some(a), Some(b)) = (stage_of(&e.from), stage_of(&e.to)) {
                if a != b && !deps[b].contains(&a) {
                    deps[b].push(a);
                }
            }
        }
        let mut done = vec![false; n];
        for _ in 0..n {
            let stage_idx = (0..n)
                .find(|&i| !done[i] && deps[i].iter().all(|&d| done[d]))
                .expect("acyclic physical plan always has a ready stage");
            let stage = &physical.stages[stage_idx];
            // Each ready stage contends for an admission slot like an ad-hoc
            // query (cost hint: estimated working set at 256 MiB/s). The SQL
            // steps inside run under this permit and skip the gate.
            let _permit = match &self.admission {
                Some(gate)
                    if lakehouse_obs::QueryCtx::current().is_none()
                        && !crate::lakehouse::under_stage_permit() =>
                {
                    let est: u64 = stage
                        .steps
                        .iter()
                        .map(|s| self.estimator.estimate(s, self.config.default_step_memory))
                        .sum();
                    let cost_hint = est as f64 / (256.0 * 1024.0 * 1024.0);
                    match gate.acquire_item(&self.config.tenant, cost_hint) {
                        Ok(permit) => Some(permit),
                        Err(shed) => {
                            return Err(BauplanError::Overloaded {
                                retry_after: shed.retry_after,
                            })
                        }
                    }
                }
                _ => None,
            };
            let _stage_scope = crate::lakehouse::StagePermitScope::enter();
            lakehouse_obs::recorder().record_for(
                lakehouse_obs::EventKind::StageStart,
                0,
                self.config.tenant.clone(),
                &format!("run_{run_id}/stage_{stage_idx}"),
                stage.steps.len() as u64,
            );
            let stage_span = lakehouse_obs::span("stage");
            if stage_span.is_recording() {
                stage_span.attr("index", stage_idx as u64);
                stage_span.attr("steps", stage.steps.join(","));
            }
            // One container invocation per stage: charge startup for the
            // stage's merged environment. Fused stages reuse frozen
            // containers; the naive mapping is stateless (paper §4.4.2).
            let env = self.stage_env(project, &stage.steps);
            let memory: u64 = stage
                .steps
                .iter()
                .map(|s| self.estimator.estimate(s, self.config.default_step_memory))
                .sum::<u64>()
                .min(self.runtime.memory().capacity());
            let invoke_result = match physical.mode {
                ExecutionMode::Fused if self.config.retry_max > 0 => {
                    self.runtime
                        .invoke_retrying(&env, memory, self.config.retry_max, |_, _| Ok(()))
                }
                ExecutionMode::Fused => self.runtime.invoke(&env, memory, |_, _| Ok(())),
                ExecutionMode::Naive => self.runtime.invoke_stateless(&env, memory, |_, _| Ok(())),
            };
            invoke_result.map_err(BauplanError::Runtime)?;

            // Execute the stage's steps in order; intermediates stay in the
            // provider overlay (in-memory locality within the stage).
            let mut stage_outputs: Vec<(String, RecordBatch)> = Vec::new();
            for step_name in &stage.steps {
                let step_span = lakehouse_obs::span("step");
                step_span.attr("name", step_name.as_str());
                let step = logical
                    .steps
                    .iter()
                    .find(|s| &s.name == step_name)
                    .expect("physical stage references logical step");
                let node = project
                    .get(step_name)
                    .expect("logical step references project node");
                match node.kind {
                    NodeKind::SqlTransform => {
                        let sql = node.sql.as_deref().expect("sql node has text");
                        let batch = self.query_step_retrying(sql, provider, peak_query_bytes)?;
                        provider.put_overlay(step_name.clone(), batch.clone());
                        stage_outputs.push((step_name.clone(), batch));
                    }
                    NodeKind::FunctionTransform | NodeKind::Expectation => {
                        let f = {
                            let registry = self.functions.read();
                            registry.get(node.function_id.as_deref().unwrap_or(""))?
                        };
                        let mut inputs = HashMap::new();
                        for input in step.inputs.iter().chain(&step.external_inputs) {
                            let batch = match provider.get_overlay(input) {
                                Some(b) => b,
                                // Cross-stage edge or lake table: read
                                // through the catalog (object store).
                                None => self.read_table(input, provider.reference())?,
                            };
                            inputs.insert(input.clone(), batch);
                        }
                        match f(&FnContext { inputs })? {
                            FnOutput::Batch(batch) => {
                                provider.put_overlay(step_name.clone(), batch.clone());
                                if step.action == StepAction::Materialize {
                                    stage_outputs.push((step_name.clone(), batch));
                                }
                            }
                            FnOutput::Expectation(passed) => {
                                audit_results.insert(step_name.clone(), passed);
                                if !passed {
                                    // Record and stop: transform-audit-write
                                    // aborts before any merge.
                                    return Ok((artifact_rows, audit_results));
                                }
                            }
                        }
                    }
                }
            }

            // Materialize the stage's artifacts into the ephemeral branch in
            // one commit (atomic per stage). Each Iceberg-style INSERT runs
            // through a "Spark command" container (paper §4.2): fused mode
            // resumes a frozen one (materialization "looks no slower than
            // running any other Python function"), the naive baseline pays
            // the stateless startup path every time.
            let mat_span = lakehouse_obs::span("materialize");
            if mat_span.is_recording() {
                mat_span.attr("artifacts", stage_outputs.len() as u64);
            }
            if !stage_outputs.is_empty() {
                let spark_env = EnvSpec::bare("spark-insert");
                let spark_mem = self
                    .config
                    .default_step_memory
                    .min(self.runtime.memory().capacity());
                let invoke = match physical.mode {
                    ExecutionMode::Fused => {
                        self.runtime.invoke(&spark_env, spark_mem, |_, _| Ok(()))
                    }
                    ExecutionMode::Naive => {
                        self.runtime
                            .invoke_stateless(&spark_env, spark_mem, |_, _| Ok(()))
                    }
                };
                invoke.map_err(BauplanError::Runtime)?;
            }
            let mut ops = Vec::new();
            for (name, batch) in &stage_outputs {
                let location = format!("{}/{name}/r{run_id}", self.config.warehouse_prefix);
                let table = Table::create(
                    Arc::clone(&self.store_dyn),
                    &location,
                    batch.schema(),
                    PartitionSpec::unpartitioned(),
                )?;
                let mut tx = table.new_transaction(SnapshotOperation::Append);
                tx.write(batch)?;
                let (metadata_location, metadata) = tx.commit()?;
                artifact_rows.insert(name.clone(), batch.num_rows() as u64);
                // Feed the memory estimator (vertical elasticity, §4.5/§5).
                self.estimator.observe(name, batch.approx_bytes() as u64);
                ops.push(Operation::Put {
                    key: name.clone(),
                    content: ContentRef::new(
                        metadata_location,
                        metadata.current_snapshot_id.unwrap_or(0),
                    ),
                });
            }
            if !ops.is_empty() {
                self.catalog.commit(
                    provider.reference(),
                    &self.config.author,
                    &format!("run {run_id}: materialize stage"),
                    ops,
                )?;
            }
            // Stage boundary: spill — downstream stages re-read through the
            // object store, matching the physical plan's edge localities.
            provider.clear_overlay();
            lakehouse_obs::recorder().record_for(
                lakehouse_obs::EventKind::StageFinish,
                0,
                self.config.tenant.clone(),
                &format!("run_{run_id}/stage_{stage_idx}"),
                stage_outputs.len() as u64,
            );
            done[stage_idx] = true;
        }
        Ok((artifact_rows, audit_results))
    }

    /// Run one SQL step, retrying transient store faults up to
    /// `retry_max` extra attempts. A SQL step is idempotent: it only reads
    /// lake tables and overlay artifacts, and its output replaces the
    /// overlay entry wholesale, so a re-run after a partial failure is safe.
    fn query_step_retrying(
        &self,
        sql: &str,
        provider: &LakehouseProvider,
        peak_query_bytes: &mut usize,
    ) -> Result<RecordBatch> {
        // Each SQL step is its own attributed unit: it gets a query id, a
        // resource ledger, and a `system.queries` row, just like an ad-hoc
        // query.
        self.attributed(sql, move || {
            let mut attempt = 0u32;
            loop {
                let result = if self.config.stream_execution {
                    self.engine
                        .query_with_report(sql, provider)
                        .map(|(batch, report)| {
                            *peak_query_bytes = (*peak_query_bytes).max(report.peak_bytes);
                            batch
                        })
                        .map_err(BauplanError::from)
                } else {
                    self.engine.query(sql, provider).map_err(BauplanError::from)
                };
                match result {
                    Err(e) if e.is_transient() && attempt < self.config.retry_max => {
                        attempt += 1;
                        lakehouse_obs::global().counter("run.step_retries").inc();
                    }
                    other => return other,
                }
            }
        })
    }

    /// Merged environment for a stage: function nodes contribute interpreter
    /// + packages; SQL-only stages run in the embedded engine's environment.
    fn stage_env(&self, project: &PipelineProject, steps: &[String]) -> EnvSpec {
        let mut interpreter = "duckdb-embedded".to_string();
        let mut packages = Vec::new();
        for name in steps {
            if let Some(node) = project.get(name) {
                if node.function_id.is_some() {
                    if let Some(i) = &node.requirements.interpreter {
                        interpreter = i.clone();
                    }
                    for pkg in node.requirements.package_names() {
                        // Map arbitrary package names onto the synthetic
                        // universe deterministically so fetch/import costs
                        // and the cache are exercised.
                        let idx = lakehouse_planner::fingerprint_bytes(pkg.as_bytes())
                            .bytes()
                            .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64))
                            % self.config.runtime.package_universe_size.max(1) as u64;
                        packages.push(format!("pkg-{idx:05}"));
                    }
                }
            }
        }
        EnvSpec::new(interpreter, packages)
    }
}

/// Handle to an asynchronous run.
pub struct RunHandle {
    rx: std::sync::mpsc::Receiver<Result<RunReport>>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl RunHandle {
    /// Non-blocking check; `None` while still running.
    pub fn poll(&self) -> Option<bool> {
        match self.rx.try_recv() {
            Ok(r) => Some(r.is_ok()),
            Err(_) => None,
        }
    }

    /// Block until completion.
    pub fn wait(mut self) -> Result<RunReport> {
        let result = self
            .rx
            .recv()
            .map_err(|_| BauplanError::Config("async run worker disappeared".into()))?;
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LakehouseConfig;
    use lakehouse_columnar::{Column, DataType, Field, Schema, Value};

    /// Taxi fixture: lakehouse with the paper's taxi_table + expectation.
    fn taxi_lakehouse(config: LakehouseConfig) -> Lakehouse {
        let lh = Lakehouse::in_memory(config).unwrap();
        lh.register_taxi_functions();
        let n = 400i64;
        let batch = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("pickup_location_id", DataType::Int64, false),
                Field::new("dropoff_location_id", DataType::Int64, false),
                Field::new("passenger_count", DataType::Int64, true),
                Field::new("pickup_at", DataType::Date, false),
            ]),
            vec![
                Column::from_i64((0..n).map(|i| i % 7).collect()),
                Column::from_i64((0..n).map(|i| i % 11).collect()),
                // Mean passenger count ≈ 30 → expectation (mean > 10) passes.
                Column::from_i64((0..n).map(|i| 20 + (i % 21)).collect()),
                // Half before 2019-04-01 (17987), half after.
                Column::from_date((0..n).map(|i| 17_900 + (i % 200) as i32).collect()),
            ],
        )
        .unwrap();
        lh.create_table("taxi_table", &batch, "main").unwrap();
        lh
    }

    #[test]
    fn taxi_run_end_to_end_fused() {
        let lh = taxi_lakehouse(LakehouseConfig::default());
        let report = lh
            .run(&PipelineProject::taxi_example(), &RunOptions::default())
            .unwrap();
        assert!(report.success);
        assert_eq!(report.mode, ExecutionMode::Fused);
        assert_eq!(report.stages_executed, 1);
        assert!(report.artifact_rows.contains_key("trips"));
        assert!(report.artifact_rows.contains_key("pickups"));
        assert!(report.audit_results["trips_expectation"]);
        // Artifacts are now queryable on main.
        let out = lh
            .query("SELECT COUNT(*) AS n FROM pickups", "main")
            .unwrap();
        assert!(out.row(0).unwrap()[0].as_i64().unwrap() > 0);
        // Ephemeral branch cleaned up.
        assert!(!lh
            .list_refs()
            .unwrap()
            .iter()
            .any(|r| r.name.starts_with("run_")));
    }

    #[test]
    fn naive_mode_spills_more() {
        let lh_naive = taxi_lakehouse(LakehouseConfig::naive());
        let naive = lh_naive
            .run(&PipelineProject::taxi_example(), &RunOptions::default())
            .unwrap();
        let lh_fused = taxi_lakehouse(LakehouseConfig::default());
        let fused = lh_fused
            .run(&PipelineProject::taxi_example(), &RunOptions::default())
            .unwrap();
        assert_eq!(naive.stages_executed, 3);
        assert_eq!(fused.stages_executed, 1);
        assert!(naive.store_ops.0 > fused.store_ops.0, "naive reads more");
        assert!(
            naive.simulated_total > fused.simulated_total,
            "naive {:?} should exceed fused {:?}",
            naive.simulated_total,
            fused.simulated_total
        );
    }

    #[test]
    fn failing_expectation_rolls_back() {
        let lh = taxi_lakehouse(LakehouseConfig::zero_latency());
        // Re-register the expectation with an impossible threshold.
        lh.register_function(
            "trips_expectation_impl",
            crate::functions::builtins::mean_greater_than("trips", "count", 1e9),
        );
        let err = lh
            .run(&PipelineProject::taxi_example(), &RunOptions::default())
            .unwrap_err();
        assert!(matches!(err, BauplanError::ExpectationFailed { .. }));
        // No artifacts leaked into main; ephemeral branch deleted.
        assert_eq!(lh.list_tables("main").unwrap(), vec!["taxi_table"]);
        assert!(!lh
            .list_refs()
            .unwrap()
            .iter()
            .any(|r| r.name.starts_with("run_")));
        // The failed run is still recorded for auditability.
        assert_eq!(lh.run_count(), 1);
    }

    #[test]
    fn run_on_feature_branch_keeps_main_clean() {
        let lh = taxi_lakehouse(LakehouseConfig::zero_latency());
        lh.create_branch("feat_1", Some("main")).unwrap();
        let report = lh
            .run(
                &PipelineProject::taxi_example(),
                &RunOptions::on_branch("feat_1"),
            )
            .unwrap();
        assert!(report.success);
        assert_eq!(lh.list_tables("feat_1").unwrap().len(), 3);
        assert_eq!(lh.list_tables("main").unwrap().len(), 1);
        // Promote to production: merge feat_1 → main (Fig. 4 step 4).
        lh.merge("feat_1", "main").unwrap();
        assert_eq!(lh.list_tables("main").unwrap().len(), 3);
    }

    #[test]
    fn replay_is_sandboxed_and_uses_old_data() {
        let lh = taxi_lakehouse(LakehouseConfig::zero_latency());
        let r1 = lh
            .run(&PipelineProject::taxi_example(), &RunOptions::default())
            .unwrap();
        let rows_run1 = r1.artifact_rows["trips"];
        // Mutate the source data (append rows after 2019-04-01).
        let more = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("pickup_location_id", DataType::Int64, false),
                Field::new("dropoff_location_id", DataType::Int64, false),
                Field::new("passenger_count", DataType::Int64, true),
                Field::new("pickup_at", DataType::Date, false),
            ]),
            vec![
                Column::from_i64(vec![1, 2]),
                Column::from_i64(vec![1, 2]),
                Column::from_i64(vec![50, 50]),
                Column::from_date(vec![18_100, 18_100]),
            ],
        )
        .unwrap();
        lh.append_table("taxi_table", &more, "main").unwrap();
        // Replay run 1: same data version → same row counts.
        let replayed = lh.replay(r1.run_id, None).unwrap();
        assert_eq!(replayed.artifact_rows["trips"], rows_run1);
        // Sandboxed: main unchanged by the replay (still one trips version
        // from run 1), ephemeral branch kept for inspection.
        assert!(lh
            .list_refs()
            .unwrap()
            .iter()
            .any(|r| r.name == replayed.ephemeral_branch));
        // Fresh run sees the new data.
        let r3 = lh
            .run(&PipelineProject::taxi_example(), &RunOptions::default())
            .unwrap();
        assert_eq!(r3.artifact_rows["trips"], rows_run1 + 2);
    }

    #[test]
    fn replay_selector_runs_subset() {
        let lh = taxi_lakehouse(LakehouseConfig::zero_latency());
        let r1 = lh
            .run(&PipelineProject::taxi_example(), &RunOptions::default())
            .unwrap();
        // `-m pickups+`: only pickups (no descendants).
        let replayed = lh.replay(r1.run_id, Some("pickups")).unwrap();
        assert_eq!(replayed.artifact_rows.len(), 1);
        assert!(replayed.artifact_rows.contains_key("pickups"));
        assert!(lh.replay(r1.run_id, Some("ghost")).is_err());
        assert!(lh.replay(999, None).is_err());
    }

    #[test]
    fn async_run_completes() {
        let lh = Arc::new(taxi_lakehouse(LakehouseConfig::zero_latency()));
        let handle = lh.run_async(PipelineProject::taxi_example(), RunOptions::default());
        let report = handle.wait().unwrap();
        assert!(report.success);
        assert_eq!(lh.list_tables("main").unwrap().len(), 3);
    }

    #[test]
    fn run_report_latency_accounting() {
        let lh = taxi_lakehouse(LakehouseConfig::default());
        let report = lh
            .run(&PipelineProject::taxi_example(), &RunOptions::default())
            .unwrap();
        assert!(report.simulated_total > Duration::ZERO);
        assert_eq!(
            report.simulated_total,
            report.simulated_startup + report.simulated_store
        );
        let (cold, _, _) = report.container_starts;
        assert!(cold >= 1, "first run cold-starts at least one container");
        assert!(report.store_ops.1 > 0, "materialization writes objects");
    }

    #[test]
    fn second_run_benefits_from_warm_containers() {
        let lh = taxi_lakehouse(LakehouseConfig::default());
        let project = PipelineProject::taxi_example();
        let r1 = lh.run(&project, &RunOptions::default()).unwrap();
        let r2 = lh.run(&project, &RunOptions::default()).unwrap();
        let (cold2, _, resume2) = r2.container_starts;
        assert_eq!(cold2, 0, "second run should not cold start");
        assert!(resume2 >= 1, "second run resumes frozen containers");
        assert!(r2.simulated_startup < r1.simulated_startup);
    }

    #[test]
    fn function_transform_nodes_materialize() {
        let lh = Lakehouse::in_memory(LakehouseConfig::zero_latency()).unwrap();
        let base = RecordBatch::try_new(
            Schema::new(vec![Field::new("x", DataType::Int64, false)]),
            vec![Column::from_i64(vec![1, 2, 3])],
        )
        .unwrap();
        lh.create_table("raw", &base, "main").unwrap();
        lh.register_function("double_impl", |ctx: &FnContext| {
            let input = ctx.input("raw")?;
            let col = input.column_by_name("x")?;
            let doubled = lakehouse_columnar::kernels::add(col, col)?;
            Ok(FnOutput::Batch(RecordBatch::try_new(
                Schema::new(vec![Field::new("x", DataType::Int64, false)]),
                vec![doubled],
            )?))
        });
        let project =
            PipelineProject::new("fn_pipeline").with(lakehouse_planner::NodeDef::function(
                "doubled",
                vec!["raw".into()],
                Default::default(),
                "double_impl",
            ));
        let report = lh.run(&project, &RunOptions::default()).unwrap();
        assert!(report.success);
        let out = lh.query("SELECT SUM(x) AS s FROM doubled", "main").unwrap();
        assert_eq!(out.row(0).unwrap()[0], Value::Int64(12));
    }
}
