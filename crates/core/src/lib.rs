//! # bauplan-core
//!
//! The serverless Data Lakehouse platform assembled from the "spare parts"
//! substrates — the Rust reproduction of the paper's Bauplan system.
//!
//! The [`Lakehouse`] façade wires together:
//!
//! * `lakehouse-store` — simulated S3 (the data lake);
//! * `lakehouse-table` — Iceberg-style tables with time travel;
//! * `lakehouse-catalog` — Nessie-style git semantics for data;
//! * `lakehouse-sql` — the embedded DuckDB-style query engine;
//! * `lakehouse-planner` — code intelligence (implicit DAGs, fusion);
//! * `lakehouse-runtime` — containerized serverless execution.
//!
//! and exposes the paper's two CLI verbs as a library API:
//!
//! * [`Lakehouse::query`] — synchronous, point-wise SQL over any branch,
//!   tag, or commit (`bauplan query -q ... -b feat_1`);
//! * [`Lakehouse::run`] / [`Lakehouse::run_async`] — DAG execution with the
//!   **transform-audit-write** pattern: every run executes in an ephemeral
//!   catalog branch, expectations audit the artifacts, and only a fully
//!   green run merges into the target branch (paper Fig. 4);
//! * [`Lakehouse::replay`] — re-execute recorded runs (`--run-id N -m
//!   node+`) against the same code snapshot and data version.
//!
//! ```
//! use bauplan_core::{Lakehouse, LakehouseConfig};
//! use lakehouse_columnar::{Column, RecordBatch, Schema, Field, DataType};
//!
//! let lh = Lakehouse::in_memory(LakehouseConfig::default()).unwrap();
//! let batch = RecordBatch::try_new(
//!     Schema::new(vec![Field::new("x", DataType::Int64, false)]),
//!     vec![Column::from_i64(vec![1, 2, 3])],
//! ).unwrap();
//! lh.create_table("numbers", &batch, "main").unwrap();
//! let out = lh.query("SELECT COUNT(*) AS n FROM numbers", "main").unwrap();
//! assert_eq!(out.num_rows(), 1);
//! ```

pub mod admission;
pub mod config;
pub mod error;
pub mod estimator;
pub mod functions;
pub mod governance;
pub mod lakehouse;
pub mod provider;
pub mod run;
pub mod system;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionPermit, ShedInfo};
pub use config::LakehouseConfig;
pub use error::{BauplanError, Result};
pub use estimator::MemoryEstimator;
pub use functions::{builtins, FnContext, FnOutput, FunctionRegistry, NativeFunction};
pub use governance::{standard_policy, AccessController, Action, Grant, Principal};
pub use lakehouse::Lakehouse;
pub use run::{RunOptions, RunReport};

// Re-export the pieces users need to build pipelines without importing every
// substrate crate.
pub use lakehouse_planner::project::Requirements;
pub use lakehouse_planner::{ExecutionMode, LogicalPipeline, PhysicalPipeline};
pub use lakehouse_planner::{NodeDef, PipelineProject};
pub use lakehouse_scheduler::{PolicyKind, SchedulingPolicy};
pub use lakehouse_store::{BufferPool, ChaosConfig, PoolMetrics};
