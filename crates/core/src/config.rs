//! Platform configuration.

use lakehouse_planner::ExecutionMode;
use lakehouse_runtime::RuntimeConfig;
use lakehouse_scheduler::PolicyKind;
use lakehouse_store::{BufferPool, ChaosConfig, LatencyModel};
use std::sync::Arc;

/// Configuration for a [`crate::Lakehouse`].
#[derive(Debug, Clone)]
pub struct LakehouseConfig {
    /// Object-store prefix for table data/metadata.
    pub warehouse_prefix: String,
    /// Object-store prefix for the catalog.
    pub catalog_prefix: String,
    /// Latency model for the simulated object store.
    pub latency: LatencyModel,
    /// How pipeline runs map steps to containers.
    pub execution_mode: ExecutionMode,
    /// Serverless runtime tuning.
    pub runtime: RuntimeConfig,
    /// Default memory estimate per pipeline step (drives fusion packing and
    /// the per-invocation memory grant).
    pub default_step_memory: u64,
    /// Author recorded on catalog commits.
    pub author: String,
    /// Tenant label stamped on this instance's query contexts — carried into
    /// per-query resource ledgers, flight-recorder events, and
    /// `system.queries` rows (`--tenant` on the CLI).
    pub tenant: String,
    /// Row-group size for table writes.
    pub row_group_rows: usize,
    /// Worker threads for parallel SQL operators (1 = serial; the paper's
    /// §5 "parallelizing SQL execution").
    pub sql_parallelism: usize,
    /// Worker threads for parallel table scans (1 = serial). Any setting
    /// yields byte-identical query results; higher values overlap
    /// object-store latency across a scan's files.
    pub scan_parallelism: usize,
    /// Capacity of the metadata/range LRU between queries and the object
    /// store (manifests, file footers, data ranges), in bytes. 0 disables
    /// caching. Off by default so store-traffic measurements (pruning
    /// tests, paper tables) keep their seed semantics. Ignored when
    /// `shared_pool` is set — the shared pool carries its own budget.
    pub metadata_cache_bytes: usize,
    /// A process-wide verified buffer pool to attach this instance's cache
    /// layer to (`--shared-pool-mb` on the CLI). Several `Lakehouse`
    /// instances handed the same `Arc` share one admission-controlled,
    /// checksummed page cache — the second engine's footer/manifest reads
    /// hit pages the first one already pulled. `None` (the default) keeps
    /// the private per-instance cache governed by `metadata_cache_bytes`.
    pub shared_pool: Option<Arc<BufferPool>>,
    /// Execute queries through the streaming pipeline (pull-based, one batch
    /// per data file, early termination on LIMIT). Off by default: the
    /// materialized path keeps the seed's exact operator ordering for
    /// metrics-asserting callers.
    pub stream_execution: bool,
    /// Maximum rows per batch in streaming execution (oversized source
    /// batches are split).
    pub stream_batch_rows: usize,
    /// Retries per failed operation across the resilience layer: store
    /// requests (via `RetryStore`), per-file scan re-reads, and idempotent
    /// run steps. 0 (the default) disables the retry wrappers entirely, so
    /// the store stack — and every op-count-asserting test — is
    /// byte-identical to a build without the resilience layer.
    pub retry_max: u32,
    /// Total backoff budget for store-level retries, in milliseconds
    /// (bounds worst-case added latency per `Lakehouse` instance).
    pub retry_budget_ms: u64,
    /// Seeded fault injection between the retry layer and the simulated
    /// store. `None` (the default) injects nothing and adds no wrapper.
    pub chaos: Option<ChaosConfig>,
    /// Scan partial-failure policy: `false` (default) fails a query on the
    /// first data file that exhausts its retries; `true` drops the file,
    /// counts it in `ScanReport::files_failed`, and returns the rest.
    pub scan_partial_failures: bool,
    /// Worker threads of the completion-based I/O dispatcher
    /// (`--io-depth`). 0 (the default) builds no dispatcher: scans use the
    /// seed's synchronous fetch path, byte for byte.
    pub io_depth: usize,
    /// Speculative sequential read-ahead window for scans (`--read-ahead`):
    /// up to this many upcoming data files are submitted to the dispatcher
    /// while earlier ones decode. 0 (the default) disables read-ahead;
    /// requires `io_depth > 0` to take effect. Results are byte-identical
    /// either way.
    pub read_ahead: usize,
    /// Hedge tail-slow dispatcher reads at the live p95 of the store's
    /// latency distribution (`--hedge-p95`), with a win-rate circuit
    /// breaker. Off by default.
    pub hedge_p95: bool,
    /// Per-query deadline in milliseconds (`--query-timeout-ms`). Measured
    /// against wall time plus attributed simulated retry stall; past it the
    /// query's cancel token trips with `KillReason::Deadline`. 0 (the
    /// default) arms no deadline.
    pub query_timeout_ms: u64,
    /// Per-query peak-working-set budget in bytes (`--memory-budget-mb` on
    /// the CLI). Enforced by the streaming executor against its shared
    /// `MemoryTracker`; trips as `KillReason::MemoryBudget`. 0 = off.
    pub memory_budget_bytes: u64,
    /// Per-query attributed IO byte budget, read + written
    /// (`--io-budget-mb`). Trips as `KillReason::IoBudget`. 0 = off.
    pub io_budget_bytes: u64,
    /// Per-query retry-stall budget in milliseconds: total backoff a query
    /// may be charged before it is killed (as `KillReason::Deadline` — a
    /// query out of stall budget is past its effective deadline). 0 = off.
    pub retry_stall_budget_ms: u64,
    /// Admission gate: maximum concurrently executing top-level queries
    /// (`--max-concurrent-queries`). 0 (the default) builds no gate at all
    /// — no queueing, no shedding, seed-identical behavior.
    pub max_concurrent_queries: usize,
    /// Per-tenant cap on admission slots (`--tenant-slots`). 0 = no
    /// per-tenant cap (a tenant may use every slot). Only meaningful when
    /// `max_concurrent_queries > 0`.
    pub tenant_slots: usize,
    /// Bounded admission wait queue: submissions beyond this many waiters
    /// are shed immediately with `Overloaded { retry_after }`.
    pub queue_cap: usize,
    /// Maximum milliseconds a submission may wait in the admission queue
    /// before being shed with `Overloaded { retry_after }`.
    pub queue_deadline_ms: u64,
    /// Which scheduling policy orders the admission queue
    /// (`--sched-policy fifo|fair|cost`). The default, `Fifo`, is
    /// byte-identical to the pre-policy-layer gate. Only meaningful when
    /// `max_concurrent_queries > 0`.
    pub sched_policy: PolicyKind,
    /// Fair-share weights, `(tenant, weight)` (`--tenant-weight name=W`,
    /// repeatable). Unlisted tenants weigh 1.0. Used by the `FairShare`
    /// policy; ignored by the others.
    pub tenant_weights: Vec<(String, f64)>,
    /// Per-tenant byte quota on the shared buffer pool's *protected*
    /// segment (`--pool-tenant-quota-mb`). 0 (the default) disables tenant
    /// accounting entirely — pool behavior stays byte-identical to an
    /// unquota'd build. When set, a tenant at quota keeps its pages in
    /// probation (no promotion), and a miss never evicts another tenant's
    /// protected pages.
    pub pool_tenant_quota_bytes: usize,
}

impl Default for LakehouseConfig {
    fn default() -> Self {
        LakehouseConfig {
            warehouse_prefix: "warehouse".into(),
            catalog_prefix: "_catalog".into(),
            latency: LatencyModel::s3_like(),
            execution_mode: ExecutionMode::Fused,
            runtime: RuntimeConfig::default(),
            default_step_memory: 512 * 1024 * 1024,
            author: "bauplan".into(),
            tenant: "default".into(),
            row_group_rows: 8192,
            sql_parallelism: 1,
            scan_parallelism: 1,
            metadata_cache_bytes: 0,
            shared_pool: None,
            stream_execution: false,
            stream_batch_rows: 8192,
            retry_max: 0,
            retry_budget_ms: 30_000,
            chaos: None,
            scan_partial_failures: false,
            io_depth: 0,
            read_ahead: 0,
            hedge_p95: false,
            query_timeout_ms: 0,
            memory_budget_bytes: 0,
            io_budget_bytes: 0,
            retry_stall_budget_ms: 0,
            max_concurrent_queries: 0,
            tenant_slots: 0,
            queue_cap: 16,
            queue_deadline_ms: 100,
            sched_policy: PolicyKind::Fifo,
            tenant_weights: Vec::new(),
            pool_tenant_quota_bytes: 0,
        }
    }
}

impl LakehouseConfig {
    /// The naive one-function-per-node configuration (the paper's first
    /// version, used as the baseline in benches).
    pub fn naive() -> Self {
        LakehouseConfig {
            execution_mode: ExecutionMode::Naive,
            ..Default::default()
        }
    }

    /// Zero-latency store (unit tests that don't care about timing).
    pub fn zero_latency() -> Self {
        LakehouseConfig {
            latency: LatencyModel::zero(),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fused() {
        assert_eq!(
            LakehouseConfig::default().execution_mode,
            ExecutionMode::Fused
        );
        assert_eq!(
            LakehouseConfig::naive().execution_mode,
            ExecutionMode::Naive
        );
    }
}
