//! Platform configuration.

use lakehouse_planner::ExecutionMode;
use lakehouse_runtime::RuntimeConfig;
use lakehouse_store::LatencyModel;

/// Configuration for a [`crate::Lakehouse`].
#[derive(Debug, Clone)]
pub struct LakehouseConfig {
    /// Object-store prefix for table data/metadata.
    pub warehouse_prefix: String,
    /// Object-store prefix for the catalog.
    pub catalog_prefix: String,
    /// Latency model for the simulated object store.
    pub latency: LatencyModel,
    /// How pipeline runs map steps to containers.
    pub execution_mode: ExecutionMode,
    /// Serverless runtime tuning.
    pub runtime: RuntimeConfig,
    /// Default memory estimate per pipeline step (drives fusion packing and
    /// the per-invocation memory grant).
    pub default_step_memory: u64,
    /// Author recorded on catalog commits.
    pub author: String,
    /// Row-group size for table writes.
    pub row_group_rows: usize,
    /// Worker threads for parallel SQL operators (1 = serial; the paper's
    /// §5 "parallelizing SQL execution").
    pub sql_parallelism: usize,
    /// Worker threads for parallel table scans (1 = serial). Any setting
    /// yields byte-identical query results; higher values overlap
    /// object-store latency across a scan's files.
    pub scan_parallelism: usize,
    /// Capacity of the metadata/range LRU between queries and the object
    /// store (manifests, file footers, data ranges), in bytes. 0 disables
    /// caching. Off by default so store-traffic measurements (pruning
    /// tests, paper tables) keep their seed semantics.
    pub metadata_cache_bytes: usize,
    /// Execute queries through the streaming pipeline (pull-based, one batch
    /// per data file, early termination on LIMIT). Off by default: the
    /// materialized path keeps the seed's exact operator ordering for
    /// metrics-asserting callers.
    pub stream_execution: bool,
    /// Maximum rows per batch in streaming execution (oversized source
    /// batches are split).
    pub stream_batch_rows: usize,
}

impl Default for LakehouseConfig {
    fn default() -> Self {
        LakehouseConfig {
            warehouse_prefix: "warehouse".into(),
            catalog_prefix: "_catalog".into(),
            latency: LatencyModel::s3_like(),
            execution_mode: ExecutionMode::Fused,
            runtime: RuntimeConfig::default(),
            default_step_memory: 512 * 1024 * 1024,
            author: "bauplan".into(),
            row_group_rows: 8192,
            sql_parallelism: 1,
            scan_parallelism: 1,
            metadata_cache_bytes: 0,
            stream_execution: false,
            stream_batch_rows: 8192,
        }
    }
}

impl LakehouseConfig {
    /// The naive one-function-per-node configuration (the paper's first
    /// version, used as the baseline in benches).
    pub fn naive() -> Self {
        LakehouseConfig {
            execution_mode: ExecutionMode::Naive,
            ..Default::default()
        }
    }

    /// Zero-latency store (unit tests that don't care about timing).
    pub fn zero_latency() -> Self {
        LakehouseConfig {
            latency: LatencyModel::zero(),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fused() {
        assert_eq!(
            LakehouseConfig::default().execution_mode,
            ExecutionMode::Fused
        );
        assert_eq!(
            LakehouseConfig::naive().execution_mode,
            ExecutionMode::Naive
        );
    }
}
