//! Admission control: a bounded concurrency gate with per-tenant slot
//! quotas and a bounded wait queue, wrapped around every top-level
//! query/run/profile entry point (DESIGN.md §16–§17).
//!
//! The paper's multi-tenant premise (§3.1) is that a serverless lakehouse
//! is shared: one greedy tenant must not be able to monopolize the
//! platform. The gate enforces that *before* any work starts:
//!
//! - at most `max_slots` work items execute concurrently, platform-wide;
//! - a tenant holding `tenant_slots` of them waits even when free slots
//!   remain for others (quota), so a flood from one tenant cannot starve
//!   the rest;
//! - waiters park in a bounded queue. *Which* eligible waiter runs next is
//!   delegated to a pluggable [`SchedulingPolicy`] from the
//!   `lakehouse-scheduler` crate — FIFO-among-eligible by default
//!   (byte-identical to the pre-policy-layer gate), weighted fair sharing
//!   or cost-aware ordering by config;
//! - a submission that would overflow the queue, or waits longer than the
//!   queue deadline, is **shed** with a typed `Overloaded { retry_after }`
//!   — load the platform cannot take is refused crisply, never queued
//!   unboundedly (the "embarrassingly scalable" failure mode the paper
//!   warns about is the retry storm a silent queue produces).
//!
//! The gate publishes `admission.{admitted,queued,shed}` and
//! `scheduler.{picks,preempt_skips,aging_promotions}` counters, records
//! `admission_admit` / `admission_shed` / `sched_pick` flight-recorder
//! events, and tracks per-tenant running peaks so the overload bench can
//! prove quotas held.
//!
//! This controller stays the generic *executor* of scheduling decisions:
//! it owns the mutex, the condvar, the slot bookkeeping, the shedding and
//! the RAII permits. The policy owns only the ordering. Every blocked
//! waiter re-evaluates `pick` when it wakes and only the picked waiter
//! consumes the decision, so `pick` is pure and the exactly-once hooks
//! (`on_enqueue` / `on_pick` / `on_admit` / `on_complete`) carry all
//! policy-state transitions.

use lakehouse_obs::{Counter, EventKind};
use lakehouse_scheduler::{PolicyKind, RunningSet, SchedulingPolicy, WaitingJob};
use std::collections::{HashMap, VecDeque};
// std::sync because the vendored `parking_lot` has no condvar; poisoned
// locks are recovered (`into_inner`), never unwrapped.
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How often a queued waiter re-evaluates its position (bounds how long a
/// wake-up can be missed; admission normally proceeds via `notify_all`).
const QUEUE_POLL: Duration = Duration::from_millis(5);

/// Tuning for an [`AdmissionController`]. Derived from `LakehouseConfig`
/// by [`AdmissionConfig::from_lakehouse`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Platform-wide concurrent work-item slots (>= 1).
    pub max_slots: usize,
    /// Per-tenant slot cap; 0 = no per-tenant cap.
    pub tenant_slots: usize,
    /// Waiters beyond this are shed immediately.
    pub queue_cap: usize,
    /// Longest a waiter may queue before being shed.
    pub queue_deadline: Duration,
    /// Which scheduling policy orders the queue (default FIFO).
    pub policy: PolicyKind,
    /// Fair-share weights, `(tenant, weight)`; unlisted tenants weigh 1.0.
    pub weights: Vec<(String, f64)>,
}

impl AdmissionConfig {
    /// The gate a `LakehouseConfig` asks for, or `None` when admission is
    /// disabled (`max_concurrent_queries == 0`, the default).
    pub fn from_lakehouse(cfg: &crate::LakehouseConfig) -> Option<AdmissionConfig> {
        if cfg.max_concurrent_queries == 0 {
            return None;
        }
        Some(AdmissionConfig {
            max_slots: cfg.max_concurrent_queries,
            tenant_slots: cfg.tenant_slots,
            queue_cap: cfg.queue_cap,
            queue_deadline: Duration::from_millis(cfg.queue_deadline_ms),
            policy: cfg.sched_policy,
            weights: cfg.tenant_weights.clone(),
        })
    }
}

/// Why and how a submission was refused by the gate.
#[derive(Debug, Clone, Copy)]
pub struct ShedInfo {
    /// Back off at least this long before resubmitting.
    pub retry_after: Duration,
    /// How long the submission waited in the queue before being shed
    /// (zero for queue-overflow sheds, which never queue at all).
    pub waited: Duration,
}

struct State {
    /// Currently executing work items per tenant.
    running: HashMap<String, usize>,
    total_running: usize,
    /// Queued waiters, in arrival order; the policy picks among them.
    queue: VecDeque<WaitingJob>,
    next_id: u64,
    /// High-water marks, for the overload bench's quota proof.
    peak_running: HashMap<String, usize>,
    peak_total: usize,
    /// The pluggable scheduling decision (executor-owned, mutex-protected).
    policy: Box<dyn SchedulingPolicy>,
}

struct Obs {
    admitted: Arc<Counter>,
    queued: Arc<Counter>,
    shed: Arc<Counter>,
    picks: Arc<Counter>,
    preempt_skips: Arc<Counter>,
    aging_promotions: Arc<Counter>,
}

struct Inner {
    cfg: AdmissionConfig,
    policy_name: &'static str,
    state: Mutex<State>,
    cv: Condvar,
    obs: Obs,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The bounded, quota-aware admission gate. Cheap to clone (`Arc` inside);
/// several `Lakehouse` instances handed the same controller share one
/// platform-wide gate — that is how the multi-tenant bench models tenants.
#[derive(Clone)]
pub struct AdmissionController {
    inner: Arc<Inner>,
}

/// RAII admission slot: dropping it releases the slot and wakes waiters.
pub struct AdmissionPermit {
    inner: Arc<Inner>,
    tenant: String,
    waited: Duration,
    started: Instant,
}

impl AdmissionPermit {
    /// How long the work item queued before this permit was granted.
    pub fn waited(&self) -> Duration {
        self.waited
    }
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("tenant", &self.tenant)
            .field("waited", &self.waited)
            .finish_non_exhaustive()
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let held = self.started.elapsed().as_secs_f64();
        let mut st = self.inner.lock();
        st.total_running = st.total_running.saturating_sub(1);
        if let Some(n) = st.running.get_mut(&self.tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                st.running.remove(&self.tenant);
            }
        }
        st.policy.on_complete(&self.tenant, held);
        drop(st);
        self.inner.cv.notify_all();
    }
}

impl AdmissionController {
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        let reg = lakehouse_obs::global();
        let policy = cfg.policy.build(&cfg.weights);
        AdmissionController {
            inner: Arc::new(Inner {
                cfg: AdmissionConfig {
                    max_slots: cfg.max_slots.max(1),
                    queue_cap: cfg.queue_cap,
                    ..cfg.clone()
                },
                policy_name: cfg.policy.name(),
                state: Mutex::new(State {
                    running: HashMap::new(),
                    total_running: 0,
                    queue: VecDeque::new(),
                    next_id: 1,
                    peak_running: HashMap::new(),
                    peak_total: 0,
                    policy,
                }),
                cv: Condvar::new(),
                obs: Obs {
                    admitted: reg.counter("admission.admitted"),
                    queued: reg.counter("admission.queued"),
                    shed: reg.counter("admission.shed"),
                    picks: reg.counter("scheduler.picks"),
                    preempt_skips: reg.counter("scheduler.preempt_skips"),
                    aging_promotions: reg.counter("scheduler.aging_promotions"),
                },
            }),
        }
    }

    /// Name of the scheduling policy this gate runs (`"fifo"`,
    /// `"fair_share"`, or `"cost_aware"`).
    pub fn policy_name(&self) -> &'static str {
        self.inner.policy_name
    }

    /// Waiters currently queued (diagnostic; racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Acquire a slot for a whole query from `tenant` (no cost estimate).
    pub fn acquire(&self, tenant: &str) -> Result<AdmissionPermit, ShedInfo> {
        self.acquire_item(tenant, 0.0)
    }

    /// Acquire a slot for one schedulable work item — a query or a DAG
    /// stage — queueing (bounded, policy-ordered) when the gate is full.
    /// `cost_hint` is the expected execution cost in seconds (0.0 =
    /// unknown); cost-aware policies order by it. `Err(ShedInfo)` means the
    /// submission was shed — queue overflow or queue-deadline — and the
    /// caller should back off at least `retry_after` before resubmitting.
    pub fn acquire_item(&self, tenant: &str, cost_hint: f64) -> Result<AdmissionPermit, ShedInfo> {
        let inner = &self.inner;
        let mut st = inner.lock();
        // Fast path: nobody queued ahead and quota allows.
        if st.queue.is_empty() && Self::eligible(&inner.cfg, &st, tenant) {
            let job = WaitingJob {
                id: 0,
                tenant: tenant.to_string(),
                enqueued_tick: st.next_id,
                cost_hint,
            };
            st.policy.on_admit(&job);
            return Ok(self.admit(&mut st, tenant, Duration::ZERO));
        }
        if st.queue.len() >= inner.cfg.queue_cap {
            drop(st);
            return Err(self.shed(tenant, Duration::ZERO));
        }
        let id = st.next_id;
        st.next_id += 1;
        let job = WaitingJob {
            id,
            tenant: tenant.to_string(),
            enqueued_tick: id,
            cost_hint,
        };
        st.policy.on_enqueue(&job);
        st.queue.push_back(job);
        inner.obs.queued.inc();
        let enqueued = Instant::now();
        let deadline = enqueued + inner.cfg.queue_deadline;
        loop {
            // Ask the policy which eligible waiter runs next. Every waiter
            // evaluates this on wake; only the one whose id was picked
            // consumes the decision (hence `pick` is pure — see the
            // scheduler crate's idempotence contract).
            let picked = {
                let State {
                    queue,
                    policy,
                    running,
                    total_running,
                    ..
                } = &mut *st;
                queue.make_contiguous();
                let (jobs, _) = queue.as_slices();
                let view = RunningSet::new(
                    *total_running,
                    inner.cfg.max_slots,
                    inner.cfg.tenant_slots,
                    running,
                );
                policy.pick(jobs, &view).map(|i| (i, jobs[i].id))
            };
            if let Some((pos, picked_id)) = picked {
                if picked_id == id {
                    // Consume the pick: exactly-once hooks + counters.
                    {
                        let State {
                            queue,
                            policy,
                            running,
                            total_running,
                            ..
                        } = &mut *st;
                        let (jobs, _) = queue.as_slices();
                        let view = RunningSet::new(
                            *total_running,
                            inner.cfg.max_slots,
                            inner.cfg.tenant_slots,
                            running,
                        );
                        policy.on_pick(jobs, &view, pos);
                        let job = &jobs[pos];
                        policy.on_admit(job);
                        let promotions = policy.take_aging_promotions();
                        if promotions > 0 {
                            inner.obs.aging_promotions.add(promotions);
                        }
                    }
                    st.queue.remove(pos);
                    inner.obs.picks.inc();
                    inner.obs.preempt_skips.add(pos as u64);
                    lakehouse_obs::recorder().record_for(
                        EventKind::SchedPick,
                        0,
                        tenant,
                        inner.policy_name,
                        pos as u64,
                    );
                    return Ok(self.admit(&mut st, tenant, enqueued.elapsed()));
                }
            }
            let now = Instant::now();
            if now >= deadline {
                let pos = st
                    .queue
                    .iter()
                    .position(|j| j.id == id)
                    .expect("waiter present until admitted or shed");
                st.queue.remove(pos);
                drop(st);
                return Err(self.shed(tenant, enqueued.elapsed()));
            }
            let timeout = (deadline - now).min(QUEUE_POLL);
            st = inner
                .cv
                .wait_timeout(st, timeout)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    fn eligible(cfg: &AdmissionConfig, st: &State, tenant: &str) -> bool {
        if st.total_running >= cfg.max_slots {
            return false;
        }
        if cfg.tenant_slots > 0 {
            let used = st.running.get(tenant).copied().unwrap_or(0);
            if used >= cfg.tenant_slots {
                return false;
            }
        }
        true
    }

    fn admit(&self, st: &mut State, tenant: &str, waited: Duration) -> AdmissionPermit {
        st.total_running += 1;
        let n = st.running.entry(tenant.to_string()).or_insert(0);
        *n += 1;
        let n = *n;
        let peak = st.peak_running.entry(tenant.to_string()).or_insert(0);
        *peak = (*peak).max(n);
        st.peak_total = st.peak_total.max(st.total_running);
        self.inner.obs.admitted.inc();
        lakehouse_obs::recorder().record_for(
            EventKind::AdmissionAdmit,
            0,
            tenant,
            "",
            waited.as_nanos() as u64,
        );
        AdmissionPermit {
            inner: Arc::clone(&self.inner),
            tenant: tenant.to_string(),
            waited,
            started: Instant::now(),
        }
    }

    fn shed(&self, tenant: &str, waited: Duration) -> ShedInfo {
        // Suggest waiting one full queue window: by then the queue the
        // caller could not join has either drained or the platform is still
        // overloaded and the resubmission will be shed again just as fast.
        let retry_after = self.inner.cfg.queue_deadline.max(Duration::from_millis(1));
        self.inner.obs.shed.inc();
        lakehouse_obs::recorder().record_for(
            EventKind::AdmissionShed,
            0,
            tenant,
            "",
            retry_after.as_nanos() as u64,
        );
        ShedInfo {
            retry_after,
            waited,
        }
    }

    /// Work items currently holding slots.
    pub fn running(&self) -> usize {
        self.inner.lock().total_running
    }

    /// High-water mark of concurrently running work items for `tenant` —
    /// the overload bench's proof that a quota held.
    pub fn peak_running(&self, tenant: &str) -> usize {
        self.inner
            .lock()
            .peak_running
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// High-water mark of concurrently running work items platform-wide.
    pub fn peak_total(&self) -> usize {
        self.inner.lock().peak_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn cfg(max: usize, per_tenant: usize, queue_cap: usize, deadline_ms: u64) -> AdmissionConfig {
        AdmissionConfig {
            max_slots: max,
            tenant_slots: per_tenant,
            queue_cap,
            queue_deadline: Duration::from_millis(deadline_ms),
            policy: PolicyKind::Fifo,
            weights: Vec::new(),
        }
    }

    #[test]
    fn slots_bound_concurrency_and_release_admits_waiters() {
        let gate = AdmissionController::new(cfg(2, 0, 8, 5_000));
        let p1 = gate.acquire("a").expect("slot 1");
        let p2 = gate.acquire("a").expect("slot 2");
        assert_eq!(gate.running(), 2);
        let g2 = gate.clone();
        let h = std::thread::spawn(move || g2.acquire("b").map(drop).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(gate.running(), 2, "third query must queue, not run");
        drop(p1);
        assert!(h.join().unwrap(), "released slot admits the waiter");
        drop(p2);
        assert_eq!(gate.running(), 0);
        assert_eq!(gate.peak_total(), 2);
    }

    #[test]
    fn full_queue_sheds_immediately_with_retry_after() {
        let gate = AdmissionController::new(cfg(1, 0, 0, 50));
        let _p = gate.acquire("a").expect("slot");
        let start = Instant::now();
        let shed = gate.acquire("b").expect_err("queue cap 0 must shed");
        assert!(shed.retry_after >= Duration::from_millis(1));
        assert_eq!(shed.waited, Duration::ZERO, "overflow sheds never queue");
        assert!(
            start.elapsed() < Duration::from_millis(25),
            "overflow shed must be immediate, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn queue_deadline_sheds_stuck_waiters_and_reports_wait() {
        let gate = AdmissionController::new(cfg(1, 0, 8, 30));
        let _p = gate.acquire("a").expect("slot");
        let start = Instant::now();
        let shed = gate.acquire("b").expect_err("deadline must shed");
        let waited = start.elapsed();
        assert!(shed.retry_after >= Duration::from_millis(1));
        assert!(
            waited >= Duration::from_millis(25) && waited < Duration::from_millis(500),
            "shed at ~the 30 ms queue deadline, waited {waited:?}"
        );
        // Satellite: the shed reports how long the victim queued, so its
        // wait lands in the ledger instead of vanishing.
        assert!(
            shed.waited >= Duration::from_millis(25) && shed.waited <= waited,
            "shed must carry the queue wait, got {:?}",
            shed.waited
        );
    }

    #[test]
    fn tenant_quota_skips_greedy_waiters_without_blocking_others() {
        // 2 slots, 1 per tenant. Tenant a holds its quota; a's second query
        // queues. Tenant b must be admitted past it (no head-of-line block).
        let gate = AdmissionController::new(cfg(2, 1, 8, 5_000));
        let pa = gate.acquire("a").expect("a's slot");
        let ga = gate.clone();
        let a_waiting = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&a_waiting);
        let h = std::thread::spawn(move || {
            flag.store(1, Ordering::SeqCst);
            let p = ga.acquire("a");
            p.map(drop).is_ok()
        });
        while a_waiting.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(10));
        // b jumps past a's queued-over-quota waiter.
        let pb = gate.acquire("b").expect("b must not starve behind a");
        assert_eq!(gate.peak_running("a"), 1, "a's quota held");
        drop(pa); // frees a's quota: the queued a waiter admits
        assert!(h.join().unwrap());
        drop(pb);
        assert!(gate.peak_running("a") <= 1);
        assert_eq!(gate.peak_running("b"), 1);
    }

    #[test]
    fn admitted_permit_reports_queue_wait() {
        let gate = AdmissionController::new(cfg(1, 0, 8, 5_000));
        let p0 = gate.acquire("a").expect("uncontended");
        assert_eq!(p0.waited(), Duration::ZERO, "fast path never queues");
        let g2 = gate.clone();
        let h = std::thread::spawn(move || {
            let p = g2.acquire("b").expect("admitted after release");
            p.waited()
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(p0);
        let waited = h.join().unwrap();
        assert!(
            waited >= Duration::from_millis(10),
            "queued waiter must report its wait, got {waited:?}"
        );
    }

    #[test]
    fn fair_share_gate_splits_work_by_weight() {
        // End-to-end through the executor: one slot, tenants alpha/beta at
        // weights 3:1, both saturating. Completed work converges to ~3:1.
        let gate = AdmissionController::new(AdmissionConfig {
            max_slots: 1,
            tenant_slots: 0,
            queue_cap: 64,
            queue_deadline: Duration::from_secs(30),
            policy: PolicyKind::FairShare,
            weights: vec![("alpha".into(), 3.0), ("beta".into(), 1.0)],
        });
        assert_eq!(gate.policy_name(), "fair_share");
        let stop = Arc::new(AtomicUsize::new(0));
        let counts: Vec<Arc<AtomicUsize>> = (0..2).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        let mut handles = Vec::new();
        for (ti, tenant) in ["alpha", "beta"].into_iter().enumerate() {
            // Two submitter threads per tenant so both tenants always have
            // a queued waiter (single-threaded tenants degenerate to
            // alternation regardless of weights).
            for _ in 0..2 {
                let g = gate.clone();
                let stop = Arc::clone(&stop);
                let count = Arc::clone(&counts[ti]);
                handles.push(std::thread::spawn(move || {
                    while stop.load(Ordering::SeqCst) == 0 {
                        if let Ok(permit) = g.acquire(tenant) {
                            std::thread::sleep(Duration::from_millis(1));
                            drop(permit);
                            count.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }));
            }
        }
        std::thread::sleep(Duration::from_millis(400));
        stop.store(1, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        let (a, b) = (
            counts[0].load(Ordering::SeqCst) as f64,
            counts[1].load(Ordering::SeqCst) as f64,
        );
        assert!(b > 0.0, "beta must not starve");
        let ratio = a / b;
        assert!(
            (2.0..=4.5).contains(&ratio),
            "weighted 3:1 gate: completed ratio {ratio} (alpha={a}, beta={b})"
        );
    }
}
