//! Admission control: a bounded concurrency gate with per-tenant slot
//! quotas and a bounded FIFO wait queue, wrapped around every top-level
//! query/run/profile entry point (DESIGN.md §16).
//!
//! The paper's multi-tenant premise (§3.1) is that a serverless lakehouse
//! is shared: one greedy tenant must not be able to monopolize the
//! platform. The gate enforces that *before* any work starts:
//!
//! - at most `max_slots` queries execute concurrently, platform-wide;
//! - a tenant holding `tenant_slots` of them waits even when free slots
//!   remain for others (quota), so a flood from one tenant cannot starve
//!   the rest;
//! - waiters park in a bounded FIFO queue. Admission picks the **first
//!   eligible** waiter — FIFO order, but a quota-exhausted tenant's
//!   waiters are skipped rather than blocking the head of the line;
//! - a submission that would overflow the queue, or waits longer than the
//!   queue deadline, is **shed** with a typed `Overloaded { retry_after }`
//!   — load the platform cannot take is refused crisply, never queued
//!   unboundedly (the "embarrassingly scalable" failure mode the paper
//!   warns about is the retry storm a silent queue produces).
//!
//! The gate publishes `admission.{admitted,queued,shed}` counters, records
//! `admission_admit` / `admission_shed` flight-recorder events, and tracks
//! per-tenant running peaks so the overload bench can prove quotas held.

use lakehouse_obs::{Counter, EventKind};
use std::collections::{HashMap, VecDeque};
// std::sync because the vendored `parking_lot` has no condvar; poisoned
// locks are recovered (`into_inner`), never unwrapped.
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How often a queued waiter re-evaluates its position (bounds how long a
/// wake-up can be missed; admission normally proceeds via `notify_all`).
const QUEUE_POLL: Duration = Duration::from_millis(5);

/// Tuning for an [`AdmissionController`]. Derived from `LakehouseConfig`
/// by [`AdmissionConfig::from_lakehouse`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Platform-wide concurrent-query slots (>= 1).
    pub max_slots: usize,
    /// Per-tenant slot cap; 0 = no per-tenant cap.
    pub tenant_slots: usize,
    /// Waiters beyond this are shed immediately.
    pub queue_cap: usize,
    /// Longest a waiter may queue before being shed.
    pub queue_deadline: Duration,
}

impl AdmissionConfig {
    /// The gate a `LakehouseConfig` asks for, or `None` when admission is
    /// disabled (`max_concurrent_queries == 0`, the default).
    pub fn from_lakehouse(cfg: &crate::LakehouseConfig) -> Option<AdmissionConfig> {
        if cfg.max_concurrent_queries == 0 {
            return None;
        }
        Some(AdmissionConfig {
            max_slots: cfg.max_concurrent_queries,
            tenant_slots: cfg.tenant_slots,
            queue_cap: cfg.queue_cap,
            queue_deadline: Duration::from_millis(cfg.queue_deadline_ms),
        })
    }
}

struct State {
    /// Currently executing queries per tenant.
    running: HashMap<String, usize>,
    total_running: usize,
    /// FIFO of queued waiters: (waiter id, tenant).
    queue: VecDeque<(u64, String)>,
    next_id: u64,
    /// High-water marks, for the overload bench's quota proof.
    peak_running: HashMap<String, usize>,
    peak_total: usize,
}

struct Obs {
    admitted: Arc<Counter>,
    queued: Arc<Counter>,
    shed: Arc<Counter>,
}

struct Inner {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    cv: Condvar,
    obs: Obs,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The bounded, quota-aware admission gate. Cheap to clone (`Arc` inside);
/// several `Lakehouse` instances handed the same controller share one
/// platform-wide gate — that is how the multi-tenant bench models tenants.
#[derive(Clone)]
pub struct AdmissionController {
    inner: Arc<Inner>,
}

/// RAII admission slot: dropping it releases the slot and wakes waiters.
pub struct AdmissionPermit {
    inner: Arc<Inner>,
    tenant: String,
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut st = self.inner.lock();
        st.total_running = st.total_running.saturating_sub(1);
        if let Some(n) = st.running.get_mut(&self.tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                st.running.remove(&self.tenant);
            }
        }
        drop(st);
        self.inner.cv.notify_all();
    }
}

impl AdmissionController {
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        let reg = lakehouse_obs::global();
        AdmissionController {
            inner: Arc::new(Inner {
                cfg: AdmissionConfig {
                    max_slots: cfg.max_slots.max(1),
                    queue_cap: cfg.queue_cap,
                    ..cfg
                },
                state: Mutex::new(State {
                    running: HashMap::new(),
                    total_running: 0,
                    queue: VecDeque::new(),
                    next_id: 1,
                    peak_running: HashMap::new(),
                    peak_total: 0,
                }),
                cv: Condvar::new(),
                obs: Obs {
                    admitted: reg.counter("admission.admitted"),
                    queued: reg.counter("admission.queued"),
                    shed: reg.counter("admission.shed"),
                },
            }),
        }
    }

    /// Acquire a slot for `tenant`, queueing (bounded, FIFO-among-eligible)
    /// when the gate is full. `Err(retry_after)` means the submission was
    /// shed — queue overflow or queue-deadline — and the caller should back
    /// off at least that long before resubmitting.
    pub fn acquire(&self, tenant: &str) -> Result<AdmissionPermit, Duration> {
        let inner = &self.inner;
        let mut st = inner.lock();
        // Fast path: nobody queued ahead and quota allows.
        if st.queue.is_empty() && Self::eligible(&inner.cfg, &st, tenant) {
            return Ok(self.admit(&mut st, tenant, Duration::ZERO));
        }
        if st.queue.len() >= inner.cfg.queue_cap {
            drop(st);
            return Err(self.shed(tenant));
        }
        let id = st.next_id;
        st.next_id += 1;
        st.queue.push_back((id, tenant.to_string()));
        inner.obs.queued.inc();
        let enqueued = Instant::now();
        let deadline = enqueued + inner.cfg.queue_deadline;
        loop {
            // Admit the first *eligible* waiter in FIFO order: earlier
            // waiters of a quota-exhausted tenant are skipped, not allowed
            // to block the head of the line.
            let first_eligible = st
                .queue
                .iter()
                .find(|(_, t)| Self::eligible(&inner.cfg, &st, t))
                .map(|(i, _)| *i);
            if first_eligible == Some(id) {
                let pos = st
                    .queue
                    .iter()
                    .position(|(i, _)| *i == id)
                    .expect("waiter present until admitted or shed");
                st.queue.remove(pos);
                return Ok(self.admit(&mut st, tenant, enqueued.elapsed()));
            }
            let now = Instant::now();
            if now >= deadline {
                let pos = st
                    .queue
                    .iter()
                    .position(|(i, _)| *i == id)
                    .expect("waiter present until admitted or shed");
                st.queue.remove(pos);
                drop(st);
                return Err(self.shed(tenant));
            }
            let timeout = (deadline - now).min(QUEUE_POLL);
            st = inner
                .cv
                .wait_timeout(st, timeout)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    fn eligible(cfg: &AdmissionConfig, st: &State, tenant: &str) -> bool {
        if st.total_running >= cfg.max_slots {
            return false;
        }
        if cfg.tenant_slots > 0 {
            let used = st.running.get(tenant).copied().unwrap_or(0);
            if used >= cfg.tenant_slots {
                return false;
            }
        }
        true
    }

    fn admit(&self, st: &mut State, tenant: &str, waited: Duration) -> AdmissionPermit {
        st.total_running += 1;
        let n = st.running.entry(tenant.to_string()).or_insert(0);
        *n += 1;
        let n = *n;
        let peak = st.peak_running.entry(tenant.to_string()).or_insert(0);
        *peak = (*peak).max(n);
        st.peak_total = st.peak_total.max(st.total_running);
        self.inner.obs.admitted.inc();
        lakehouse_obs::recorder().record_for(
            EventKind::AdmissionAdmit,
            0,
            tenant,
            "",
            waited.as_nanos() as u64,
        );
        AdmissionPermit {
            inner: Arc::clone(&self.inner),
            tenant: tenant.to_string(),
        }
    }

    fn shed(&self, tenant: &str) -> Duration {
        // Suggest waiting one full queue window: by then the queue the
        // caller could not join has either drained or the platform is still
        // overloaded and the resubmission will be shed again just as fast.
        let retry_after = self.inner.cfg.queue_deadline.max(Duration::from_millis(1));
        self.inner.obs.shed.inc();
        lakehouse_obs::recorder().record_for(
            EventKind::AdmissionShed,
            0,
            tenant,
            "",
            retry_after.as_nanos() as u64,
        );
        retry_after
    }

    /// Queries currently holding slots.
    pub fn running(&self) -> usize {
        self.inner.lock().total_running
    }

    /// High-water mark of concurrently running queries for `tenant` — the
    /// overload bench's proof that a quota held.
    pub fn peak_running(&self, tenant: &str) -> usize {
        self.inner
            .lock()
            .peak_running
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// High-water mark of concurrently running queries platform-wide.
    pub fn peak_total(&self) -> usize {
        self.inner.lock().peak_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn cfg(max: usize, per_tenant: usize, queue_cap: usize, deadline_ms: u64) -> AdmissionConfig {
        AdmissionConfig {
            max_slots: max,
            tenant_slots: per_tenant,
            queue_cap,
            queue_deadline: Duration::from_millis(deadline_ms),
        }
    }

    #[test]
    fn slots_bound_concurrency_and_release_admits_waiters() {
        let gate = AdmissionController::new(cfg(2, 0, 8, 5_000));
        let p1 = gate.acquire("a").expect("slot 1");
        let p2 = gate.acquire("a").expect("slot 2");
        assert_eq!(gate.running(), 2);
        let g2 = gate.clone();
        let h = std::thread::spawn(move || g2.acquire("b").map(drop).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(gate.running(), 2, "third query must queue, not run");
        drop(p1);
        assert!(h.join().unwrap(), "released slot admits the waiter");
        drop(p2);
        assert_eq!(gate.running(), 0);
        assert_eq!(gate.peak_total(), 2);
    }

    #[test]
    fn full_queue_sheds_immediately_with_retry_after() {
        let gate = AdmissionController::new(cfg(1, 0, 0, 50));
        let _p = gate.acquire("a").expect("slot");
        let start = Instant::now();
        let retry_after = gate.acquire("b").expect_err("queue cap 0 must shed");
        assert!(retry_after >= Duration::from_millis(1));
        assert!(
            start.elapsed() < Duration::from_millis(25),
            "overflow shed must be immediate, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn queue_deadline_sheds_stuck_waiters() {
        let gate = AdmissionController::new(cfg(1, 0, 8, 30));
        let _p = gate.acquire("a").expect("slot");
        let start = Instant::now();
        let retry_after = gate.acquire("b").expect_err("deadline must shed");
        let waited = start.elapsed();
        assert!(retry_after >= Duration::from_millis(1));
        assert!(
            waited >= Duration::from_millis(25) && waited < Duration::from_millis(500),
            "shed at ~the 30 ms queue deadline, waited {waited:?}"
        );
    }

    #[test]
    fn tenant_quota_skips_greedy_waiters_without_blocking_others() {
        // 2 slots, 1 per tenant. Tenant a holds its quota; a's second query
        // queues. Tenant b must be admitted past it (no head-of-line block).
        let gate = AdmissionController::new(cfg(2, 1, 8, 5_000));
        let pa = gate.acquire("a").expect("a's slot");
        let ga = gate.clone();
        let a_waiting = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&a_waiting);
        let h = std::thread::spawn(move || {
            flag.store(1, Ordering::SeqCst);
            let p = ga.acquire("a");
            p.map(drop).is_ok()
        });
        while a_waiting.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(10));
        // b jumps past a's queued-over-quota waiter.
        let pb = gate.acquire("b").expect("b must not starve behind a");
        assert_eq!(gate.peak_running("a"), 1, "a's quota held");
        drop(pa); // frees a's quota: the queued a waiter admits
        assert!(h.join().unwrap());
        drop(pb);
        assert!(gate.peak_running("a") <= 1);
        assert_eq!(gate.peak_running("b"), 1);
    }
}
