//! Platform-level error type, unifying every substrate's errors.

use std::fmt;

/// Errors surfaced by the Bauplan platform.
#[derive(Debug)]
pub enum BauplanError {
    /// An expectation (data audit) returned false; the run was rolled back.
    ExpectationFailed {
        node: String,
    },
    /// A replay selector or run id was invalid.
    Replay(String),
    /// A table name could not be resolved on the given ref.
    TableNotFound {
        table: String,
        reference: String,
    },
    /// Configuration problem.
    Config(String),
    /// The principal lacks permission for the attempted action.
    AccessDenied {
        principal: String,
        action: String,
        reference: String,
    },
    /// The query's cancel token tripped: deadline, budget, or explicit
    /// cancel. Terminal — retrying the same query may succeed, but this
    /// submission is dead.
    QueryKilled {
        reason: lakehouse_obs::KillReason,
    },
    /// The admission gate shed the query (queue full or queue deadline
    /// exceeded); the caller should back off at least `retry_after`.
    Overloaded {
        retry_after: std::time::Duration,
    },
    Store(lakehouse_store::StoreError),
    Catalog(lakehouse_catalog::CatalogError),
    Table(lakehouse_table::TableError),
    Sql(lakehouse_sql::SqlError),
    Planner(lakehouse_planner::PlannerError),
    Runtime(lakehouse_runtime::RuntimeError),
    Columnar(lakehouse_columnar::ColumnarError),
}

impl BauplanError {
    /// Whether this error stems from a transient fault — a retryable store
    /// error ([`lakehouse_store::StoreError::is_retryable`]) or a retryable
    /// runtime condition — so retrying the failed operation could plausibly
    /// succeed. Because the SQL layer stringifies scan errors
    /// ([`lakehouse_sql::SqlError::Execution`] carries formatted text, not a
    /// source chain), this also falls back to matching the stable Display
    /// prefixes of the retryable [`lakehouse_store::StoreError`] variants.
    pub fn is_transient(&self) -> bool {
        match self {
            Self::Store(e) => e.is_retryable(),
            Self::Table(e) => e.is_transient(),
            Self::Runtime(e) => e.is_retryable(),
            Self::Sql(e) => {
                let msg = e.to_string();
                msg.contains("transient store fault")
                    || msg.contains("throttled on ")
                    || msg.contains(" timed out ")
            }
            _ => false,
        }
    }
}

impl fmt::Display for BauplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ExpectationFailed { node } => {
                write!(f, "expectation '{node}' failed; run rolled back")
            }
            Self::Replay(m) => write!(f, "replay error: {m}"),
            Self::TableNotFound { table, reference } => {
                write!(f, "table '{table}' not found on ref '{reference}'")
            }
            Self::Config(m) => write!(f, "config error: {m}"),
            Self::AccessDenied {
                principal,
                action,
                reference,
            } => write!(
                f,
                "access denied: {principal} may not {action} on '{reference}'"
            ),
            Self::QueryKilled { reason } => {
                write!(f, "{}", lakehouse_store::killed_message(*reason))
            }
            Self::Overloaded { retry_after } => write!(
                f,
                "overloaded: retry after {:.0} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            Self::Store(e) => write!(f, "store: {e}"),
            Self::Catalog(e) => write!(f, "catalog: {e}"),
            Self::Table(e) => write!(f, "table: {e}"),
            Self::Sql(e) => write!(f, "sql: {e}"),
            Self::Planner(e) => write!(f, "planner: {e}"),
            Self::Runtime(e) => write!(f, "runtime: {e}"),
            Self::Columnar(e) => write!(f, "columnar: {e}"),
        }
    }
}

impl std::error::Error for BauplanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Store(e) => Some(e),
            Self::Catalog(e) => Some(e),
            Self::Table(e) => Some(e),
            Self::Sql(e) => Some(e),
            Self::Planner(e) => Some(e),
            Self::Runtime(e) => Some(e),
            Self::Columnar(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for BauplanError {
            fn from(e: $ty) -> Self {
                BauplanError::$variant(e)
            }
        }
    };
}

from_err!(Store, lakehouse_store::StoreError);
from_err!(Catalog, lakehouse_catalog::CatalogError);
from_err!(Table, lakehouse_table::TableError);
from_err!(Sql, lakehouse_sql::SqlError);
from_err!(Planner, lakehouse_planner::PlannerError);
from_err!(Runtime, lakehouse_runtime::RuntimeError);
from_err!(Columnar, lakehouse_columnar::ColumnarError);

/// Convenience alias.
pub type Result<T> = std::result::Result<T, BauplanError>;
