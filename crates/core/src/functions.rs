//! Native function registry: the Rust stand-in for the paper's Python steps.
//!
//! "As long as two languages can speak a common dialect over those tuples,
//! they can operate together" (§4.4.1) — here the common dialect is the
//! columnar [`RecordBatch`]; functions receive their named inputs as batches
//! and return either a new artifact or an expectation verdict.

use crate::error::{BauplanError, Result};
use lakehouse_columnar::RecordBatch;
use std::collections::HashMap;
use std::sync::Arc;

/// Inputs handed to a native function: one batch per declared input name.
#[derive(Debug, Clone)]
pub struct FnContext {
    pub inputs: HashMap<String, RecordBatch>,
}

impl FnContext {
    /// Fetch a named input.
    pub fn input(&self, name: &str) -> Result<&RecordBatch> {
        self.inputs.get(name).ok_or_else(|| {
            BauplanError::Config(format!("function input '{name}' was not provided"))
        })
    }
}

/// What a native function produces.
#[derive(Debug, Clone)]
pub enum FnOutput {
    /// A new artifact to materialize.
    Batch(RecordBatch),
    /// An expectation verdict: `true` = data is healthy.
    Expectation(bool),
}

/// A registered native function.
pub type NativeFunction = Arc<dyn Fn(&FnContext) -> Result<FnOutput> + Send + Sync>;

/// Name → implementation registry, shared by the platform and the CLI.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    functions: HashMap<String, NativeFunction>,
}

impl FunctionRegistry {
    pub fn new() -> FunctionRegistry {
        FunctionRegistry::default()
    }

    /// Register a function under an id (referenced by `NodeDef::function`).
    pub fn register(
        &mut self,
        id: impl Into<String>,
        f: impl Fn(&FnContext) -> Result<FnOutput> + Send + Sync + 'static,
    ) {
        self.functions.insert(id.into(), Arc::new(f));
    }

    pub fn get(&self, id: &str) -> Result<NativeFunction> {
        self.functions.get(id).cloned().ok_or_else(|| {
            BauplanError::Config(format!("native function '{id}' is not registered"))
        })
    }

    pub fn contains(&self, id: &str) -> bool {
        self.functions.contains_key(id)
    }
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("functions", &self.functions.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Ready-made expectation builders mirroring common data tests.
pub mod builtins {
    use super::*;
    use lakehouse_columnar::kernels::agg::aggregate_column;
    use lakehouse_columnar::kernels::Aggregator;

    /// The paper's Appendix A expectation: `mean(input[column]) > threshold`.
    pub fn mean_greater_than(
        input: &str,
        column: &str,
        threshold: f64,
    ) -> impl Fn(&FnContext) -> Result<FnOutput> + Send + Sync {
        let input = input.to_string();
        let column = column.to_string();
        move |ctx| {
            let batch = ctx.input(&input)?;
            let col = batch.column_by_name(&column)?;
            let mean = aggregate_column(Aggregator::Avg, col)?;
            Ok(FnOutput::Expectation(
                mean.as_f64().is_some_and(|m| m > threshold),
            ))
        }
    }

    /// Expectation: the input has at least `min_rows` rows.
    pub fn min_row_count(
        input: &str,
        min_rows: usize,
    ) -> impl Fn(&FnContext) -> Result<FnOutput> + Send + Sync {
        let input = input.to_string();
        move |ctx| {
            Ok(FnOutput::Expectation(
                ctx.input(&input)?.num_rows() >= min_rows,
            ))
        }
    }

    /// Expectation: a column has no nulls.
    pub fn no_nulls(
        input: &str,
        column: &str,
    ) -> impl Fn(&FnContext) -> Result<FnOutput> + Send + Sync {
        let input = input.to_string();
        let column = column.to_string();
        move |ctx| {
            let batch = ctx.input(&input)?;
            let col = batch.column_by_name(&column)?;
            Ok(FnOutput::Expectation(col.null_count() == 0))
        }
    }

    /// Expectation: every non-null value of a column lies in `[lo, hi]`.
    pub fn values_in_range(
        input: &str,
        column: &str,
        lo: f64,
        hi: f64,
    ) -> impl Fn(&FnContext) -> Result<FnOutput> + Send + Sync {
        let input = input.to_string();
        let column = column.to_string();
        move |ctx| {
            let batch = ctx.input(&input)?;
            let col = batch.column_by_name(&column)?;
            let ok = col.iter_values().all(|v| match v.as_f64() {
                Some(x) => x >= lo && x <= hi,
                None => v.is_null(),
            });
            Ok(FnOutput::Expectation(ok))
        }
    }

    /// Expectation: a column's non-null values are unique (a key).
    pub fn unique_key(
        input: &str,
        column: &str,
    ) -> impl Fn(&FnContext) -> Result<FnOutput> + Send + Sync {
        let input = input.to_string();
        let column = column.to_string();
        move |ctx| {
            let batch = ctx.input(&input)?;
            let col = batch.column_by_name(&column)?;
            let mut seen = std::collections::HashSet::new();
            for v in col.iter_values() {
                if v.is_null() {
                    continue;
                }
                let key = lakehouse_columnar::kernels::hash::RowKey::from_values(
                    std::slice::from_ref(&v),
                );
                if !seen.insert(key) {
                    return Ok(FnOutput::Expectation(false));
                }
            }
            Ok(FnOutput::Expectation(true))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakehouse_columnar::{Column, DataType, Field, Schema};

    fn ctx(rows: Vec<i64>) -> FnContext {
        let batch = RecordBatch::try_new(
            Schema::new(vec![Field::new("count", DataType::Int64, false)]),
            vec![Column::from_i64(rows)],
        )
        .unwrap();
        FnContext {
            inputs: HashMap::from([("trips".to_string(), batch)]),
        }
    }

    #[test]
    fn register_and_call() {
        let mut reg = FunctionRegistry::new();
        reg.register("double_check", |_ctx| Ok(FnOutput::Expectation(true)));
        assert!(reg.contains("double_check"));
        let f = reg.get("double_check").unwrap();
        match f(&ctx(vec![1])).unwrap() {
            FnOutput::Expectation(b) => assert!(b),
            _ => panic!(),
        }
    }

    #[test]
    fn unknown_function_errors() {
        assert!(FunctionRegistry::new().get("ghost").is_err());
    }

    #[test]
    fn mean_expectation_matches_paper() {
        // Paper: `m = trips['count'].mean(); return m > 10`.
        let f = builtins::mean_greater_than("trips", "count", 10.0);
        match f(&ctx(vec![20, 30])).unwrap() {
            FnOutput::Expectation(b) => assert!(b),
            _ => panic!(),
        }
        match f(&ctx(vec![1, 2])).unwrap() {
            FnOutput::Expectation(b) => assert!(!b),
            _ => panic!(),
        }
    }

    #[test]
    fn min_row_count_and_no_nulls() {
        let f = builtins::min_row_count("trips", 2);
        match f(&ctx(vec![1, 2, 3])).unwrap() {
            FnOutput::Expectation(b) => assert!(b),
            _ => panic!(),
        }
        let g = builtins::no_nulls("trips", "count");
        match g(&ctx(vec![1])).unwrap() {
            FnOutput::Expectation(b) => assert!(b),
            _ => panic!(),
        }
    }

    #[test]
    fn values_in_range_check() {
        let f = builtins::values_in_range("trips", "count", 0.0, 100.0);
        match f(&ctx(vec![1, 50, 100])).unwrap() {
            FnOutput::Expectation(b) => assert!(b),
            _ => panic!(),
        }
        match f(&ctx(vec![1, 101])).unwrap() {
            FnOutput::Expectation(b) => assert!(!b),
            _ => panic!(),
        }
    }

    #[test]
    fn unique_key_check() {
        let f = builtins::unique_key("trips", "count");
        match f(&ctx(vec![1, 2, 3])).unwrap() {
            FnOutput::Expectation(b) => assert!(b),
            _ => panic!(),
        }
        match f(&ctx(vec![1, 2, 1])).unwrap() {
            FnOutput::Expectation(b) => assert!(!b),
            _ => panic!(),
        }
    }

    #[test]
    fn missing_input_is_config_error() {
        let f = builtins::min_row_count("ghost", 1);
        assert!(f(&ctx(vec![1])).is_err());
    }
}
