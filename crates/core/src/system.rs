//! SQL system tables: virtual relations over the process's telemetry.
//!
//! `system.queries`, `system.events`, `system.metrics`, and `system.pool`
//! are materialized on demand from the global [`lakehouse_obs`] state — the
//! finished-query log, the flight recorder, and the metrics registry — plus
//! the lakehouse's buffer pool when one is attached. They are ordinary
//! batches once built, so both executors (materialized and streaming) run
//! the same operators over them and return byte-identical results.
//!
//! Schemas (all times in their named unit; counters as `Int64`):
//!
//! | table            | columns |
//! |------------------|---------|
//! | `system.queries` | query_id, tenant, label, status, reason, wall_ms, sim_ms, queue_wait_ms, sched_policy, io_bytes, io_bytes_written, io_ops, pool_hits, pool_misses, evictions_caused, retry_stall_ms, kernel_wall_ms |
//! | `system.events`  | seq, wall_micros, kind, query_id, tenant, detail, value |
//! | `system.metrics` | name, kind, value, count, p50, p95, p99 |
//! | `system.pool`    | metric, value |

use lakehouse_columnar::{Column, DataType, Field, RecordBatch, Schema};
use lakehouse_obs::MetricSnapshot;
use lakehouse_store::BufferPool;
use std::sync::Arc;

/// Prefix that routes a table name to this module instead of the catalog.
pub const SYSTEM_PREFIX: &str = "system.";

/// Names of every system table (the `system.` prefix included).
pub const SYSTEM_TABLES: &[&str] = &[
    "system.queries",
    "system.events",
    "system.metrics",
    "system.pool",
];

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1_000_000.0
}

fn queries_schema() -> Schema {
    Schema::new(vec![
        Field::new("query_id", DataType::Int64, false),
        Field::new("tenant", DataType::Utf8, false),
        Field::new("label", DataType::Utf8, false),
        Field::new("status", DataType::Utf8, false),
        Field::new("reason", DataType::Utf8, false),
        Field::new("wall_ms", DataType::Float64, false),
        Field::new("sim_ms", DataType::Float64, false),
        Field::new("queue_wait_ms", DataType::Float64, false),
        Field::new("sched_policy", DataType::Utf8, false),
        Field::new("io_bytes", DataType::Int64, false),
        Field::new("io_bytes_written", DataType::Int64, false),
        Field::new("io_ops", DataType::Int64, false),
        Field::new("pool_hits", DataType::Int64, false),
        Field::new("pool_misses", DataType::Int64, false),
        Field::new("evictions_caused", DataType::Int64, false),
        Field::new("retry_stall_ms", DataType::Float64, false),
        Field::new("kernel_wall_ms", DataType::Float64, false),
    ])
}

/// `system.queries`: one row per finished query/run step, oldest first,
/// plus a live `running` row for the in-flight query scanning the table
/// (so a one-shot CLI `SELECT ... FROM system.queries` observes itself).
pub fn queries_batch() -> RecordBatch {
    let mut records = lakehouse_obs::query_log().snapshot();
    if let Some(ctx) = lakehouse_obs::QueryCtx::current() {
        if !records.iter().any(|r| r.query_id == ctx.query_id()) {
            records.push(lakehouse_obs::QueryRecord {
                query_id: ctx.query_id(),
                tenant: ctx.tenant().to_string(),
                label: ctx.label().to_string(),
                status: "running".to_string(),
                // A live row can already carry a kill reason: the token
                // tripped but the query has not unwound to a yield yet.
                reason: ctx
                    .killed()
                    .map(|r| r.as_str().to_string())
                    .unwrap_or_default(),
                wall_nanos: ctx.elapsed_nanos(),
                sim_nanos: 0,
                // A live row is mid-execution: its gate telemetry is only
                // pushed with the finished record, so these stay defaults.
                queue_wait_nanos: 0,
                sched_policy: String::new(),
                ledger: ctx.ledger().snapshot(),
            });
        }
    }
    let batch = RecordBatch::try_new(
        queries_schema(),
        vec![
            Column::from_i64(records.iter().map(|r| r.query_id as i64).collect()),
            Column::from_strs(records.iter().map(|r| r.tenant.as_str()).collect()),
            Column::from_strs(records.iter().map(|r| r.label.as_str()).collect()),
            Column::from_strs(records.iter().map(|r| r.status.as_str()).collect()),
            Column::from_strs(records.iter().map(|r| r.reason.as_str()).collect()),
            Column::from_f64(records.iter().map(|r| ms(r.wall_nanos)).collect()),
            Column::from_f64(records.iter().map(|r| ms(r.sim_nanos)).collect()),
            Column::from_f64(records.iter().map(|r| ms(r.queue_wait_nanos)).collect()),
            Column::from_strs(records.iter().map(|r| r.sched_policy.as_str()).collect()),
            Column::from_i64(records.iter().map(|r| r.ledger.io_bytes as i64).collect()),
            Column::from_i64(
                records
                    .iter()
                    .map(|r| r.ledger.io_bytes_written as i64)
                    .collect(),
            ),
            Column::from_i64(records.iter().map(|r| r.ledger.io_ops as i64).collect()),
            Column::from_i64(records.iter().map(|r| r.ledger.pool_hits as i64).collect()),
            Column::from_i64(
                records
                    .iter()
                    .map(|r| r.ledger.pool_misses as i64)
                    .collect(),
            ),
            Column::from_i64(
                records
                    .iter()
                    .map(|r| r.ledger.evictions_caused as i64)
                    .collect(),
            ),
            Column::from_f64(
                records
                    .iter()
                    .map(|r| ms(r.ledger.retry_stall_nanos))
                    .collect(),
            ),
            Column::from_f64(
                records
                    .iter()
                    .map(|r| ms(r.ledger.kernel_wall_nanos))
                    .collect(),
            ),
        ],
    );
    batch.expect("system.queries columns are built from one snapshot")
}

fn events_schema() -> Schema {
    Schema::new(vec![
        Field::new("seq", DataType::Int64, false),
        Field::new("wall_micros", DataType::Int64, false),
        Field::new("kind", DataType::Utf8, false),
        Field::new("query_id", DataType::Int64, false),
        Field::new("tenant", DataType::Utf8, false),
        Field::new("detail", DataType::Utf8, false),
        Field::new("value", DataType::Int64, false),
    ])
}

/// `system.events`: the flight recorder's retained events, in seq order.
pub fn events_batch() -> RecordBatch {
    let events = lakehouse_obs::recorder().snapshot();
    let batch = RecordBatch::try_new(
        events_schema(),
        vec![
            Column::from_i64(events.iter().map(|e| e.seq as i64).collect()),
            Column::from_i64(events.iter().map(|e| e.wall_micros as i64).collect()),
            Column::from_strs(events.iter().map(|e| e.kind.as_str()).collect()),
            Column::from_i64(events.iter().map(|e| e.query_id as i64).collect()),
            Column::from_strs(events.iter().map(|e| e.tenant.as_str()).collect()),
            Column::from_strs(events.iter().map(|e| e.detail.as_str()).collect()),
            Column::from_i64(events.iter().map(|e| e.value as i64).collect()),
        ],
    );
    batch.expect("system.events columns are built from one snapshot")
}

fn metrics_schema() -> Schema {
    Schema::new(vec![
        Field::new("name", DataType::Utf8, false),
        Field::new("kind", DataType::Utf8, false),
        Field::new("value", DataType::Int64, false),
        Field::new("count", DataType::Int64, true),
        Field::new("p50", DataType::Int64, true),
        Field::new("p95", DataType::Int64, true),
        Field::new("p99", DataType::Int64, true),
    ])
}

/// `system.metrics`: the global registry, sorted by name. `value` is the
/// counter/gauge value or a histogram's sum; the quantile columns are null
/// for non-histograms.
pub fn metrics_batch() -> RecordBatch {
    let snaps = lakehouse_obs::global().snapshot();
    let mut names = Vec::with_capacity(snaps.len());
    let mut kinds = Vec::with_capacity(snaps.len());
    let mut values = Vec::with_capacity(snaps.len());
    let mut counts: Vec<Option<i64>> = Vec::with_capacity(snaps.len());
    let mut p50s: Vec<Option<i64>> = Vec::with_capacity(snaps.len());
    let mut p95s: Vec<Option<i64>> = Vec::with_capacity(snaps.len());
    let mut p99s: Vec<Option<i64>> = Vec::with_capacity(snaps.len());
    for (name, snap) in snaps {
        names.push(name);
        match snap {
            MetricSnapshot::Counter(v) => {
                kinds.push("counter");
                values.push(v as i64);
                counts.push(None);
                p50s.push(None);
                p95s.push(None);
                p99s.push(None);
            }
            MetricSnapshot::Gauge(v) => {
                kinds.push("gauge");
                values.push(v as i64);
                counts.push(None);
                p50s.push(None);
                p95s.push(None);
                p99s.push(None);
            }
            MetricSnapshot::Histogram {
                count,
                sum,
                p50,
                p95,
                p99,
                ..
            } => {
                kinds.push("histogram");
                values.push(sum as i64);
                counts.push(Some(count as i64));
                p50s.push(Some(p50 as i64));
                p95s.push(Some(p95 as i64));
                p99s.push(Some(p99 as i64));
            }
        }
    }
    let batch = RecordBatch::try_new(
        metrics_schema(),
        vec![
            Column::from_str_vec(names),
            Column::from_strs(kinds),
            Column::from_i64(values),
            Column::from_opt_i64(counts),
            Column::from_opt_i64(p50s),
            Column::from_opt_i64(p95s),
            Column::from_opt_i64(p99s),
        ],
    );
    batch.expect("system.metrics columns are built from one snapshot")
}

fn pool_schema() -> Schema {
    Schema::new(vec![
        Field::new("metric", DataType::Utf8, false),
        Field::new("value", DataType::Int64, false),
    ])
}

/// `system.pool`: the attached buffer pool's counters as rows (empty with
/// the same schema when no shared pool is configured).
pub fn pool_batch(pool: Option<&Arc<BufferPool>>) -> RecordBatch {
    let rows: Vec<(String, u64)> = match pool {
        Some(pool) => {
            let m = pool.metrics();
            let mut rows: Vec<(String, u64)> = vec![
                ("capacity_bytes".into(), pool.capacity_bytes() as u64),
                ("resident_bytes".into(), m.resident_bytes()),
                ("resident_entries".into(), m.resident_entries()),
                ("hits".into(), m.hits()),
                ("misses".into(), m.misses()),
                ("admitted".into(), m.admitted()),
                ("rejected".into(), m.rejected()),
                ("evicted_bytes".into(), m.evicted_bytes()),
                ("verify_failures".into(), m.verify_failures()),
            ];
            // With tenant quotas armed, expose the quota plus per-tenant
            // resident/protected footprints so operators can see who holds
            // what (`tenant:<name>:resident_bytes` rows).
            let quota = pool.tenant_quota_bytes();
            if quota > 0 {
                rows.push(("tenant_quota_bytes".into(), quota as u64));
                rows.push(("quota_denied".into(), m.quota_denied()));
                for (tenant, resident, protected) in pool.tenant_stats() {
                    rows.push((format!("tenant:{tenant}:resident_bytes"), resident));
                    rows.push((format!("tenant:{tenant}:protected_bytes"), protected));
                }
            }
            rows
        }
        None => Vec::new(),
    };
    let batch = RecordBatch::try_new(
        pool_schema(),
        vec![
            Column::from_strs(rows.iter().map(|(n, _)| n.as_str()).collect()),
            Column::from_i64(rows.iter().map(|(_, v)| *v as i64).collect()),
        ],
    );
    batch.expect("system.pool columns are built from one snapshot")
}

/// Schema of `name`, or `None` if it is not a system table.
pub fn system_schema(name: &str) -> Option<Schema> {
    match name {
        "system.queries" => Some(queries_schema()),
        "system.events" => Some(events_schema()),
        "system.metrics" => Some(metrics_schema()),
        "system.pool" => Some(pool_schema()),
        _ => None,
    }
}

/// Build the batch for system table `name`, or `None` if it is not one.
pub fn system_batch(name: &str, pool: Option<&Arc<BufferPool>>) -> Option<RecordBatch> {
    match name {
        "system.queries" => Some(queries_batch()),
        "system.events" => Some(events_batch()),
        "system.metrics" => Some(metrics_batch()),
        "system.pool" => Some(pool_batch(pool)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_resolve_only_for_system_tables() {
        for name in SYSTEM_TABLES {
            assert!(system_schema(name).is_some(), "{name}");
        }
        assert!(system_schema("system.ghost").is_none());
        assert!(system_schema("queries").is_none());
    }

    #[test]
    fn batches_match_their_schemas() {
        for name in SYSTEM_TABLES {
            let batch = system_batch(name, None).unwrap();
            assert_eq!(batch.schema(), &system_schema(name).unwrap(), "{name}");
        }
    }

    #[test]
    fn pool_table_reports_counters() {
        let pool = Arc::new(BufferPool::new(1 << 20));
        let batch = pool_batch(Some(&pool));
        assert_eq!(batch.schema().names()[0], "metric");
        assert!(batch.num_rows() >= 9);
    }

    #[test]
    fn pool_table_adds_tenant_rows_when_quota_armed() {
        let pool = Arc::new(BufferPool::new(1 << 20));
        pool.set_tenant_quota_bytes(4096);
        let ctx = lakehouse_obs::QueryCtx::new("alpha", "q");
        {
            let _g = ctx.enter();
            pool.replace_whole("page", bytes::Bytes::from_static(b"abcd"));
        }
        let batch = pool_batch(Some(&pool));
        let (names, _) = batch.columns()[0].as_utf8().unwrap();
        for want in [
            "tenant_quota_bytes",
            "quota_denied",
            "tenant:alpha:resident_bytes",
            "tenant:alpha:protected_bytes",
        ] {
            assert!(names.iter().any(|n| n == want), "missing row {want}");
        }
    }
}
