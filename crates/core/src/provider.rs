//! The bridge between the SQL engine and the lakehouse: resolves table names
//! through the catalog (at a given ref) and scans Iceberg-style tables with
//! pushed-down predicates, with an overlay for in-flight pipeline artifacts.

use crate::error::Result as CoreResult;
use lakehouse_catalog::Catalog;
use lakehouse_columnar::{BatchStream, BatchesStream, RechunkStream, RecordBatch, Schema, Value};
use lakehouse_sql::ast::Expr;
use lakehouse_sql::logical::SchemaProvider;
use lakehouse_sql::{Result as SqlResult, SqlError, TableProvider};
use lakehouse_store::{BufferPool, IoDispatcher, ObjectStore};
use lakehouse_table::{ScanPredicate, Table};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A [`TableProvider`] over a catalog reference plus an in-memory overlay.
///
/// Resolution order: overlay (intermediate artifacts of the currently
/// executing pipeline stage) → catalog tables at `reference`. The overlay is
/// what gives the fused executor its data locality: a child step consumes
/// its parent's output without any object-store round trip.
pub struct LakehouseProvider {
    store: Arc<dyn ObjectStore>,
    catalog: Arc<Catalog>,
    reference: String,
    overlay: RwLock<HashMap<String, RecordBatch>>,
    /// When false, predicates are NOT pushed into table scans — the paper's
    /// naive baseline read whole tables before filtering (§4.4.2: the fused
    /// plan "pushed down where filters to obtain a smaller in-memory table").
    pushdown: bool,
    /// Worker threads each table scan fans its files over (1 = serial).
    scan_parallelism: usize,
    /// Per-file scan retries on transient store faults (0 = off).
    fetch_retries: u32,
    /// Scan partial-failure policy: drop files that exhaust their retries
    /// instead of failing the query.
    partial_failures: bool,
    /// Completion-based I/O dispatcher + read-ahead window for scans
    /// (`None`/0 = seed-identical synchronous fetching).
    io: Option<Arc<IoDispatcher>>,
    read_ahead: usize,
    /// The lakehouse's shared buffer pool, when one is attached — only read
    /// to materialize `system.pool`.
    system_pool: Option<Arc<BufferPool>>,
}

impl LakehouseProvider {
    pub fn new(
        store: Arc<dyn ObjectStore>,
        catalog: Arc<Catalog>,
        reference: impl Into<String>,
    ) -> LakehouseProvider {
        LakehouseProvider {
            store,
            catalog,
            reference: reference.into(),
            overlay: RwLock::new(HashMap::new()),
            pushdown: true,
            scan_parallelism: 1,
            fetch_retries: 0,
            partial_failures: false,
            io: None,
            read_ahead: 0,
            system_pool: None,
        }
    }

    /// Expose a buffer pool's counters through `system.pool` (the system
    /// tables themselves need no configuration — they read process-global
    /// telemetry).
    pub fn with_system_pool(mut self, pool: Option<Arc<BufferPool>>) -> LakehouseProvider {
        self.system_pool = pool;
        self
    }

    /// Route scans through an I/O dispatcher with a speculative read-ahead
    /// window of `read_ahead` files (0 disables; results are byte-identical
    /// either way).
    pub fn with_io(
        mut self,
        io: Option<Arc<IoDispatcher>>,
        read_ahead: usize,
    ) -> LakehouseProvider {
        self.io = io;
        self.read_ahead = read_ahead;
        self
    }

    /// Disable or enable scan-level predicate pushdown (default on).
    pub fn with_pushdown(mut self, pushdown: bool) -> LakehouseProvider {
        self.pushdown = pushdown;
        self
    }

    /// Fan each table scan over up to `n` worker threads (default 1).
    /// Results are byte-identical at any setting.
    pub fn with_scan_parallelism(mut self, n: usize) -> LakehouseProvider {
        self.scan_parallelism = n.max(1);
        self
    }

    /// Per-file scan retries on transient store faults (default 0).
    pub fn with_fetch_retries(mut self, n: u32) -> LakehouseProvider {
        self.fetch_retries = n;
        self
    }

    /// Scan partial-failure policy (default fail-fast; see
    /// [`lakehouse_table::TableScan::with_partial_failures`]).
    pub fn with_partial_failures(mut self, skip_failed: bool) -> LakehouseProvider {
        self.partial_failures = skip_failed;
        self
    }

    /// Apply this provider's scan settings to a freshly built scan.
    fn configure_scan(&self, scan: lakehouse_table::TableScan) -> lakehouse_table::TableScan {
        let mut scan = scan
            .with_parallelism(self.scan_parallelism)
            .with_fetch_retries(self.fetch_retries)
            .with_partial_failures(self.partial_failures);
        if let Some(io) = &self.io {
            scan = scan
                .with_io_dispatcher(Arc::clone(io))
                .with_read_ahead(self.read_ahead);
        }
        scan
    }

    /// Register an in-memory artifact (visible to subsequent queries through
    /// this provider).
    pub fn put_overlay(&self, name: impl Into<String>, batch: RecordBatch) {
        self.overlay.write().insert(name.into(), batch);
    }

    /// Fetch an overlay artifact.
    pub fn get_overlay(&self, name: &str) -> Option<RecordBatch> {
        self.overlay.read().get(name).cloned()
    }

    /// Drop all overlay artifacts (stage boundary in naive mode).
    pub fn clear_overlay(&self) {
        self.overlay.write().clear();
    }

    pub fn reference(&self) -> &str {
        &self.reference
    }

    /// Load the Iceberg-style table for `name` at this provider's ref.
    ///
    /// The metadata read shares the scan's retry policy: a transient fault
    /// re-fetches; a corrupt read (torn body or checksum-poisoned cache
    /// page) first drops the cached bytes via
    /// `ObjectStore::invalidate_corrupt`, so the retry reaches the backend
    /// copy instead of re-parsing the same garbage forever.
    pub fn load_table(&self, name: &str) -> CoreResult<Table> {
        let content = self.catalog.get_content(&self.reference, name)?;
        Ok(self.load_metadata(&content.metadata_location)?)
    }

    /// `Table::load` with the retry/invalidate loop shared by every metadata
    /// read through this provider.
    fn load_metadata(
        &self,
        location: &str,
    ) -> std::result::Result<Table, lakehouse_table::TableError> {
        let mut attempts = 0u32;
        loop {
            match Table::load(Arc::clone(&self.store), location) {
                Ok(t) => return Ok(t),
                Err(e)
                    if attempts < self.fetch_retries && (e.is_transient() || e.is_corruption()) =>
                {
                    if e.is_corruption() {
                        if let Ok(path) = lakehouse_store::ObjectPath::new(location.to_string()) {
                            self.store.invalidate_corrupt(&path);
                        }
                    }
                    attempts += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Convert SQL filter expressions to scan predicates where possible
    /// (simple `column OP literal` conjuncts; everything else is handled by
    /// the executor's exact re-filter).
    fn to_scan_predicates(filters: &[Expr]) -> Vec<ScanPredicate> {
        let mut out = Vec::new();
        for f in filters {
            if let Expr::Compare { op, left, right } = f {
                match (left.as_ref(), right.as_ref()) {
                    (Expr::Column { name, .. }, Expr::Literal(v)) if !v.is_null() => {
                        out.push(ScanPredicate::new(name.clone(), *op, v.clone()));
                    }
                    (Expr::Literal(v), Expr::Column { name, .. }) if !v.is_null() => {
                        out.push(ScanPredicate::new(name.clone(), op.flip(), v.clone()));
                    }
                    _ => {}
                }
            }
        }
        out
    }
}

impl SchemaProvider for LakehouseProvider {
    fn table_schema(&self, table: &str) -> Option<Schema> {
        self.table_schema_checked(table).ok().flatten()
    }

    // Distinguish "no such table" from a store/catalog fault while
    // resolving it: a retry-budget-exhausted get must surface as the typed
    // store error, not as `unknown table`.
    fn table_schema_checked(&self, table: &str) -> Result<Option<Schema>, String> {
        if table.starts_with(crate::system::SYSTEM_PREFIX) {
            return Ok(crate::system::system_schema(table));
        }
        if let Some(batch) = self.overlay.read().get(table) {
            return Ok(Some(batch.schema().clone()));
        }
        let content = match self.catalog.get_content(&self.reference, table) {
            Ok(c) => c,
            Err(
                lakehouse_catalog::CatalogError::KeyNotFound(_)
                | lakehouse_catalog::CatalogError::RefNotFound(_),
            ) => return Ok(None),
            Err(e) => return Err(format!("resolving table '{table}': {e}")),
        };
        let t = self
            .load_metadata(&content.metadata_location)
            .map_err(|e| format!("loading table '{table}': {e}"))?;
        t.schema()
            .map(Some)
            .map_err(|e| format!("reading schema of '{table}': {e}"))
    }
}

impl TableProvider for LakehouseProvider {
    fn scan(
        &self,
        table: &str,
        projection: Option<&[String]>,
        filters: &[Expr],
    ) -> SqlResult<RecordBatch> {
        // System tables: materialized from global telemetry on every scan.
        if table.starts_with(crate::system::SYSTEM_PREFIX) {
            let batch = crate::system::system_batch(table, self.system_pool.as_ref())
                .ok_or_else(|| SqlError::Plan(format!("unknown system table '{table}'")))?;
            return match projection {
                Some(cols) => {
                    let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                    Ok(batch.project(&names)?)
                }
                None => Ok(batch),
            };
        }
        // Overlay first: in-memory artifacts.
        if let Some(batch) = self.overlay.read().get(table) {
            return match projection {
                Some(cols) => {
                    let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                    Ok(batch.project(&names)?)
                }
                None => Ok(batch.clone()),
            };
        }
        // Catalog-resolved Iceberg-style scan with pushdown.
        let t = self
            .load_table(table)
            .map_err(|e| SqlError::Plan(format!("cannot load table '{table}': {e}")))?;
        let mut scan = self.configure_scan(t.scan());
        if self.pushdown {
            for p in Self::to_scan_predicates(filters) {
                scan = scan.with_predicate(p);
            }
        }
        if let Some(cols) = projection {
            let names: Vec<&str> = cols.iter().map(String::as_str).collect();
            scan = scan.select(&names);
        }
        scan.execute()
            .map_err(|e| SqlError::Execution(format!("scan of '{table}' failed: {e}")))
    }

    fn scan_stream(
        &self,
        table: &str,
        projection: Option<&[String]>,
        filters: &[Expr],
        batch_rows: usize,
    ) -> SqlResult<Box<dyn BatchStream>> {
        // System tables stream the same single materialized batch the
        // non-streaming path scans, so both executors see identical rows.
        if table.starts_with(crate::system::SYSTEM_PREFIX) {
            let batch = crate::system::system_batch(table, self.system_pool.as_ref())
                .ok_or_else(|| SqlError::Plan(format!("unknown system table '{table}'")))?;
            let batch = match projection {
                Some(cols) => {
                    let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                    batch.project(&names)?
                }
                None => batch,
            };
            return Ok(Box::new(RechunkStream::new(
                BatchesStream::one(batch),
                batch_rows,
            )));
        }
        // Overlay artifacts are already in memory; rechunk so the pipeline
        // still sees bounded batches.
        if let Some(batch) = self.overlay.read().get(table) {
            let batch = match projection {
                Some(cols) => {
                    let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                    batch.project(&names)?
                }
                None => batch.clone(),
            };
            return Ok(Box::new(RechunkStream::new(
                BatchesStream::one(batch),
                batch_rows,
            )));
        }
        // Catalog tables stream one batch per data file: peak memory is a
        // few files, and an abandoned stream (satisfied LIMIT) leaves the
        // remaining files unfetched.
        let t = self
            .load_table(table)
            .map_err(|e| SqlError::Plan(format!("cannot load table '{table}': {e}")))?;
        let mut scan = self.configure_scan(t.scan());
        if self.pushdown {
            for p in Self::to_scan_predicates(filters) {
                scan = scan.with_predicate(p);
            }
        }
        if let Some(cols) = projection {
            let names: Vec<&str> = cols.iter().map(String::as_str).collect();
            scan = scan.select(&names);
        }
        let stream = scan
            .stream()
            .map_err(|e| SqlError::Execution(format!("scan of '{table}' failed: {e}")))?;
        Ok(Box::new(RechunkStream::new(stream, batch_rows)))
    }
}

/// Convert a scalar to a `Value` literal predicate — re-exported helper for
/// callers building predicates programmatically.
pub fn literal_predicate(column: &str, op: lakehouse_columnar::kernels::CmpOp, v: Value) -> Expr {
    Expr::Compare {
        op,
        left: Box::new(Expr::col(column.to_string())),
        right: Box::new(Expr::Literal(v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakehouse_catalog::{ContentRef, Operation};
    use lakehouse_columnar::kernels::CmpOp;
    use lakehouse_columnar::{Column, DataType, Field};
    use lakehouse_store::InMemoryStore;
    use lakehouse_table::{PartitionSpec, SnapshotOperation};

    fn setup() -> (Arc<dyn ObjectStore>, Arc<Catalog>) {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let catalog = Arc::new(Catalog::init(Arc::clone(&store), "_catalog").unwrap());
        (store, catalog)
    }

    fn write_table(store: &Arc<dyn ObjectStore>, catalog: &Catalog, name: &str) {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64, false)]);
        let t = Table::create(
            Arc::clone(store),
            &format!("warehouse/{name}"),
            &schema,
            PartitionSpec::unpartitioned(),
        )
        .unwrap();
        let mut tx = t.new_transaction(SnapshotOperation::Append);
        tx.write(&RecordBatch::try_new(schema, vec![Column::from_i64(vec![1, 2, 3])]).unwrap())
            .unwrap();
        let (loc, meta) = tx.commit().unwrap();
        catalog
            .commit(
                "main",
                "test",
                &format!("add {name}"),
                vec![Operation::Put {
                    key: name.to_string(),
                    content: ContentRef::new(loc, meta.current_snapshot_id.unwrap()),
                }],
            )
            .unwrap();
    }

    #[test]
    fn resolves_catalog_tables() {
        let (store, catalog) = setup();
        write_table(&store, &catalog, "t1");
        let p = LakehouseProvider::new(store, catalog, "main");
        assert!(p.table_schema("t1").is_some());
        assert!(p.table_schema("ghost").is_none());
        let batch = p.scan("t1", None, &[]).unwrap();
        assert_eq!(batch.num_rows(), 3);
    }

    #[test]
    fn overlay_shadows_catalog() {
        let (store, catalog) = setup();
        write_table(&store, &catalog, "t1");
        let p = LakehouseProvider::new(store, catalog, "main");
        let shadow = RecordBatch::try_new(
            Schema::new(vec![Field::new("y", DataType::Utf8, false)]),
            vec![Column::from_strs(vec!["overlay"])],
        )
        .unwrap();
        p.put_overlay("t1", shadow);
        let batch = p.scan("t1", None, &[]).unwrap();
        assert_eq!(batch.schema().names(), vec!["y"]);
        p.clear_overlay();
        let batch = p.scan("t1", None, &[]).unwrap();
        assert_eq!(batch.schema().names(), vec!["x"]);
    }

    #[test]
    fn predicate_conversion() {
        let filters = vec![
            literal_predicate("x", CmpOp::Gt, Value::Int64(1)),
            // Flipped literal-first form.
            Expr::Compare {
                op: CmpOp::Gt,
                left: Box::new(Expr::Literal(Value::Int64(10))),
                right: Box::new(Expr::col("x")),
            },
            // Unsupported shape: skipped.
            Expr::col("x"),
        ];
        let preds = LakehouseProvider::to_scan_predicates(&filters);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].op, CmpOp::Gt);
        assert_eq!(preds[1].op, CmpOp::Lt); // flipped
    }

    #[test]
    fn scan_with_projection_and_filter() {
        let (store, catalog) = setup();
        write_table(&store, &catalog, "t1");
        let p = LakehouseProvider::new(store, catalog, "main");
        let filters = vec![literal_predicate("x", CmpOp::GtEq, Value::Int64(2))];
        let batch = p.scan("t1", Some(&["x".to_string()]), &filters).unwrap();
        assert_eq!(batch.num_rows(), 2);
    }
}
