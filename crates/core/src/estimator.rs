//! Log-driven memory estimation — the paper's §5 future-work item ("using
//! logs and machine learning to further optimize the experience behind the
//! scenes"), applied to the runtime's vertical elasticity (§4.5: "the same
//! transformation logic should run with 10GB or 20GB of memory depending on
//! the underlying artifacts").
//!
//! The estimator learns each node's working-set size from previous runs
//! (exponentially weighted max with headroom) and feeds the prediction into
//! the physical planner's stage packing and the runtime's memory grants —
//! so a node that produced 4 GB last run gets ~6 GB next run instead of the
//! static default.

use parking_lot::RwLock;
use std::collections::HashMap;

/// Safety margin multiplied onto observations.
const HEADROOM: f64 = 1.5;
/// Exponential decay applied to the previous estimate when new data arrives
/// (keeps estimates adaptive as artifacts shrink).
const DECAY: f64 = 0.7;

/// Per-node working-set predictor.
#[derive(Debug, Default)]
pub struct MemoryEstimator {
    /// node name → smoothed peak observed bytes.
    observed: RwLock<HashMap<String, f64>>,
    hits: RwLock<u64>,
    misses: RwLock<u64>,
}

impl MemoryEstimator {
    pub fn new() -> MemoryEstimator {
        MemoryEstimator::default()
    }

    /// Record the bytes a node's output occupied in a completed run.
    pub fn observe(&self, node: &str, bytes: u64) {
        let mut observed = self.observed.write();
        let entry = observed.entry(node.to_string()).or_insert(0.0);
        // Fast to grow (max), slow to shrink (EW decay).
        let b = bytes as f64;
        *entry = if b > *entry {
            b
        } else {
            *entry * DECAY + b * (1.0 - DECAY)
        };
    }

    /// Predicted grant for a node: observed × headroom, or `default` when
    /// the node has never run.
    pub fn estimate(&self, node: &str, default: u64) -> u64 {
        match self.observed.read().get(node) {
            Some(&bytes) => {
                *self.hits.write() += 1;
                ((bytes * HEADROOM) as u64).max(1)
            }
            None => {
                *self.misses.write() += 1;
                default
            }
        }
    }

    /// (estimates served from history, estimates that fell back to default).
    pub fn hit_miss(&self) -> (u64, u64) {
        (*self.hits.read(), *self.misses.read())
    }

    /// Nodes with recorded history.
    pub fn known_nodes(&self) -> Vec<String> {
        self.observed.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_node_uses_default() {
        let e = MemoryEstimator::new();
        assert_eq!(e.estimate("ghost", 512), 512);
        assert_eq!(e.hit_miss(), (0, 1));
    }

    #[test]
    fn observation_drives_estimate_with_headroom() {
        let e = MemoryEstimator::new();
        e.observe("trips", 1_000_000);
        assert_eq!(e.estimate("trips", 512), 1_500_000);
        assert_eq!(e.hit_miss(), (1, 0));
    }

    #[test]
    fn grows_fast_shrinks_slow() {
        let e = MemoryEstimator::new();
        e.observe("t", 1_000);
        e.observe("t", 10_000); // growth: jump immediately
        assert_eq!(e.estimate("t", 0), 15_000);
        e.observe("t", 1_000); // shrink: decay toward the smaller value
        let est = e.estimate("t", 0);
        assert!(est < 15_000 && est > 1_500, "est = {est}");
    }

    #[test]
    fn vertical_elasticity_scenario() {
        // Paper §4.5: 10GB vs 20GB depending on the artifacts.
        let e = MemoryEstimator::new();
        e.observe("small_table_job", 10 << 30);
        e.observe("big_table_job", 20 << 30);
        assert!(e.estimate("small_table_job", 0) < e.estimate("big_table_job", 0));
        assert_eq!(e.known_nodes().len(), 2);
    }
}
