//! Access control and governance — the paper's §5 future-work item
//! ("securing data through seamless, yet secure authentication") and its §2
//! cloud-first principle ("all work and access are centralized, auditable,
//! and aligned with security and governance policies").
//!
//! The model is deliberately simple and auditable: principals carry roles;
//! grants bind a role to an action on a resource pattern; the platform
//! checks every query/run/branch operation against the policy and records
//! an audit event either way.

use parking_lot::RwLock;
use std::fmt;

/// Who is acting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Principal {
    pub name: String,
    pub roles: Vec<String>,
}

impl Principal {
    pub fn new(name: impl Into<String>, roles: Vec<&str>) -> Principal {
        Principal {
            name: name.into(),
            roles: roles.into_iter().map(String::from).collect(),
        }
    }
}

/// What they are trying to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Read tables / run queries on a ref.
    Read,
    /// Materialize artifacts (pipeline runs, table writes) on a branch.
    Write,
    /// Create branches or tags.
    Branch,
    /// Merge into a branch.
    Merge,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Action::Read => "read",
            Action::Write => "write",
            Action::Branch => "branch",
            Action::Merge => "merge",
        };
        f.write_str(s)
    }
}

/// One grant: role may perform action on refs matching the pattern
/// (`*` = any ref; `feat_*` = prefix match; exact otherwise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    pub role: String,
    pub action: Action,
    pub ref_pattern: String,
}

impl Grant {
    pub fn new(role: &str, action: Action, ref_pattern: &str) -> Grant {
        Grant {
            role: role.into(),
            action,
            ref_pattern: ref_pattern.into(),
        }
    }

    fn matches(&self, roles: &[String], action: Action, reference: &str) -> bool {
        if self.action != action || !roles.contains(&self.role) {
            return false;
        }
        pattern_matches(&self.ref_pattern, reference)
    }
}

fn pattern_matches(pattern: &str, value: &str) -> bool {
    if pattern == "*" {
        return true;
    }
    match pattern.strip_suffix('*') {
        Some(prefix) => value.starts_with(prefix),
        None => pattern == value,
    }
}

/// One audit-log entry (the "full auditability" principle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    pub principal: String,
    pub action: Action,
    pub reference: String,
    pub allowed: bool,
    /// What the principal was doing (SQL text, run project name...).
    pub detail: String,
}

/// The access controller: policy + audit log.
///
/// With no grants installed the controller is **permissive** (everything
/// allowed but still audited), so single-user development needs no setup —
/// the paper's "seamless" requirement.
#[derive(Debug, Default)]
pub struct AccessController {
    grants: RwLock<Vec<Grant>>,
    audit: RwLock<Vec<AuditEvent>>,
    enforcing: RwLock<bool>,
}

impl AccessController {
    pub fn new() -> AccessController {
        AccessController::default()
    }

    /// Install grants and switch to enforcing mode.
    pub fn set_policy(&self, grants: Vec<Grant>) {
        *self.grants.write() = grants;
        *self.enforcing.write() = true;
    }

    /// Drop back to permissive (audit-only) mode.
    pub fn disable_enforcement(&self) {
        *self.enforcing.write() = false;
    }

    pub fn is_enforcing(&self) -> bool {
        *self.enforcing.read()
    }

    /// Check and audit an access. Returns whether it is allowed.
    pub fn check(
        &self,
        principal: &Principal,
        action: Action,
        reference: &str,
        detail: &str,
    ) -> bool {
        let allowed = if !*self.enforcing.read() {
            true
        } else {
            self.grants
                .read()
                .iter()
                .any(|g| g.matches(&principal.roles, action, reference))
        };
        self.audit.write().push(AuditEvent {
            principal: principal.name.clone(),
            action,
            reference: reference.to_string(),
            allowed,
            detail: detail.to_string(),
        });
        allowed
    }

    /// The audit trail, oldest first.
    pub fn audit_log(&self) -> Vec<AuditEvent> {
        self.audit.read().clone()
    }

    /// Denied events only (the interesting ones for security review).
    pub fn denials(&self) -> Vec<AuditEvent> {
        self.audit
            .read()
            .iter()
            .filter(|e| !e.allowed)
            .cloned()
            .collect()
    }
}

/// A ready-made policy matching the paper's dev/prod split:
///
/// * `analyst` — read anywhere;
/// * `engineer` — read anywhere, write/branch/merge on non-production refs;
/// * `deployer` — everything everywhere (the orchestrator identity).
pub fn standard_policy(production_branch: &str) -> Vec<Grant> {
    let mut grants = vec![
        Grant::new("analyst", Action::Read, "*"),
        Grant::new("engineer", Action::Read, "*"),
        Grant::new("engineer", Action::Write, "feat_*"),
        Grant::new("engineer", Action::Write, "run_*"),
        Grant::new("engineer", Action::Branch, "*"),
        Grant::new("engineer", Action::Merge, "feat_*"),
        Grant::new("deployer", Action::Read, "*"),
        Grant::new("deployer", Action::Write, "*"),
        Grant::new("deployer", Action::Branch, "*"),
        Grant::new("deployer", Action::Merge, "*"),
    ];
    // Engineers may not write or merge into production.
    grants.retain(|g| {
        !(g.role == "engineer"
            && (g.action == Action::Write || g.action == Action::Merge)
            && pattern_matches(&g.ref_pattern, production_branch))
    });
    grants
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engineer() -> Principal {
        Principal::new("dev-1", vec!["engineer"])
    }

    #[test]
    fn permissive_by_default_but_audited() {
        let ac = AccessController::new();
        assert!(!ac.is_enforcing());
        assert!(ac.check(&engineer(), Action::Write, "main", "create table"));
        assert_eq!(ac.audit_log().len(), 1);
        assert!(ac.audit_log()[0].allowed);
    }

    #[test]
    fn standard_policy_blocks_engineer_prod_writes() {
        let ac = AccessController::new();
        ac.set_policy(standard_policy("main"));
        let dev = engineer();
        assert!(ac.check(&dev, Action::Read, "main", "query"));
        assert!(ac.check(&dev, Action::Write, "feat_1", "run"));
        assert!(!ac.check(&dev, Action::Write, "main", "run"));
        assert!(!ac.check(&dev, Action::Merge, "main", "merge feat_1"));
        assert_eq!(ac.denials().len(), 2);
    }

    #[test]
    fn deployer_can_do_everything() {
        let ac = AccessController::new();
        ac.set_policy(standard_policy("main"));
        let bot = Principal::new("orchestrator", vec!["deployer"]);
        for action in [Action::Read, Action::Write, Action::Branch, Action::Merge] {
            assert!(ac.check(&bot, action, "main", "cron"));
        }
    }

    #[test]
    fn analyst_read_only() {
        let ac = AccessController::new();
        ac.set_policy(standard_policy("main"));
        let a = Principal::new("ana", vec!["analyst"]);
        assert!(ac.check(&a, Action::Read, "feat_x", "query"));
        assert!(!ac.check(&a, Action::Write, "feat_x", "run"));
        assert!(!ac.check(&a, Action::Branch, "feat_x", "branch"));
    }

    #[test]
    fn unknown_role_denied_when_enforcing() {
        let ac = AccessController::new();
        ac.set_policy(standard_policy("main"));
        let ghost = Principal::new("ghost", vec!["unknown"]);
        assert!(!ac.check(&ghost, Action::Read, "main", "query"));
    }

    #[test]
    fn pattern_semantics() {
        assert!(pattern_matches("*", "anything"));
        assert!(pattern_matches("feat_*", "feat_1"));
        assert!(pattern_matches("feat_*", "feat_"));
        assert!(!pattern_matches("feat_*", "main"));
        assert!(pattern_matches("main", "main"));
        assert!(!pattern_matches("main", "main2"));
    }

    #[test]
    fn disable_enforcement_restores_permissive() {
        let ac = AccessController::new();
        ac.set_policy(vec![]);
        let p = engineer();
        assert!(!ac.check(&p, Action::Read, "main", "q"));
        ac.disable_enforcement();
        assert!(ac.check(&p, Action::Read, "main", "q"));
    }
}
