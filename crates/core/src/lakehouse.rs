//! The [`Lakehouse`] façade: branches, tables, queries, and run bookkeeping.

use crate::config::LakehouseConfig;
use crate::error::{BauplanError, Result};
use crate::estimator::MemoryEstimator;
use crate::functions::{FnContext, FnOutput, FunctionRegistry};
use crate::governance::{AccessController, Action, Grant, Principal};
use crate::provider::LakehouseProvider;
use lakehouse_catalog::{Catalog, Commit, CommitId, ContentRef, Operation, Reference};
use lakehouse_columnar::RecordBatch;
use lakehouse_planner::RunRegistry;
use lakehouse_runtime::{Runtime, SimClock};
use lakehouse_sql::SqlEngine;
use lakehouse_store::{
    CachedStore, ChaosStore, HedgePolicy, InMemoryStore, IoConfig, IoDispatcher, ObjectStore,
    RetryPolicy, RetryStore, SimulatedStore, StoreMetrics,
};
use lakehouse_table::{PartitionSpec, SnapshotOperation, Table};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Set while the current thread executes a DAG stage that already holds
    /// an admission slot (stage-level scheduling in `run.rs`). The SQL steps
    /// inside that stage run under the stage's slot — `attributed` must not
    /// re-acquire, or a stage would deadlock against its own steps.
    static UNDER_STAGE_PERMIT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII marker: the enclosed scope runs under a stage-level admission slot.
pub(crate) struct StagePermitScope {
    prev: bool,
}

impl StagePermitScope {
    pub(crate) fn enter() -> StagePermitScope {
        StagePermitScope {
            prev: UNDER_STAGE_PERMIT.with(|c| c.replace(true)),
        }
    }
}

impl Drop for StagePermitScope {
    fn drop(&mut self) {
        let prev = self.prev;
        UNDER_STAGE_PERMIT.with(|c| c.set(prev));
    }
}

pub(crate) fn under_stage_permit() -> bool {
    UNDER_STAGE_PERMIT.with(|c| c.get())
}

/// The serverless lakehouse platform. See the crate docs for the overview.
pub struct Lakehouse {
    pub(crate) config: LakehouseConfig,
    /// Concrete store handle (metrics access).
    store: Arc<SimulatedStore<Box<dyn ObjectStore>>>,
    /// The same store as a trait object for the substrates.
    pub(crate) store_dyn: Arc<dyn ObjectStore>,
    /// Completion-based I/O dispatcher over the full store stack
    /// (`io_depth > 0`); scans use it for speculative read-ahead and
    /// hedged reads.
    pub(crate) io: Option<Arc<IoDispatcher>>,
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) runtime: Runtime,
    pub(crate) engine: SqlEngine,
    pub(crate) functions: RwLock<FunctionRegistry>,
    pub(crate) runs: Mutex<RunRegistry>,
    pub(crate) access: AccessController,
    pub(crate) estimator: MemoryEstimator,
    /// Admission gate wrapped around top-level query/run/profile entry
    /// points (`max_concurrent_queries > 0`). `None` — the default — means
    /// no gate: no queueing, no shedding, seed-identical behavior.
    pub(crate) admission: Option<crate::AdmissionController>,
    table_counter: AtomicU64,
}

impl Lakehouse {
    /// Create a lakehouse over a fresh in-memory simulated object store.
    pub fn in_memory(config: LakehouseConfig) -> Result<Lakehouse> {
        Self::with_backend(Box::new(InMemoryStore::new()), config, true)
    }

    /// Create (or open) a lakehouse persisted under a local directory —
    /// what the `bauplan` CLI uses so state survives across invocations.
    pub fn on_disk(
        path: impl AsRef<std::path::Path>,
        config: LakehouseConfig,
    ) -> Result<Lakehouse> {
        let backend = lakehouse_store::LocalFsStore::new(path)?;
        // Initialize the catalog only on first use.
        let refs_path =
            lakehouse_store::ObjectPath::new(format!("{}/refs.json", config.catalog_prefix))?;
        let fresh = !backend.exists(&refs_path);
        Self::with_backend(Box::new(backend), config, fresh)
    }

    /// Create a lakehouse over a caller-supplied (typically shared) backend.
    /// Several instances over one `Arc` see the same lake — one platform,
    /// many fronts. The catalog is initialized only if the backend does not
    /// already hold one, so the second instance opens what the first built.
    /// This is how multi-tenant setups are modeled: per-tenant `Lakehouse`
    /// handles (each with its own `tenant` label and budgets) over one
    /// store, sharing one [`crate::AdmissionController`] via
    /// [`Lakehouse::set_admission`] and one [`lakehouse_store::BufferPool`]
    /// via `config.shared_pool`.
    pub fn with_store(backend: Arc<dyn ObjectStore>, config: LakehouseConfig) -> Result<Lakehouse> {
        let refs_path =
            lakehouse_store::ObjectPath::new(format!("{}/refs.json", config.catalog_prefix))?;
        let fresh = !backend.exists(&refs_path);
        Self::with_backend(Box::new(backend), config, fresh)
    }

    fn with_backend(
        backend: Box<dyn ObjectStore>,
        config: LakehouseConfig,
        init_catalog: bool,
    ) -> Result<Lakehouse> {
        let store = Arc::new(SimulatedStore::new(backend, config.latency.clone()));
        // Resilience stack, innermost first:
        // `Cached(Retry(Chaos(Simulated(backend))))`. Chaos sits directly on
        // the simulated store so injected faults look like S3 failures;
        // retry sits above chaos so it absorbs them; the cache sits on top
        // so cache hits never burn retry budget. Every layer is optional
        // and skipped at defaults — the default stack is byte-identical to
        // the pre-resilience one (op counts, metrics, everything).
        let mut store_dyn: Arc<dyn ObjectStore> = Arc::clone(&store) as Arc<dyn ObjectStore>;
        if let Some(chaos) = &config.chaos {
            store_dyn = Arc::new(ChaosStore::new(store_dyn, chaos.clone()));
        }
        if config.retry_max > 0 {
            let policy = RetryPolicy::default()
                .with_max_retries(config.retry_max)
                .with_budget(std::time::Duration::from_millis(config.retry_budget_ms));
            store_dyn = Arc::new(RetryStore::new(store_dyn, policy));
        }
        // The cache layer comes in two flavors. A *shared* pool (several
        // `Lakehouse` instances over one `Arc<BufferPool>`) keeps its hit
        // counters in the pool's own metrics — per-store attribution would
        // be arbitrary. The *private* default folds hits into the simulated
        // store's metrics, so `store_metrics()` sees both sides, exactly as
        // before the pool refactor.
        if let Some(pool) = &config.shared_pool {
            if config.pool_tenant_quota_bytes > 0 {
                pool.set_tenant_quota_bytes(config.pool_tenant_quota_bytes);
            }
            store_dyn = Arc::new(CachedStore::with_pool(store_dyn, Arc::clone(pool)));
        } else if config.metadata_cache_bytes > 0 {
            store_dyn = Arc::new(CachedStore::new(store_dyn, config.metadata_cache_bytes));
        }
        // The dispatcher sits over the *complete* stack: a speculative get
        // passes through the cache (populating the pool behind its
        // single-flight), retry, and chaos layers exactly like a demand
        // fetch — so read-ahead and hedging can never duplicate a backend
        // read or dodge fault injection.
        let io = (config.io_depth > 0).then(|| {
            let mut io_config = IoConfig::new(config.io_depth);
            if config.hedge_p95 {
                io_config = io_config.with_hedge(HedgePolicy::default());
            }
            Arc::new(IoDispatcher::new(Arc::clone(&store_dyn), io_config))
        });
        let catalog = Arc::new(if init_catalog {
            Catalog::init(Arc::clone(&store_dyn), config.catalog_prefix.clone())?
        } else {
            Catalog::open(Arc::clone(&store_dyn), config.catalog_prefix.clone())?
        });
        let runtime = Runtime::new(config.runtime.clone());
        let engine = SqlEngine::new()
            .with_parallelism(config.sql_parallelism)
            .with_streaming(config.stream_execution)
            .with_batch_rows(config.stream_batch_rows);
        let admission =
            crate::AdmissionConfig::from_lakehouse(&config).map(crate::AdmissionController::new);
        Ok(Lakehouse {
            config,
            store,
            store_dyn,
            io,
            catalog,
            runtime,
            engine,
            functions: RwLock::new(FunctionRegistry::new()),
            runs: Mutex::new(RunRegistry::new()),
            access: AccessController::new(),
            estimator: MemoryEstimator::new(),
            admission,
            table_counter: AtomicU64::new(0),
        })
    }

    // ---- observability ------------------------------------------------------

    /// The platform's simulated clock as a span time source: store charged
    /// latency plus the runtime's virtual startup/datapass clock. Spans
    /// record this alongside wall time, so traces of simulated runs are
    /// deterministic (DESIGN.md §10).
    fn sim_source(&self) -> lakehouse_obs::SimSource {
        let metrics = self.store_metrics();
        let clock = self.runtime.clock().clone();
        Arc::new(move || (metrics.simulated_time() + clock.now()).as_nanos() as u64)
    }

    /// Install this lakehouse's simulated clock for spans opened on the
    /// current thread (restored on guard drop).
    pub(crate) fn install_sim(&self) -> lakehouse_obs::SimSourceGuard {
        lakehouse_obs::set_thread_sim_source(Some(self.sim_source()))
    }

    /// Run `f` under a fresh per-query resource context: the ctx is entered
    /// on this thread (workers it fans out to re-enter it explicitly), a
    /// `query_start`/`query_finish` event pair brackets the execution in the
    /// flight recorder, and the finished record — status, both clocks, and
    /// the final ledger snapshot — lands in the global query log that backs
    /// `system.queries`. Callers must have installed the sim source first so
    /// the simulated clock is attributable.
    pub(crate) fn attributed<T>(&self, label: &str, f: impl FnOnce() -> Result<T>) -> Result<T> {
        // Admission gate: only *top-level* submissions contend for a slot.
        // Nested attributions (run steps executing under an already-entered
        // query context) run under their parent's slot — re-acquiring here
        // would deadlock a run against its own steps.
        let _permit = match &self.admission {
            Some(gate) if lakehouse_obs::QueryCtx::current().is_none() && !under_stage_permit() => {
                match gate.acquire(&self.config.tenant) {
                    Ok(permit) => Some(permit),
                    Err(shed) => {
                        // Shed before a context existed: the record carries
                        // query id 0 (never admitted, nothing attributed) —
                        // but the wait until the gate gave up is real
                        // latency the victim's caller saw, so it is charged
                        // as wall time instead of vanishing (the p99s in
                        // BENCH_sched.json include shed victims).
                        let waited = shed.waited.as_nanos() as u64;
                        lakehouse_obs::query_log().push(lakehouse_obs::QueryRecord {
                            query_id: 0,
                            tenant: self.config.tenant.clone(),
                            label: label.to_string(),
                            status: "shed".to_string(),
                            reason: "overloaded".to_string(),
                            wall_nanos: waited,
                            sim_nanos: 0,
                            queue_wait_nanos: waited,
                            sched_policy: gate.policy_name().to_string(),
                            ledger: lakehouse_obs::LedgerSnapshot::default(),
                        });
                        return Err(BauplanError::Overloaded {
                            retry_after: shed.retry_after,
                        });
                    }
                }
            }
            _ => None,
        };
        let queue_wait_nanos = _permit
            .as_ref()
            .map(|p| p.waited().as_nanos() as u64)
            .unwrap_or(0);
        let sched_policy = _permit
            .as_ref()
            .and(self.admission.as_ref())
            .map(|gate| gate.policy_name().to_string())
            .unwrap_or_default();
        let ctx = lakehouse_obs::QueryCtx::new(self.config.tenant.clone(), label);
        // Budgets arm only after admission, so queue wait never counts
        // against the deadline. All default to 0 = unarmed: the token then
        // never trips and enforcement-off runs are byte-identical.
        if self.config.query_timeout_ms > 0 {
            ctx.arm_deadline(std::time::Duration::from_millis(
                self.config.query_timeout_ms,
            ));
        }
        if self.config.memory_budget_bytes > 0 {
            ctx.arm_memory_budget(self.config.memory_budget_bytes);
        }
        if self.config.io_budget_bytes > 0 {
            ctx.arm_io_budget(self.config.io_budget_bytes);
        }
        if self.config.retry_stall_budget_ms > 0 {
            ctx.arm_stall_budget(std::time::Duration::from_millis(
                self.config.retry_stall_budget_ms,
            ));
        }
        // Events carry a short tag, the query log keeps the full text.
        let tag: String = label.chars().take(64).collect();
        lakehouse_obs::recorder().record_for(
            lakehouse_obs::EventKind::QueryStart,
            ctx.query_id(),
            ctx.tenant(),
            &tag,
            0,
        );
        let wall_start = std::time::Instant::now();
        let sim_start = lakehouse_obs::thread_sim_nanos();
        let result = {
            let _attributed = ctx.enter();
            f()
        };
        let wall_nanos = wall_start.elapsed().as_nanos() as u64;
        let sim_nanos = lakehouse_obs::thread_sim_nanos().saturating_sub(sim_start);
        // A tripped token plus a failed result means the failure *is* the
        // kill, however many layers stringified it on the way up: re-type
        // it here so callers always see `BauplanError::QueryKilled`.
        let killed = ctx.killed().filter(|_| result.is_err());
        let result = match killed {
            Some(reason) => Err(BauplanError::QueryKilled { reason }),
            None => result,
        };
        let status = match (&result, killed) {
            (Ok(_), _) => "ok",
            (Err(_), Some(_)) => "killed",
            (Err(_), None) => "error",
        };
        if let Some(reason) = killed {
            lakehouse_obs::global()
                .counter(&format!("query.killed.{}", reason.counter_suffix()))
                .inc();
            lakehouse_obs::recorder().record_for(
                lakehouse_obs::EventKind::QueryKilled,
                ctx.query_id(),
                ctx.tenant(),
                reason.as_str(),
                wall_nanos,
            );
        }
        lakehouse_obs::recorder().record_for(
            lakehouse_obs::EventKind::QueryFinish,
            ctx.query_id(),
            ctx.tenant(),
            status,
            wall_nanos,
        );
        lakehouse_obs::query_log().push(lakehouse_obs::QueryRecord {
            query_id: ctx.query_id(),
            tenant: ctx.tenant().to_string(),
            label: label.to_string(),
            status: status.to_string(),
            reason: killed.map(|r| r.as_str().to_string()).unwrap_or_default(),
            wall_nanos,
            sim_nanos,
            queue_wait_nanos,
            sched_policy,
            ledger: ctx.ledger().snapshot(),
        });
        result
    }

    // ---- introspection -----------------------------------------------------

    /// Simulated-latency metrics of the object store.
    pub fn store_metrics(&self) -> Arc<StoreMetrics> {
        self.store.metrics()
    }

    /// The completion-based I/O dispatcher, when `config.io_depth > 0`.
    pub fn io_dispatcher(&self) -> Option<&Arc<IoDispatcher>> {
        self.io.as_ref()
    }

    /// The admission gate, when `config.max_concurrent_queries > 0`.
    pub fn admission(&self) -> Option<&crate::AdmissionController> {
        self.admission.as_ref()
    }

    /// Replace the admission gate. A multi-tenant deployment hands several
    /// `Lakehouse` instances (one per tenant label) clones of **one**
    /// controller so they contend for the same platform-wide slots — this
    /// is how the overload bench models tenants sharing a backend.
    pub fn set_admission(&mut self, gate: Option<crate::AdmissionController>) {
        self.admission = gate;
    }

    /// The runtime's simulated clock (startup/datapass events).
    pub fn clock(&self) -> &SimClock {
        self.runtime.clock()
    }

    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn config(&self) -> &LakehouseConfig {
        &self.config
    }

    // ---- git-for-data surface (paper §4.3) ----------------------------------

    /// Create a branch from another ref (or empty).
    pub fn create_branch(&self, name: &str, from: Option<&str>) -> Result<Reference> {
        Ok(self.catalog.create_branch(name, from)?)
    }

    /// Create an immutable tag.
    pub fn create_tag(&self, name: &str, from: &str) -> Result<Reference> {
        Ok(self.catalog.create_tag(name, from)?)
    }

    /// Merge `from` into `to` (three-way with conflict detection).
    pub fn merge(&self, from: &str, to: &str) -> Result<Option<CommitId>> {
        Ok(self.catalog.merge(from, to, &self.config.author)?)
    }

    /// Delete a branch or tag.
    pub fn delete_branch(&self, name: &str) -> Result<()> {
        Ok(self.catalog.delete_ref(name)?)
    }

    /// Commit log of a ref, newest first.
    pub fn log(&self, reference: &str, limit: usize) -> Result<Vec<(CommitId, Commit)>> {
        Ok(self.catalog.log(reference, limit)?)
    }

    /// All refs.
    pub fn list_refs(&self) -> Result<Vec<Reference>> {
        Ok(self.catalog.list_refs()?)
    }

    /// Garbage-collect catalog commits unreachable from any ref (run after
    /// deleting branches).
    pub fn gc_catalog(&self) -> Result<usize> {
        Ok(self.catalog.gc()?)
    }

    /// Table names visible at a ref.
    pub fn list_tables(&self, reference: &str) -> Result<Vec<String>> {
        Ok(self
            .catalog
            .state_at(reference)?
            .keys()
            .map(String::from)
            .collect())
    }

    // ---- tables -------------------------------------------------------------

    /// Create a table from a batch and commit it to `branch`.
    pub fn create_table(&self, name: &str, batch: &RecordBatch, branch: &str) -> Result<()> {
        self.create_table_partitioned(name, batch, branch, PartitionSpec::unpartitioned())
    }

    /// Create a partitioned table from a batch and commit it to `branch`.
    pub fn create_table_partitioned(
        &self,
        name: &str,
        batch: &RecordBatch,
        branch: &str,
        spec: PartitionSpec,
    ) -> Result<()> {
        let n = self.table_counter.fetch_add(1, Ordering::Relaxed);
        // Uniquify across process restarts (disk-backed stores): count the
        // objects already under this table's prefix.
        let existing = self
            .store_dyn
            .list(&format!("{}/{name}", self.config.warehouse_prefix))
            .map(|l| l.len())
            .unwrap_or(0);
        let location = format!("{}/{name}/u{n}-{existing}", self.config.warehouse_prefix);
        let table = Table::create(Arc::clone(&self.store_dyn), &location, batch.schema(), spec)?;
        let mut tx = table
            .new_transaction(SnapshotOperation::Append)
            .with_writer_options(lakehouse_format::WriterOptions {
                row_group_rows: self.config.row_group_rows,
            });
        tx.write(batch)?;
        let (metadata_location, metadata) = tx.commit()?;
        self.catalog.commit(
            branch,
            &self.config.author,
            &format!("create table {name}"),
            vec![Operation::Put {
                key: name.to_string(),
                content: ContentRef::new(
                    metadata_location,
                    metadata.current_snapshot_id.unwrap_or(0),
                ),
            }],
        )?;
        Ok(())
    }

    /// Append a batch to an existing table on `branch`.
    pub fn append_table(&self, name: &str, batch: &RecordBatch, branch: &str) -> Result<()> {
        let content = self.catalog.get_content(branch, name)?;
        let table = Table::load(Arc::clone(&self.store_dyn), &content.metadata_location)?;
        let mut tx = table.new_transaction(SnapshotOperation::Append);
        tx.write(batch)?;
        let (metadata_location, metadata) = tx.commit()?;
        self.catalog.commit(
            branch,
            &self.config.author,
            &format!("append to {name}"),
            vec![Operation::Put {
                key: name.to_string(),
                content: ContentRef::new(
                    metadata_location,
                    metadata.current_snapshot_id.unwrap_or(0),
                ),
            }],
        )?;
        Ok(())
    }

    /// Compact a table's data files on a branch (small-file compaction) and
    /// point the catalog at the compacted version. Returns the maintenance
    /// report.
    pub fn compact_table(
        &self,
        name: &str,
        branch: &str,
    ) -> Result<lakehouse_table::CompactionReport> {
        let provider = self.provider(branch);
        let table = provider.load_table(name)?;
        let (compacted, report) = table.compact()?;
        if report.files_compacted > 0 {
            self.catalog.commit(
                branch,
                &self.config.author,
                &format!("compact table {name}"),
                vec![Operation::Put {
                    key: name.to_string(),
                    content: ContentRef::new(
                        compacted.metadata_location(),
                        compacted.metadata().current_snapshot_id.unwrap_or(0),
                    ),
                }],
            )?;
        }
        Ok(report)
    }

    /// Expire old snapshots of a table on a branch, retaining the most
    /// recent `retain_last`, and update the catalog pointer.
    pub fn expire_table_snapshots(
        &self,
        name: &str,
        branch: &str,
        retain_last: usize,
    ) -> Result<lakehouse_table::ExpirationReport> {
        let provider = self.provider(branch);
        let table = provider.load_table(name)?;
        let (expired, report) = table.expire_snapshots(retain_last)?;
        if report.snapshots_expired > 0 {
            self.catalog.commit(
                branch,
                &self.config.author,
                &format!("expire snapshots of {name}"),
                vec![Operation::Put {
                    key: name.to_string(),
                    content: ContentRef::new(
                        expired.metadata_location(),
                        expired.metadata().current_snapshot_id.unwrap_or(0),
                    ),
                }],
            )?;
        }
        Ok(report)
    }

    /// Read a whole table at a ref.
    pub fn read_table(&self, name: &str, reference: &str) -> Result<RecordBatch> {
        let provider = self.provider(reference);
        let table = provider
            .load_table(name)
            .map_err(|_| BauplanError::TableNotFound {
                table: name.to_string(),
                reference: reference.to_string(),
            })?;
        Ok(table.scan().execute()?)
    }

    // ---- query (paper §4.6: `bauplan query -q ... -b ...`) -------------------

    /// Synchronous SQL over any branch, tag, or commit id (time travel).
    pub fn query(&self, sql: &str, reference: &str) -> Result<RecordBatch> {
        let _sim = self.install_sim();
        let scope = lakehouse_obs::scope("query");
        scope.attr("reference", reference);
        let provider = self.provider(reference);
        self.attributed(sql, || Ok(self.engine.query(sql, &provider)?))
    }

    /// SQL over a ref through the streaming pipeline, reporting peak memory
    /// and per-operator row counts. Streams per data file when
    /// `config.stream_execution` is set; otherwise runs the same operators
    /// over materialized tables (the baseline for `peak_bytes` comparisons).
    pub fn query_with_report(
        &self,
        sql: &str,
        reference: &str,
    ) -> Result<(RecordBatch, lakehouse_sql::ExecReport)> {
        let _sim = self.install_sim();
        let scope = lakehouse_obs::scope("query");
        scope.attr("reference", reference);
        let provider = self.provider(reference);
        self.attributed(sql, || Ok(self.engine.query_with_report(sql, &provider)?))
    }

    /// EXPLAIN the optimized plan for a query at a ref.
    pub fn explain(&self, sql: &str, reference: &str) -> Result<String> {
        let provider = self.provider(reference);
        Ok(self.engine.explain(sql, &provider)?)
    }

    /// EXPLAIN ANALYZE at a ref: execute the query (materialized or streaming
    /// per `config.stream_execution`) and render the optimized plan annotated
    /// per operator with rows, batches, bytes, and wall/simulated span time.
    pub fn explain_analyze(&self, sql: &str, reference: &str) -> Result<(RecordBatch, String)> {
        let _sim = self.install_sim();
        let provider = self.provider(reference);
        self.attributed(sql, || Ok(self.engine.explain_analyze(sql, &provider)?))
    }

    /// [`Self::explain_analyze`] plus the recorded span tree, for exporters
    /// (`--trace-out`, `bauplan profile`).
    pub fn explain_analyze_traced(
        &self,
        sql: &str,
        reference: &str,
    ) -> Result<(RecordBatch, String, lakehouse_obs::SpanTree)> {
        let _sim = self.install_sim();
        let provider = self.provider(reference);
        self.attributed(sql, || {
            Ok(self.engine.explain_analyze_traced(sql, &provider)?)
        })
    }

    /// Execute a query under a forced trace and return the result together
    /// with the full span tree (scan planning, fetches, operators) — the
    /// backing of `bauplan profile`.
    pub fn profile(
        &self,
        sql: &str,
        reference: &str,
    ) -> Result<(RecordBatch, lakehouse_obs::SpanTree)> {
        let _sim = self.install_sim();
        let trace = lakehouse_obs::Trace::start_forced("query");
        trace.attr("reference", reference);
        trace.attr("sql", sql);
        let provider = self.provider(reference);
        let result = self.attributed(sql, || Ok(self.engine.query(sql, &provider)?));
        let tree = trace.finish();
        Ok((result?, tree))
    }

    pub(crate) fn provider(&self, reference: &str) -> LakehouseProvider {
        LakehouseProvider::new(
            Arc::clone(&self.store_dyn),
            Arc::clone(&self.catalog),
            reference,
        )
        .with_scan_parallelism(self.config.scan_parallelism)
        .with_fetch_retries(self.config.retry_max)
        .with_partial_failures(self.config.scan_partial_failures)
        .with_io(self.io.clone(), self.config.read_ahead)
        .with_system_pool(self.config.shared_pool.clone())
    }

    // ---- functions ------------------------------------------------------------

    /// Register a native function (pipeline step implementation).
    pub fn register_function(
        &self,
        id: impl Into<String>,
        f: impl Fn(&FnContext) -> Result<FnOutput> + Send + Sync + 'static,
    ) {
        self.functions.write().register(id, f);
    }

    /// Register the paper's Appendix A expectation
    /// (`mean(trips.count) > 10`) under `trips_expectation_impl`, as used by
    /// [`lakehouse_planner::PipelineProject::taxi_example`].
    pub fn register_taxi_functions(&self) {
        self.register_function(
            "trips_expectation_impl",
            crate::functions::builtins::mean_greater_than("trips", "count", 10.0),
        );
    }

    // ---- runs ---------------------------------------------------------------

    /// Number of recorded runs.
    pub fn run_count(&self) -> usize {
        self.runs.lock().len()
    }

    // ---- governance (paper §5 future work + §2 auditability) ----------------

    /// Install an access policy and start enforcing it.
    pub fn set_access_policy(&self, grants: Vec<Grant>) {
        self.access.set_policy(grants);
    }

    /// The access controller (audit log, enforcement toggles).
    pub fn access(&self) -> &AccessController {
        &self.access
    }

    /// `query` with an authenticated principal: checked against the policy
    /// and audited.
    pub fn query_as(
        &self,
        principal: &Principal,
        sql: &str,
        reference: &str,
    ) -> Result<RecordBatch> {
        if !self.access.check(principal, Action::Read, reference, sql) {
            return Err(BauplanError::AccessDenied {
                principal: principal.name.clone(),
                action: "read".into(),
                reference: reference.to_string(),
            });
        }
        self.query(sql, reference)
    }

    /// `run` with an authenticated principal (Write on the target branch).
    pub fn run_as(
        &self,
        principal: &Principal,
        project: &lakehouse_planner::PipelineProject,
        options: &crate::run::RunOptions,
    ) -> Result<crate::run::RunReport> {
        if !self
            .access
            .check(principal, Action::Write, &options.branch, &project.name)
        {
            return Err(BauplanError::AccessDenied {
                principal: principal.name.clone(),
                action: "write".into(),
                reference: options.branch.clone(),
            });
        }
        self.run(project, options)
    }

    /// `merge` with an authenticated principal.
    pub fn merge_as(
        &self,
        principal: &Principal,
        from: &str,
        to: &str,
    ) -> Result<Option<CommitId>> {
        if !self
            .access
            .check(principal, Action::Merge, to, &format!("merge {from}"))
        {
            return Err(BauplanError::AccessDenied {
                principal: principal.name.clone(),
                action: "merge".into(),
                reference: to.to_string(),
            });
        }
        self.merge(from, to)
    }

    /// The log-driven memory estimator (paper §5 "using logs ... to further
    /// optimize").
    pub fn memory_estimator(&self) -> &MemoryEstimator {
        &self.estimator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakehouse_columnar::{Column, DataType, Field, Schema, Value};

    fn lh() -> Lakehouse {
        Lakehouse::in_memory(LakehouseConfig::zero_latency()).unwrap()
    }

    fn batch(vals: Vec<i64>) -> RecordBatch {
        RecordBatch::try_new(
            Schema::new(vec![Field::new("x", DataType::Int64, false)]),
            vec![Column::from_i64(vals)],
        )
        .unwrap()
    }

    #[test]
    fn create_and_query_table() {
        let lh = lh();
        lh.create_table("nums", &batch(vec![1, 2, 3]), "main")
            .unwrap();
        let out = lh.query("SELECT SUM(x) AS s FROM nums", "main").unwrap();
        assert_eq!(out.row(0).unwrap()[0], Value::Int64(6));
    }

    #[test]
    fn append_accumulates() {
        let lh = lh();
        lh.create_table("nums", &batch(vec![1]), "main").unwrap();
        lh.append_table("nums", &batch(vec![2, 3]), "main").unwrap();
        let out = lh.read_table("nums", "main").unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn branch_isolation_and_merge() {
        let lh = lh();
        lh.create_table("nums", &batch(vec![1]), "main").unwrap();
        lh.create_branch("feat", Some("main")).unwrap();
        lh.create_table("extra", &batch(vec![9]), "feat").unwrap();
        assert_eq!(lh.list_tables("feat").unwrap().len(), 2);
        assert_eq!(lh.list_tables("main").unwrap().len(), 1);
        lh.merge("feat", "main").unwrap();
        assert_eq!(lh.list_tables("main").unwrap().len(), 2);
    }

    #[test]
    fn time_travel_by_commit_and_tag() {
        let lh = lh();
        lh.create_table("nums", &batch(vec![1]), "main").unwrap();
        let (v1_commit, _) = lh.log("main", 1).unwrap().pop().unwrap();
        lh.create_tag("v1", "main").unwrap();
        lh.append_table("nums", &batch(vec![2]), "main").unwrap();
        assert_eq!(lh.read_table("nums", "main").unwrap().num_rows(), 2);
        assert_eq!(lh.read_table("nums", "v1").unwrap().num_rows(), 1);
        assert_eq!(lh.read_table("nums", &v1_commit).unwrap().num_rows(), 1);
        // Queries time travel too.
        let out = lh.query("SELECT COUNT(*) AS n FROM nums", "v1").unwrap();
        assert_eq!(out.row(0).unwrap()[0], Value::Int64(1));
    }

    #[test]
    fn missing_table_error() {
        let lh = lh();
        assert!(matches!(
            lh.read_table("ghost", "main"),
            Err(BauplanError::TableNotFound { .. })
        ));
        assert!(lh.query("SELECT * FROM ghost", "main").is_err());
    }

    #[test]
    fn explain_works_through_catalog() {
        let lh = lh();
        lh.create_table("nums", &batch(vec![1, 2]), "main").unwrap();
        let text = lh
            .explain("SELECT x FROM nums WHERE x > 1", "main")
            .unwrap();
        assert!(text.contains("Scan: nums"));
        assert!(text.contains("filters="));
    }

    #[test]
    fn store_metrics_observe_traffic() {
        let lh = Lakehouse::in_memory(LakehouseConfig::default()).unwrap();
        lh.create_table("nums", &batch(vec![1, 2, 3]), "main")
            .unwrap();
        let before = lh.store_metrics().gets();
        lh.query("SELECT * FROM nums", "main").unwrap();
        assert!(lh.store_metrics().gets() > before);
        assert!(lh.store_metrics().simulated_time() > std::time::Duration::ZERO);
    }
}
