//! Retry layer: exponential backoff with decorrelated jitter, per-op
//! deadlines, and a bounded retry budget over any [`ObjectStore`].
//!
//! [`RetryStore`] retries operations whose error is
//! [`StoreError::is_retryable`] (transient faults, throttles, timeouts).
//! Backoff waits are *simulated*: each delay is charged to the inner
//! store's [`StoreMetrics`] via `record_stall`, so retried runs report
//! honest latency totals deterministically instead of wall-clock sleeping
//! — the same trick `SimulatedStore` uses for S3 latency itself.
//!
//! The jitter strategy is "decorrelated jitter" (each delay is drawn
//! uniformly from `[base, prev * 3]`, capped), which spreads concurrent
//! retriers apart instead of letting them stampede in synchronized waves.
//! The RNG is seeded, so a serial op sequence replays identically.

use crate::error::{Result, StoreError};
use crate::path::ObjectPath;
use crate::{ObjectStore, StoreMetrics};
use bytes::Bytes;
use lakehouse_obs::{Counter, Histogram};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning for [`RetryStore`] (and, via [`Backoff`], the catalog's CAS
/// loop). The defaults model a patient S3 client: 4 retries, 25 ms base
/// backoff capped at 2 s, 30 s of total backoff budget, no per-op deadline.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries per operation after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Lower bound of every backoff delay.
    pub base_backoff: Duration,
    /// Upper bound of every backoff delay.
    pub max_backoff: Duration,
    /// Total backoff the store may accumulate across *all* operations
    /// before it stops retrying — bounds worst-case added latency for a
    /// whole query the way a per-request retry cap cannot.
    pub budget: Duration,
    /// If set, an attempt whose charged simulated latency exceeds this is
    /// treated as [`StoreError::Timeout`] and retried.
    pub op_deadline: Option<Duration>,
    /// Seed for the jitter RNG.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            budget: Duration::from_secs(30),
            op_deadline: None,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    pub fn with_max_retries(mut self, n: u32) -> RetryPolicy {
        self.max_retries = n;
        self
    }

    pub fn with_budget(mut self, budget: Duration) -> RetryPolicy {
        self.budget = budget;
        self
    }

    pub fn with_op_deadline(mut self, deadline: Duration) -> RetryPolicy {
        self.op_deadline = Some(deadline);
        self
    }

    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }
}

/// Decorrelated-jitter delay sequence: `delay[n] = min(cap,
/// uniform(base, delay[n-1] * 3))`, starting from `base`. Reusable by any
/// retry loop (the catalog's CAS commit uses it directly).
#[derive(Debug)]
pub struct Backoff {
    rng: StdRng,
    base: Duration,
    cap: Duration,
    prev: Duration,
}

impl Backoff {
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        let base = base.max(Duration::from_nanos(1));
        Backoff {
            rng: StdRng::seed_from_u64(seed),
            base,
            cap: cap.max(base),
            prev: base,
        }
    }

    /// The next delay in the sequence.
    pub fn next_delay(&mut self) -> Duration {
        let base = self.base.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64)
            .saturating_mul(3)
            .max(base + 1);
        let drawn = self.rng.gen_range(base..hi);
        let delay = Duration::from_nanos(drawn.min(self.cap.as_nanos() as u64));
        self.prev = delay;
        delay
    }
}

/// A small windowed circuit breaker over boolean outcomes.
///
/// Used by the I/O dispatcher's hedged reads: each completed hedge records
/// whether the hedge *won* the race. When the store is globally slow (every
/// request is slow, not just the tail) hedges fire but rarely win — the win
/// rate over the sliding window drops below `min_success_rate` and the
/// breaker opens, suppressing further hedges for `cooldown_ops` admission
/// checks before probing again with a cleared window. This is the same gate
/// shape as the `FaultDecider`/[`RetryStore`] budget: back off globally when
/// the signal says extra requests buy nothing.
#[derive(Debug)]
pub struct CircuitBreaker {
    window: usize,
    min_success_rate: f64,
    cooldown_ops: u64,
    state: Mutex<BreakerState>,
}

#[derive(Debug)]
struct BreakerState {
    outcomes: std::collections::VecDeque<bool>,
    successes: usize,
    /// Remaining `allow()` calls to swallow while open; 0 = closed.
    cooldown_left: u64,
    trips: u64,
}

impl CircuitBreaker {
    /// `window` outcomes are kept; once the window is full and the success
    /// rate drops below `min_success_rate`, the breaker opens for
    /// `cooldown_ops` admission checks.
    pub fn new(window: usize, min_success_rate: f64, cooldown_ops: u64) -> CircuitBreaker {
        CircuitBreaker {
            window: window.max(1),
            min_success_rate: min_success_rate.clamp(0.0, 1.0),
            cooldown_ops: cooldown_ops.max(1),
            state: Mutex::new(BreakerState {
                outcomes: std::collections::VecDeque::new(),
                successes: 0,
                cooldown_left: 0,
                trips: 0,
            }),
        }
    }

    /// Should the guarded action run? While open, swallows one cooldown
    /// tick per call and re-closes (with a fresh window) when the cooldown
    /// is spent.
    pub fn allow(&self) -> bool {
        let mut st = self.state.lock();
        if st.cooldown_left == 0 {
            return true;
        }
        st.cooldown_left -= 1;
        if st.cooldown_left == 0 {
            // Half-open probe: forget the bad window, try again.
            st.outcomes.clear();
            st.successes = 0;
            return true;
        }
        false
    }

    /// Record the outcome of a guarded action. May trip the breaker.
    pub fn record(&self, success: bool) {
        let mut st = self.state.lock();
        st.outcomes.push_back(success);
        if success {
            st.successes += 1;
        }
        if st.outcomes.len() > self.window && st.outcomes.pop_front() == Some(true) {
            st.successes -= 1;
        }
        if st.outcomes.len() >= self.window {
            let rate = st.successes as f64 / st.outcomes.len() as f64;
            if rate < self.min_success_rate && st.cooldown_left == 0 {
                st.cooldown_left = self.cooldown_ops;
                st.trips += 1;
            }
        }
    }

    /// Is the breaker currently open (suppressing the guarded action)?
    pub fn is_open(&self) -> bool {
        self.state.lock().cooldown_left > 0
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.state.lock().trips
    }
}

/// Process-wide retry counters (`lakehouse-obs`).
#[derive(Debug)]
struct RetryCounters {
    attempts: Arc<Counter>,
    giveups: Arc<Counter>,
    backoff_nanos: Arc<Histogram>,
}

impl RetryCounters {
    fn register() -> RetryCounters {
        let reg = lakehouse_obs::global();
        RetryCounters {
            attempts: reg.counter("retry.attempts"),
            giveups: reg.counter("retry.giveups"),
            backoff_nanos: reg.histogram("retry.backoff_nanos"),
        }
    }
}

/// An [`ObjectStore`] wrapper that retries retryable failures with seeded
/// decorrelated-jitter backoff, a per-store retry budget, and optional
/// per-op deadlines. See the module docs for the accounting model.
pub struct RetryStore<S> {
    inner: S,
    policy: RetryPolicy,
    rng: Mutex<StdRng>,
    budget_left: AtomicU64,
    retries: AtomicU64,
    giveups: AtomicU64,
    obs: RetryCounters,
}

impl<S: ObjectStore> RetryStore<S> {
    pub fn new(inner: S, policy: RetryPolicy) -> RetryStore<S> {
        let budget_nanos = policy.budget.as_nanos().min(u64::MAX as u128) as u64;
        RetryStore {
            inner,
            rng: Mutex::new(StdRng::seed_from_u64(policy.seed)),
            budget_left: AtomicU64::new(budget_nanos),
            policy,
            retries: AtomicU64::new(0),
            giveups: AtomicU64::new(0),
            obs: RetryCounters::register(),
        }
    }

    /// Retries performed so far (attempts beyond each op's first).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Operations abandoned with [`StoreError::RetriesExhausted`].
    pub fn giveups(&self) -> u64 {
        self.giveups.load(Ordering::Relaxed)
    }

    /// Backoff budget not yet consumed.
    pub fn budget_remaining(&self) -> Duration {
        Duration::from_nanos(self.budget_left.load(Ordering::Relaxed))
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Draw the next decorrelated-jitter delay given the previous one.
    fn next_delay(&self, prev: Duration) -> Duration {
        let base = self.policy.base_backoff.as_nanos() as u64;
        let hi = (prev.as_nanos() as u64).saturating_mul(3).max(base + 1);
        let drawn = self.rng.lock().gen_range(base..hi);
        Duration::from_nanos(drawn.min(self.policy.max_backoff.as_nanos() as u64))
    }

    /// Atomically take `delay` out of the budget; false if it doesn't fit.
    fn consume_budget(&self, delay: Duration) -> bool {
        let need = delay.as_nanos().min(u64::MAX as u128) as u64;
        let mut cur = self.budget_left.load(Ordering::Relaxed);
        loop {
            if cur < need {
                return false;
            }
            match self.budget_left.compare_exchange_weak(
                cur,
                cur - need,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    fn give_up(&self, op: &'static str, attempts: u32, last: StoreError) -> StoreError {
        self.giveups.fetch_add(1, Ordering::Relaxed);
        self.obs.giveups.inc();
        StoreError::RetriesExhausted {
            op: op.to_string(),
            attempts,
            last: Box::new(last),
        }
    }

    /// Run `f` with retry/backoff/deadline semantics.
    fn with_retry<T>(&self, op: &'static str, f: impl Fn(&S) -> Result<T>) -> Result<T> {
        let metrics = self.inner.store_metrics();
        let ctx = lakehouse_obs::QueryCtx::current();
        let mut attempts: u32 = 0;
        let mut prev_delay = self.policy.base_backoff;
        loop {
            // Cooperative cancellation point: every attempt (including the
            // first, and each one after a backoff charged the stall ledger)
            // re-checks the owning query's token, so a killed query stops
            // after at most one in-flight attempt instead of burning its
            // remaining retries.
            if let Some(ctx) = &ctx {
                if let Err(reason) = ctx.check() {
                    return Err(StoreError::QueryKilled { reason });
                }
            }
            attempts += 1;
            let lane_before = metrics.as_ref().map(|m| m.lane_nanos());
            let mut result = f(&self.inner);
            // A success that blew the per-op deadline is a client-side
            // timeout: the caller gave up waiting, so the response is
            // discarded and the attempt retried. Elapsed time is the
            // *simulated* latency this thread's lane was charged.
            if result.is_ok() {
                if let (Some(deadline), Some(m), Some(before)) =
                    (self.policy.op_deadline, metrics.as_ref(), lane_before)
                {
                    let elapsed = Duration::from_nanos(m.lane_nanos().saturating_sub(before));
                    if elapsed > deadline {
                        result = Err(StoreError::Timeout {
                            op: op.to_string(),
                            deadline,
                        });
                    }
                }
            }
            match result {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() => {
                    if attempts > self.policy.max_retries {
                        return Err(self.give_up(op, attempts, e));
                    }
                    let mut delay = self.next_delay(prev_delay);
                    // Honor the server's throttle hint as a floor.
                    if let StoreError::Throttled { retry_after, .. } = &e {
                        delay = delay.max(*retry_after);
                    }
                    // ... but never let any wait — jitter or server hint —
                    // overshoot the owning query's remaining deadline: cap
                    // the delay so the very next token check fires at most
                    // one backoff past the deadline, not `retry_after` past.
                    if let Some(remaining) = ctx.as_ref().and_then(|c| c.deadline_remaining()) {
                        delay = delay.min(remaining);
                    }
                    prev_delay = delay;
                    if !self.consume_budget(delay) {
                        return Err(self.give_up(op, attempts, e));
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.obs.attempts.inc();
                    self.obs.backoff_nanos.record(delay.as_nanos() as u64);
                    lakehouse_obs::recorder().record(
                        lakehouse_obs::EventKind::RetryAttempt,
                        op,
                        delay.as_nanos() as u64,
                    );
                    if let Some(m) = metrics.as_ref() {
                        m.record_stall(delay);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl<S: ObjectStore> ObjectStore for RetryStore<S> {
    fn put(&self, path: &ObjectPath, data: Bytes) -> Result<()> {
        self.with_retry("put", |s| s.put(path, data.clone()))
    }

    fn get(&self, path: &ObjectPath) -> Result<Bytes> {
        self.with_retry("get", |s| s.get(path))
    }

    fn get_range(&self, path: &ObjectPath, start: usize, end: usize) -> Result<Bytes> {
        self.with_retry("get_range", |s| s.get_range(path, start, end))
    }

    fn head(&self, path: &ObjectPath) -> Result<usize> {
        self.with_retry("head", |s| s.head(path))
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectPath>> {
        self.with_retry("list", |s| s.list(prefix))
    }

    fn delete(&self, path: &ObjectPath) -> Result<()> {
        self.with_retry("delete", |s| s.delete(path))
    }

    // `put_if_matches` is retried only on transient faults; a CAS conflict
    // (`PreconditionFailed`) is a semantic outcome surfaced to the catalog,
    // which re-reads and retries at its own layer. Fault injection sits
    // above the backend, so a failed attempt never half-applied.
    fn put_if_matches(
        &self,
        path: &ObjectPath,
        expected: Option<&[u8]>,
        data: Bytes,
    ) -> Result<()> {
        self.with_retry("put_if_matches", |s| {
            s.put_if_matches(path, expected, data.clone())
        })
    }

    fn store_metrics(&self) -> Option<Arc<StoreMetrics>> {
        self.inner.store_metrics()
    }

    fn invalidate_corrupt(&self, path: &ObjectPath) {
        // Pass through without retry: invalidation is local bookkeeping.
        self.inner.invalidate_corrupt(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosConfig, ChaosStore, FaultKind, FlakyStore};
    use crate::latency::{LatencyModel, SimulatedStore};
    use crate::memory::InMemoryStore;

    fn p(s: &str) -> ObjectPath {
        ObjectPath::new(s).unwrap()
    }

    #[test]
    fn backoff_is_bounded_and_seeded() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(100);
        let seq = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(base, cap, seed);
            (0..16).map(|_| b.next_delay()).collect()
        };
        let a = seq(1);
        assert_eq!(a, seq(1), "same seed must give the same delays");
        assert_ne!(a, seq(2));
        for d in &a {
            assert!(*d >= base && *d <= cap, "delay {d:?} outside [base, cap]");
        }
        // The sequence should actually escalate toward the cap.
        assert!(a.iter().any(|d| *d > base * 2), "no escalation in {a:?}");
    }

    #[test]
    fn breaker_trips_on_low_win_rate_and_recovers() {
        let b = CircuitBreaker::new(4, 0.5, 3);
        assert!(!b.is_open());
        // Window fills with failures -> trips.
        for _ in 0..4 {
            assert!(b.allow());
            b.record(false);
        }
        assert!(b.is_open());
        assert_eq!(b.trips(), 1);
        // Cooldown swallows the next 2 checks, the 3rd re-closes (half-open).
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow(), "cooldown spent: probe allowed");
        assert!(!b.is_open());
        // Fresh window: a good run keeps it closed.
        for _ in 0..8 {
            assert!(b.allow());
            b.record(true);
        }
        assert!(!b.is_open());
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn breaker_stays_closed_above_threshold() {
        let b = CircuitBreaker::new(10, 0.3, 5);
        // 40% success rate over a full sliding window: stays closed.
        for i in 0..50 {
            assert!(b.allow());
            b.record(i % 5 < 2);
        }
        assert!(!b.is_open());
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn transient_faults_are_absorbed() {
        // Every other op fails; one retry per op is enough to mask it.
        let flaky = FlakyStore::new(InMemoryStore::new(), FaultKind::All, 2);
        let s = RetryStore::new(flaky, RetryPolicy::default());
        for i in 0..10 {
            let path = p(&format!("k{i}"));
            s.put(&path, Bytes::from_static(b"v")).expect("retried put");
            assert_eq!(s.get(&path).expect("retried get"), Bytes::from_static(b"v"));
        }
        assert!(s.retries() > 0);
        assert_eq!(s.giveups(), 0);
    }

    #[test]
    fn exhaustion_is_typed_with_attempt_count() {
        let flaky = FlakyStore::new(InMemoryStore::new(), FaultKind::All, 1);
        let s = RetryStore::new(flaky, RetryPolicy::default().with_max_retries(3));
        match s.get(&p("a")) {
            Err(StoreError::RetriesExhausted { op, attempts, last }) => {
                assert_eq!(op, "get");
                assert_eq!(attempts, 4, "3 retries = 4 attempts");
                assert!(last.is_retryable(), "last error is the transient one");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(s.giveups(), 1);
        // Exhaustion itself must not be classified retryable.
        assert!(!s.get(&p("a")).unwrap_err().is_retryable());
    }

    #[test]
    fn permanent_errors_pass_through_unretried() {
        let s = RetryStore::new(InMemoryStore::new(), RetryPolicy::default());
        assert!(matches!(s.get(&p("missing")), Err(StoreError::NotFound(_))));
        assert_eq!(s.retries(), 0);
    }

    #[test]
    fn budget_stops_retrying_before_max_retries() {
        let flaky = FlakyStore::new(InMemoryStore::new(), FaultKind::All, 1);
        let policy = RetryPolicy::default()
            .with_max_retries(1000)
            .with_budget(Duration::from_millis(60));
        let s = RetryStore::new(flaky, policy);
        let err = s.get(&p("a")).unwrap_err();
        match err {
            StoreError::RetriesExhausted { attempts, .. } => {
                assert!(
                    attempts < 10,
                    "60 ms budget at 25 ms base backoff must stop early, not after {attempts}"
                );
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert!(s.budget_remaining() < Duration::from_millis(60));
    }

    #[test]
    fn backoff_is_charged_as_simulated_stall() {
        let sim = SimulatedStore::new(InMemoryStore::new(), LatencyModel::zero());
        let flaky = FlakyStore::new(sim, FaultKind::All, 2);
        let s = RetryStore::new(flaky, RetryPolicy::default());
        s.put(&p("a"), Bytes::from_static(b"v")).unwrap();
        s.get(&p("a")).unwrap();
        let m = s
            .store_metrics()
            .expect("sim metrics visible through stack");
        assert!(
            m.stall_time() >= Duration::from_millis(25),
            "backoff must be charged to simulated time, got {:?}",
            m.stall_time()
        );
    }

    #[test]
    fn throttle_retry_after_is_a_floor() {
        let mut cfg = ChaosConfig::new(9).with_throttle_p(1.0);
        cfg.throttle_burst = 1;
        cfg.throttle_retry_after = Duration::from_millis(500);
        let sim = SimulatedStore::new(InMemoryStore::new(), LatencyModel::zero());
        let chaos = ChaosStore::new(sim, cfg);
        chaos
            .inner()
            .put(&p("a"), Bytes::from_static(b"v"))
            .unwrap();
        let s = RetryStore::new(chaos, RetryPolicy::default().with_max_retries(1));
        // First attempt throttled, one retry allowed; whether the retry
        // lands or throttles again, the wait must be >= retry_after.
        let _ = s.get(&p("a"));
        let m = s.store_metrics().unwrap();
        assert!(
            m.stall_time() >= Duration::from_millis(500),
            "throttle hint must floor the backoff, got {:?}",
            m.stall_time()
        );
    }

    #[test]
    fn query_deadline_caps_throttle_retry_after() {
        // The server suggests a 10 s wait but the query has ~50 ms of
        // deadline left: the backoff must be capped at the remaining
        // deadline and the next token check must kill the query — it can
        // never sit out the full server hint.
        let mut cfg = ChaosConfig::new(7).with_throttle_p(1.0);
        cfg.throttle_retry_after = Duration::from_secs(10);
        let sim = SimulatedStore::new(InMemoryStore::new(), LatencyModel::zero());
        let chaos = ChaosStore::new(sim, cfg);
        chaos
            .inner()
            .put(&p("a"), Bytes::from_static(b"v"))
            .unwrap();
        let s = RetryStore::new(chaos, RetryPolicy::default().with_max_retries(1000));
        let ctx = lakehouse_obs::QueryCtx::new("t", "q");
        ctx.arm_deadline(Duration::from_millis(50));
        let err = {
            let _g = ctx.enter();
            s.get(&p("a")).unwrap_err()
        };
        match err {
            StoreError::QueryKilled { reason } => {
                assert_eq!(reason, lakehouse_obs::KillReason::Deadline);
            }
            other => panic!("expected QueryKilled, got {other:?}"),
        }
        // The only stall charged is the capped one: bounded by the
        // deadline, nowhere near the 10 s hint.
        let m = s.store_metrics().unwrap();
        assert!(
            m.stall_time() <= Duration::from_millis(50),
            "capped backoff must not overshoot the deadline, got {:?}",
            m.stall_time()
        );
    }

    #[test]
    fn killed_ctx_short_circuits_without_an_attempt() {
        let s = RetryStore::new(InMemoryStore::new(), RetryPolicy::default());
        let ctx = lakehouse_obs::QueryCtx::new("t", "q");
        ctx.kill(lakehouse_obs::KillReason::Canceled);
        let _g = ctx.enter();
        // The object doesn't exist, so a dispatched attempt would surface
        // NotFound; QueryKilled proves the token pre-empted the attempt.
        match s.get(&p("missing")) {
            Err(StoreError::QueryKilled { reason }) => {
                assert_eq!(reason, lakehouse_obs::KillReason::Canceled);
            }
            other => panic!("expected QueryKilled, got {other:?}"),
        }
        assert_eq!(s.retries(), 0);
        assert!(
            !StoreError::QueryKilled {
                reason: lakehouse_obs::KillReason::Canceled
            }
            .is_retryable(),
            "a killed query is dead, never retryable"
        );
    }

    #[test]
    fn op_deadline_times_out_slow_ops() {
        // Deterministic ~4 ms first-byte latency vs a 1 ms deadline: every
        // attempt "succeeds" too late and is discarded as a timeout.
        let model = LatencyModel {
            sigma: 0.0,
            ..LatencyModel::s3_like()
        };
        let sim = SimulatedStore::new(InMemoryStore::new(), model);
        sim.inner().put(&p("a"), Bytes::from_static(b"v")).unwrap();
        let policy = RetryPolicy::default()
            .with_max_retries(2)
            .with_op_deadline(Duration::from_millis(1));
        let s = RetryStore::new(sim, policy);
        match s.get(&p("a")) {
            Err(StoreError::RetriesExhausted { last, .. }) => {
                assert!(matches!(*last, StoreError::Timeout { .. }), "got {last:?}");
            }
            other => panic!("expected timeout exhaustion, got {other:?}"),
        }
    }
}
