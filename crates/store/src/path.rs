//! Validated object paths (`bucket-style/key/parts.ext`).

use crate::error::{Result, StoreError};
use std::fmt;

/// A normalized object path: non-empty, `/`-separated segments, no leading
/// slash, no `.`/`..` segments, no backslashes or NUL bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectPath(String);

impl ObjectPath {
    /// Parse and validate a path string.
    pub fn new(path: impl Into<String>) -> Result<Self> {
        let path = path.into();
        if path.is_empty() || path.len() > 1024 {
            return Err(StoreError::InvalidPath(path));
        }
        if path.starts_with('/') || path.ends_with('/') {
            return Err(StoreError::InvalidPath(path));
        }
        if path.contains('\\') || path.contains('\0') {
            return Err(StoreError::InvalidPath(path));
        }
        for seg in path.split('/') {
            if seg.is_empty() || seg == "." || seg == ".." {
                return Err(StoreError::InvalidPath(path));
            }
        }
        Ok(ObjectPath(path))
    }

    /// The raw path string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Append a child segment.
    pub fn child(&self, segment: &str) -> Result<ObjectPath> {
        ObjectPath::new(format!("{}/{}", self.0, segment))
    }

    /// The final path segment (file name).
    pub fn file_name(&self) -> &str {
        self.0.rsplit('/').next().unwrap_or(&self.0)
    }

    /// True if this path starts with `prefix` at a segment boundary (or
    /// `prefix` is empty).
    pub fn has_prefix(&self, prefix: &str) -> bool {
        if prefix.is_empty() {
            return true;
        }
        let prefix = prefix.trim_end_matches('/');
        self.0 == prefix || self.0.starts_with(&format!("{prefix}/"))
    }
}

impl fmt::Display for ObjectPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for ObjectPath {
    type Err = StoreError;
    fn from_str(s: &str) -> Result<Self> {
        ObjectPath::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_normal_paths() {
        assert!(ObjectPath::new("bucket/a/b/file.parquet").is_ok());
        assert!(ObjectPath::new("single").is_ok());
    }

    #[test]
    fn rejects_bad_paths() {
        for bad in ["", "/abs", "trail/", "a//b", "a/./b", "a/../b", "a\\b"] {
            assert!(ObjectPath::new(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn child_appends() {
        let p = ObjectPath::new("warehouse/db").unwrap();
        assert_eq!(p.child("t1").unwrap().as_str(), "warehouse/db/t1");
        assert!(p.child("..").is_err());
    }

    #[test]
    fn file_name_is_last_segment() {
        let p = ObjectPath::new("a/b/c.json").unwrap();
        assert_eq!(p.file_name(), "c.json");
    }

    #[test]
    fn prefix_respects_segment_boundaries() {
        let p = ObjectPath::new("warehouse/table1/data.bin").unwrap();
        assert!(p.has_prefix("warehouse"));
        assert!(p.has_prefix("warehouse/table1"));
        assert!(p.has_prefix("warehouse/table1/"));
        assert!(!p.has_prefix("warehouse/table")); // not a full segment
        assert!(p.has_prefix(""));
    }
}
