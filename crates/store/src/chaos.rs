//! Fault injection: store wrappers that fail, throttle, stall, or corrupt
//! operations on a reproducible schedule.
//!
//! Two injectors share one gate ([`FaultingStore`] + [`FaultDecider`]):
//!
//! * [`FlakyStore`] — the deterministic periodic injector (every N-th
//!   matching op fails). Good for pinpoint tests: "the 3rd put fails".
//! * [`ChaosStore`] — a seeded probabilistic injector modeling how object
//!   stores actually misbehave: independent transient faults, throttle
//!   *bursts* (one 503 SlowDown is usually followed by more), extra
//!   latency stalls, and (opt-in) torn reads that return truncated bodies.
//!   Same seed + same operation sequence → same fault schedule, so every
//!   chaos test is replayable.
//!
//! Injected faults use the typed taxonomy in [`StoreError`]
//! (`Transient` / `Throttled` / torn bodies), so retry layers classify
//! them exactly like real transient failures.

use crate::error::{Result, StoreError};
use crate::path::ObjectPath;
use crate::{ObjectStore, StoreMetrics};
use bytes::Bytes;
use lakehouse_obs::Counter;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The operation classes a fault decider distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Body reads: `get`, `get_range`. The only class torn reads apply to.
    Read,
    /// Metadata reads: `head`, `list` (and the default `exists` via `head`).
    MetaRead,
    /// Writes: `put`, `put_if_matches`, `delete`.
    Mutation,
}

/// What to do to one operation, decided before it reaches the inner store.
#[derive(Debug)]
pub enum FaultVerdict {
    /// Pass through untouched.
    Proceed,
    /// Fail with this error; the inner store is not called.
    Fail(StoreError),
    /// Fail with `StoreError::Throttled { retry_after }`.
    Throttle(Duration),
    /// Proceed, but charge this much extra simulated latency first.
    Stall(Duration),
    /// Proceed, but truncate the returned body (body reads only).
    Torn,
}

/// A pluggable fault schedule. Implementations must be deterministic for a
/// given construction + operation sequence.
pub trait FaultDecider: Send + Sync {
    fn decide(&self, class: OpClass, op: &'static str) -> FaultVerdict;
}

/// Which operations a [`FlakyStore`] injects failures into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// All reads: `get`, `get_range`, `head`, `list`.
    Gets,
    /// All writes: `put`, `put_if_matches`, `delete`.
    Puts,
    All,
}

/// Deterministic periodic schedule: every `period`-th matching operation
/// fails with a transient error (period = 3 → ops 3, 6, 9... fail).
#[derive(Debug)]
pub struct PeriodicFaults {
    kind: FaultKind,
    period: u64,
    counter: AtomicU64,
}

impl PeriodicFaults {
    pub fn new(kind: FaultKind, period: u64) -> PeriodicFaults {
        assert!(period > 0, "period must be >= 1");
        PeriodicFaults {
            kind,
            period,
            counter: AtomicU64::new(0),
        }
    }
}

impl FaultDecider for PeriodicFaults {
    fn decide(&self, class: OpClass, op: &'static str) -> FaultVerdict {
        let applies = match self.kind {
            FaultKind::Gets => matches!(class, OpClass::Read | OpClass::MetaRead),
            FaultKind::Puts => class == OpClass::Mutation,
            FaultKind::All => true,
        };
        if !applies {
            return FaultVerdict::Proceed;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.period) {
            FaultVerdict::Fail(StoreError::Transient(format!(
                "injected fault on {op} (op {n})"
            )))
        } else {
            FaultVerdict::Proceed
        }
    }
}

/// Knobs for [`ChaosStore`]. All probabilities are per-operation and
/// default to 0 — a default config injects nothing.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// RNG seed; same seed + same op sequence → same fault schedule.
    pub seed: u64,
    /// Probability an op fails with `StoreError::Transient`.
    pub fault_p: f64,
    /// Probability an op starts a throttle burst (it and the next
    /// `throttle_burst - 1` ops fail with `Throttled`).
    pub throttle_p: f64,
    /// Ops per throttle burst (>= 1).
    pub throttle_burst: u32,
    /// The `retry_after` hint attached to `Throttled` errors.
    pub throttle_retry_after: Duration,
    /// Probability an op is stalled by `stall` of extra simulated latency
    /// (charged to the inner store's metrics; the op then proceeds).
    pub stall_p: f64,
    /// Extra latency per stall.
    pub stall: Duration,
    /// Probability a body read returns a truncated payload instead of the
    /// full object (off by default; most tests want typed errors, not
    /// corruption).
    pub torn_read_p: f64,
}

impl ChaosConfig {
    /// No faults; durations set to realistic S3-ish values so enabling a
    /// probability knob alone behaves sensibly.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            fault_p: 0.0,
            throttle_p: 0.0,
            throttle_burst: 3,
            throttle_retry_after: Duration::from_millis(50),
            stall_p: 0.0,
            stall: Duration::from_millis(200),
            torn_read_p: 0.0,
        }
    }

    pub fn with_fault_p(mut self, p: f64) -> ChaosConfig {
        self.fault_p = p;
        self
    }

    pub fn with_throttle_p(mut self, p: f64) -> ChaosConfig {
        self.throttle_p = p;
        self
    }

    pub fn with_stall_p(mut self, p: f64) -> ChaosConfig {
        self.stall_p = p;
        self
    }

    pub fn with_torn_read_p(mut self, p: f64) -> ChaosConfig {
        self.torn_read_p = p;
        self
    }
}

#[derive(Debug)]
struct ChaosState {
    rng: StdRng,
    burst_left: u32,
}

/// Seeded probabilistic schedule; see [`ChaosConfig`] for the knobs.
///
/// Each decision consumes exactly one RNG draw, so the schedule is a pure
/// function of (seed, op sequence) regardless of which knobs are enabled.
/// Determinism therefore requires a deterministic op *order* — run chaos
/// tests with serial scans (`scan_parallelism = 1`).
#[derive(Debug)]
pub struct ChaosDecider {
    cfg: ChaosConfig,
    state: Mutex<ChaosState>,
}

impl ChaosDecider {
    pub fn new(cfg: ChaosConfig) -> ChaosDecider {
        assert!(cfg.throttle_burst >= 1, "throttle_burst must be >= 1");
        let rng = StdRng::seed_from_u64(cfg.seed);
        ChaosDecider {
            cfg,
            state: Mutex::new(ChaosState { rng, burst_left: 0 }),
        }
    }
}

impl FaultDecider for ChaosDecider {
    fn decide(&self, class: OpClass, op: &'static str) -> FaultVerdict {
        let mut state = self.state.lock();
        if state.burst_left > 0 {
            state.burst_left -= 1;
            return FaultVerdict::Throttle(self.cfg.throttle_retry_after);
        }
        // One draw per op, cut into cumulative bands, keeps the schedule
        // stable as individual knobs are turned on and off.
        let u = state.rng.gen_range(0.0..1.0);
        let mut edge = self.cfg.fault_p;
        if u < edge {
            return FaultVerdict::Fail(StoreError::Transient(format!(
                "injected chaos fault on {op}"
            )));
        }
        edge += self.cfg.throttle_p;
        if u < edge {
            state.burst_left = self.cfg.throttle_burst - 1;
            return FaultVerdict::Throttle(self.cfg.throttle_retry_after);
        }
        edge += self.cfg.stall_p;
        if u < edge {
            return FaultVerdict::Stall(self.cfg.stall);
        }
        edge += self.cfg.torn_read_p;
        if u < edge && class == OpClass::Read {
            return FaultVerdict::Torn;
        }
        FaultVerdict::Proceed
    }
}

/// Process-wide counters shared by every injector instance.
#[derive(Debug)]
struct InjectionCounters {
    faults: Arc<Counter>,
    throttles: Arc<Counter>,
    stalls: Arc<Counter>,
    torn_reads: Arc<Counter>,
}

impl InjectionCounters {
    fn register() -> InjectionCounters {
        let reg = lakehouse_obs::global();
        InjectionCounters {
            faults: reg.counter("chaos.faults"),
            throttles: reg.counter("chaos.throttles"),
            stalls: reg.counter("chaos.stalls"),
            torn_reads: reg.counter("chaos.torn_reads"),
        }
    }
}

/// The shared injection gate: asks its [`FaultDecider`] about every
/// operation (all eight `ObjectStore` ops — nothing passes un-faulted) and
/// applies the verdict before delegating to the inner store.
pub struct FaultingStore<S, D> {
    inner: S,
    decider: D,
    injected: AtomicU64,
    stalls: AtomicU64,
    obs: InjectionCounters,
}

/// Deterministic periodic fault injector (see [`PeriodicFaults`]).
pub type FlakyStore<S> = FaultingStore<S, PeriodicFaults>;

/// Seeded probabilistic fault injector (see [`ChaosDecider`]).
pub type ChaosStore<S> = FaultingStore<S, ChaosDecider>;

impl<S: ObjectStore> FlakyStore<S> {
    pub fn new(inner: S, kind: FaultKind, period: u64) -> FlakyStore<S> {
        FaultingStore::with_decider(inner, PeriodicFaults::new(kind, period))
    }
}

impl<S: ObjectStore> ChaosStore<S> {
    pub fn new(inner: S, cfg: ChaosConfig) -> ChaosStore<S> {
        FaultingStore::with_decider(inner, ChaosDecider::new(cfg))
    }
}

impl<S: ObjectStore, D: FaultDecider> FaultingStore<S, D> {
    pub fn with_decider(inner: S, decider: D) -> FaultingStore<S, D> {
        FaultingStore {
            inner,
            decider,
            injected: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            obs: InjectionCounters::register(),
        }
    }

    /// Number of operations failed or corrupted so far (faults + throttles
    /// + torn reads; stalls are counted separately — the op still succeeds).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Number of operations stalled with extra latency so far.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Run the decider for one op. `Ok(true)` means "proceed but tear the
    /// body" (only ever returned for [`OpClass::Read`]).
    fn gate(&self, class: OpClass, op: &'static str) -> Result<bool> {
        match self.decider.decide(class, op) {
            FaultVerdict::Proceed => Ok(false),
            FaultVerdict::Fail(e) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                self.obs.faults.inc();
                Err(e)
            }
            FaultVerdict::Throttle(retry_after) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                self.obs.throttles.inc();
                Err(StoreError::Throttled {
                    op: op.to_string(),
                    retry_after,
                })
            }
            FaultVerdict::Stall(extra) => {
                self.stalls.fetch_add(1, Ordering::Relaxed);
                self.obs.stalls.inc();
                // Simulated-clock latency only, like `SimulatedStore` in its
                // default `SleepMode::None`: the stall shows up in metrics
                // and lane accounting, not as a wall-clock sleep.
                if let Some(m) = self.inner.store_metrics() {
                    m.record_stall(extra);
                }
                Ok(false)
            }
            FaultVerdict::Torn => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                self.obs.torn_reads.inc();
                Ok(true)
            }
        }
    }
}

impl<S: ObjectStore, D: FaultDecider> ObjectStore for FaultingStore<S, D> {
    fn put(&self, path: &ObjectPath, data: Bytes) -> Result<()> {
        self.gate(OpClass::Mutation, "put")?;
        self.inner.put(path, data)
    }

    fn get(&self, path: &ObjectPath) -> Result<Bytes> {
        let torn = self.gate(OpClass::Read, "get")?;
        let data = self.inner.get(path)?;
        if torn {
            let keep = data.len() / 2;
            return Ok(data.slice(0..keep));
        }
        Ok(data)
    }

    fn get_range(&self, path: &ObjectPath, start: usize, end: usize) -> Result<Bytes> {
        let torn = self.gate(OpClass::Read, "get_range")?;
        let data = self.inner.get_range(path, start, end)?;
        if torn {
            let keep = data.len() / 2;
            return Ok(data.slice(0..keep));
        }
        Ok(data)
    }

    fn head(&self, path: &ObjectPath) -> Result<usize> {
        self.gate(OpClass::MetaRead, "head")?;
        self.inner.head(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectPath>> {
        self.gate(OpClass::MetaRead, "list")?;
        self.inner.list(prefix)
    }

    fn delete(&self, path: &ObjectPath) -> Result<()> {
        self.gate(OpClass::Mutation, "delete")?;
        self.inner.delete(path)
    }

    fn put_if_matches(
        &self,
        path: &ObjectPath,
        expected: Option<&[u8]>,
        data: Bytes,
    ) -> Result<()> {
        self.gate(OpClass::Mutation, "put_if_matches")?;
        self.inner.put_if_matches(path, expected, data)
    }

    fn store_metrics(&self) -> Option<Arc<StoreMetrics>> {
        self.inner.store_metrics()
    }

    fn invalidate_corrupt(&self, path: &ObjectPath) {
        // Never faulted: corruption reporting must always reach the cache.
        self.inner.invalidate_corrupt(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryStore;

    fn p(s: &str) -> ObjectPath {
        ObjectPath::new(s).unwrap()
    }

    #[test]
    fn every_nth_put_fails() {
        let s = FlakyStore::new(InMemoryStore::new(), FaultKind::Puts, 3);
        let mut failures = 0;
        for i in 0..9 {
            if s.put(&p(&format!("k{i}")), Bytes::new()).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 3);
        assert_eq!(s.injected(), 3);
        // Gets unaffected.
        s.put(&p("ok"), Bytes::from_static(b"v")).unwrap();
        assert!(s.get(&p("ok")).is_ok());
    }

    #[test]
    fn gets_only_mode() {
        let s = FlakyStore::new(InMemoryStore::new(), FaultKind::Gets, 2);
        s.put(&p("a"), Bytes::from_static(b"v")).unwrap();
        let mut failures = 0;
        for _ in 0..4 {
            if s.get(&p("a")).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 2);
    }

    #[test]
    fn period_one_fails_everything() {
        let s = FlakyStore::new(InMemoryStore::new(), FaultKind::All, 1);
        assert!(s.put(&p("a"), Bytes::new()).is_err());
        assert!(s.get(&p("a")).is_err());
    }

    #[test]
    fn head_and_list_are_faulted_too() {
        let s = FlakyStore::new(InMemoryStore::new(), FaultKind::Gets, 1);
        s.put(&p("a"), Bytes::from_static(b"v")).unwrap();
        assert!(s.head(&p("a")).is_err());
        assert!(s.list("").is_err());
        // Faulted head makes the default `exists` answer false.
        assert!(!s.exists(&p("a")));
        assert_eq!(s.injected(), 3);
    }

    #[test]
    fn injected_faults_are_typed_transient() {
        let s = FlakyStore::new(InMemoryStore::new(), FaultKind::All, 1);
        let err = s.get(&p("a")).unwrap_err();
        assert!(err.is_retryable(), "injected faults must be retryable");
        assert!(err.to_string().contains("injected fault"));
    }

    #[test]
    fn chaos_same_seed_same_schedule() {
        let run = |seed: u64| -> Vec<bool> {
            let cfg = ChaosConfig::new(seed).with_fault_p(0.3);
            let s = ChaosStore::new(InMemoryStore::new(), cfg);
            s.inner().put(&p("a"), Bytes::from_static(b"v")).unwrap();
            (0..64).map(|_| s.get(&p("a")).is_err()).collect()
        };
        assert_eq!(run(7), run(7), "same seed must replay the same faults");
        assert_ne!(run(7), run(8), "different seeds should diverge");
        let faults = run(7).iter().filter(|f| **f).count();
        assert!(
            (8..=32).contains(&faults),
            "p=0.3 over 64 ops should fault roughly a third, got {faults}"
        );
    }

    #[test]
    fn chaos_throttle_bursts_and_retry_after() {
        let mut cfg = ChaosConfig::new(11).with_throttle_p(0.2);
        cfg.throttle_burst = 3;
        let s = ChaosStore::new(InMemoryStore::new(), cfg);
        s.inner().put(&p("a"), Bytes::from_static(b"v")).unwrap();
        let mut throttles = 0;
        let mut run_len = 0;
        let mut max_run = 0;
        for _ in 0..200 {
            match s.get(&p("a")) {
                Err(StoreError::Throttled { retry_after, .. }) => {
                    assert_eq!(retry_after, Duration::from_millis(50));
                    throttles += 1;
                    run_len += 1;
                    max_run = max_run.max(run_len);
                }
                Ok(_) => run_len = 0,
                Err(e) => panic!("unexpected error kind: {e}"),
            }
        }
        assert!(throttles > 0, "throttle_p=0.2 over 200 ops must throttle");
        assert!(
            max_run >= 3,
            "throttles should arrive in bursts of >= 3, max run {max_run}"
        );
    }

    #[test]
    fn chaos_stall_charges_latency_but_succeeds() {
        use crate::latency::{LatencyModel, SimulatedStore};
        let cfg = ChaosConfig::new(3).with_stall_p(1.0);
        let sim = SimulatedStore::new(InMemoryStore::new(), LatencyModel::zero());
        let s = ChaosStore::new(sim, cfg);
        s.inner()
            .put(&p("a"), Bytes::from_static(b"v"))
            .expect("un-gated put");
        let before = s.store_metrics().unwrap().stall_time();
        assert!(s.get(&p("a")).is_ok(), "stalled ops still succeed");
        let after = s.store_metrics().unwrap().stall_time();
        assert_eq!(after - before, Duration::from_millis(200));
        assert_eq!(s.stalls(), 1);
        assert_eq!(s.injected(), 0, "stalls are not failures");
    }

    #[test]
    fn chaos_torn_read_truncates_body() {
        let cfg = ChaosConfig::new(5).with_torn_read_p(1.0);
        let s = ChaosStore::new(InMemoryStore::new(), cfg);
        s.inner()
            .put(&p("a"), Bytes::from_static(b"0123456789"))
            .unwrap();
        let body = s.get(&p("a")).expect("torn read still returns Ok");
        assert_eq!(body.len(), 5, "torn read returns half the body");
        // Torn reads never apply to metadata ops.
        assert_eq!(s.head(&p("a")).unwrap(), 10);
    }

    #[test]
    fn chaos_zero_config_is_transparent() {
        let s = ChaosStore::new(InMemoryStore::new(), ChaosConfig::new(42));
        for i in 0..100 {
            let path = p(&format!("k{i}"));
            s.put(&path, Bytes::from_static(b"v")).unwrap();
            assert_eq!(s.get(&path).unwrap(), Bytes::from_static(b"v"));
        }
        assert_eq!(s.injected(), 0);
        assert_eq!(s.stalls(), 0);
    }
}
