//! In-memory object store: the default backend for tests and the simulated
//! lakehouse.

use crate::error::{Result, StoreError};
use crate::path::ObjectPath;
use crate::ObjectStore;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A thread-safe in-memory object store backed by a sorted map, so `list`
/// returns lexicographic order for free (matching S3 ListObjectsV2).
#[derive(Debug, Default)]
pub struct InMemoryStore {
    objects: RwLock<BTreeMap<ObjectPath, Bytes>>,
}

impl InMemoryStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> usize {
        self.objects.read().values().map(Bytes::len).sum()
    }
}

impl ObjectStore for InMemoryStore {
    fn put(&self, path: &ObjectPath, data: Bytes) -> Result<()> {
        self.objects.write().insert(path.clone(), data);
        Ok(())
    }

    fn get(&self, path: &ObjectPath) -> Result<Bytes> {
        self.objects
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(path.to_string()))
    }

    fn head(&self, path: &ObjectPath) -> Result<usize> {
        self.objects
            .read()
            .get(path)
            .map(Bytes::len)
            .ok_or_else(|| StoreError::NotFound(path.to_string()))
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectPath>> {
        Ok(self
            .objects
            .read()
            .keys()
            .filter(|p| p.has_prefix(prefix))
            .cloned()
            .collect())
    }

    fn delete(&self, path: &ObjectPath) -> Result<()> {
        self.objects
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| StoreError::NotFound(path.to_string()))
    }

    fn put_if_matches(
        &self,
        path: &ObjectPath,
        expected: Option<&[u8]>,
        data: Bytes,
    ) -> Result<()> {
        let mut objects = self.objects.write();
        let current = objects.get(path);
        let matches = match (current, expected) {
            (None, None) => true,
            (Some(cur), Some(exp)) => cur.as_ref() == exp,
            _ => false,
        };
        if !matches {
            return Err(StoreError::PreconditionFailed(path.to_string()));
        }
        objects.insert(path.clone(), data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> ObjectPath {
        ObjectPath::new(s).unwrap()
    }

    #[test]
    fn put_get_round_trip() {
        let s = InMemoryStore::new();
        s.put(&p("a/b"), Bytes::from_static(b"hello")).unwrap();
        assert_eq!(s.get(&p("a/b")).unwrap().as_ref(), b"hello");
        assert_eq!(s.head(&p("a/b")).unwrap(), 5);
        assert!(s.exists(&p("a/b")));
        assert!(!s.exists(&p("a/c")));
    }

    #[test]
    fn get_missing_is_not_found() {
        let s = InMemoryStore::new();
        assert!(matches!(s.get(&p("x")), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn get_range_slices() {
        let s = InMemoryStore::new();
        s.put(&p("a"), Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(s.get_range(&p("a"), 2, 5).unwrap().as_ref(), b"234");
        assert!(s.get_range(&p("a"), 5, 20).is_err());
        assert!(s.get_range(&p("a"), 7, 3).is_err());
    }

    #[test]
    fn list_respects_prefix_and_order() {
        let s = InMemoryStore::new();
        for k in ["t1/b", "t1/a", "t2/x", "t10/y"] {
            s.put(&p(k), Bytes::new()).unwrap();
        }
        let listed = s.list("t1").unwrap();
        assert_eq!(
            listed.iter().map(ObjectPath::as_str).collect::<Vec<_>>(),
            vec!["t1/a", "t1/b"]
        );
        assert_eq!(s.list("").unwrap().len(), 4);
    }

    #[test]
    fn delete_removes() {
        let s = InMemoryStore::new();
        s.put(&p("a"), Bytes::new()).unwrap();
        s.delete(&p("a")).unwrap();
        assert!(!s.exists(&p("a")));
        assert!(s.delete(&p("a")).is_err());
    }

    #[test]
    fn cas_create_only_when_absent() {
        let s = InMemoryStore::new();
        s.put_if_matches(&p("ref"), None, Bytes::from_static(b"v1"))
            .unwrap();
        // second create fails
        assert!(matches!(
            s.put_if_matches(&p("ref"), None, Bytes::from_static(b"v2")),
            Err(StoreError::PreconditionFailed(_))
        ));
    }

    #[test]
    fn cas_swap_on_match() {
        let s = InMemoryStore::new();
        s.put(&p("ref"), Bytes::from_static(b"v1")).unwrap();
        s.put_if_matches(&p("ref"), Some(b"v1"), Bytes::from_static(b"v2"))
            .unwrap();
        assert_eq!(s.get(&p("ref")).unwrap().as_ref(), b"v2");
        // stale expected fails
        assert!(s
            .put_if_matches(&p("ref"), Some(b"v1"), Bytes::from_static(b"v3"))
            .is_err());
    }

    #[test]
    fn stats() {
        let s = InMemoryStore::new();
        assert!(s.is_empty());
        s.put(&p("a"), Bytes::from_static(b"xyz")).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_bytes(), 3);
    }
}
