//! Error type for object-store operations, with a transient/permanent
//! taxonomy so retry layers can classify failures uniformly.

use std::fmt;
use std::time::Duration;

/// Errors from object-store operations.
#[derive(Debug)]
pub enum StoreError {
    /// The object does not exist.
    NotFound(String),
    /// CAS precondition failed (object changed underneath the caller).
    PreconditionFailed(String),
    /// A byte-range request was out of bounds.
    InvalidRange {
        start: usize,
        end: usize,
        len: usize,
    },
    /// An object path failed validation.
    InvalidPath(String),
    /// Underlying I/O failure (local-FS backend).
    Io(std::io::Error),
    /// A transient fault (dropped connection, 5xx): safe to retry as-is.
    Transient(String),
    /// The service rate-limited the request; retry no sooner than
    /// `retry_after` (S3's 503 SlowDown with a Retry-After hint).
    Throttled { op: String, retry_after: Duration },
    /// The operation exceeded its per-op deadline.
    Timeout { op: String, deadline: Duration },
    /// A retry layer gave up: `attempts` tries (including the first) all
    /// failed; `last` is the final underlying error.
    RetriesExhausted {
        op: String,
        attempts: u32,
        last: Box<StoreError>,
    },
    /// The owning query's cancel token tripped (deadline, budget, or
    /// explicit cancel). Never retryable: the query is dead, not the store.
    /// The Display prefix (`KILLED_PREFIX`) is stable — upper layers that
    /// stringify errors re-type it by matching that prefix.
    QueryKilled { reason: lakehouse_obs::KillReason },
}

/// Stable Display prefix of [`StoreError::QueryKilled`], relied on by
/// layers that carry errors as strings (the SQL executors).
pub const KILLED_PREFIX: &str = "query killed";

/// The canonical message for a killed query, used by every layer so the
/// stringly paths stay detectable: `query killed (reason)`.
pub fn killed_message(reason: lakehouse_obs::KillReason) -> String {
    format!("{KILLED_PREFIX} ({reason})")
}

impl StoreError {
    /// Whether a retry of the same operation could plausibly succeed.
    ///
    /// `NotFound`/`PreconditionFailed`/`InvalidRange`/`InvalidPath` are
    /// semantic outcomes — retrying returns the same answer (CAS races are
    /// retried *above* the store, by the catalog, after re-reading state).
    /// `Io` is kept permanent: the local-FS backend surfaces real,
    /// typically persistent, OS errors through it. `RetriesExhausted`
    /// means a retry layer already gave up; never retry it again.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Self::Transient(_) | Self::Throttled { .. } | Self::Timeout { .. }
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotFound(p) => write!(f, "object not found: {p}"),
            Self::PreconditionFailed(p) => write!(f, "precondition failed for: {p}"),
            Self::InvalidRange { start, end, len } => {
                write!(
                    f,
                    "invalid range [{start}, {end}) for object of {len} bytes"
                )
            }
            Self::InvalidPath(p) => write!(f, "invalid object path: {p}"),
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Transient(msg) => write!(f, "transient store fault: {msg}"),
            Self::Throttled { op, retry_after } => write!(
                f,
                "throttled on {op} (retry after {:.0} ms)",
                retry_after.as_secs_f64() * 1e3
            ),
            Self::Timeout { op, deadline } => write!(
                f,
                "{op} timed out (deadline {:.0} ms)",
                deadline.as_secs_f64() * 1e3
            ),
            Self::RetriesExhausted { op, attempts, last } => {
                write!(
                    f,
                    "retries exhausted on {op} after {attempts} attempts: {last}"
                )
            }
            Self::QueryKilled { reason } => write!(f, "{KILLED_PREFIX} ({reason})"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StoreError>;
