//! Error type for object-store operations.

use std::fmt;

/// Errors from object-store operations.
#[derive(Debug)]
pub enum StoreError {
    /// The object does not exist.
    NotFound(String),
    /// CAS precondition failed (object changed underneath the caller).
    PreconditionFailed(String),
    /// A byte-range request was out of bounds.
    InvalidRange {
        start: usize,
        end: usize,
        len: usize,
    },
    /// An object path failed validation.
    InvalidPath(String),
    /// Underlying I/O failure (local-FS backend).
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotFound(p) => write!(f, "object not found: {p}"),
            Self::PreconditionFailed(p) => write!(f, "precondition failed for: {p}"),
            Self::InvalidRange { start, end, len } => {
                write!(
                    f,
                    "invalid range [{start}, {end}) for object of {len} bytes"
                )
            }
            Self::InvalidPath(p) => write!(f, "invalid object path: {p}"),
            Self::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StoreError>;
