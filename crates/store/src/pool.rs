//! Process-wide verified buffer pool: one byte-budgeted page cache that any
//! number of stores (and therefore any number of `Lakehouse` / `SqlEngine`
//! instances) can share.
//!
//! The paper's economics are blunt: at Reasonable Scale the dominant cost of
//! a query is object-store round trips, and the cheapest round trip is the
//! one never made. A per-engine LRU (the seed `CachedStore`) leaves the
//! biggest win on the table — concurrent functions re-fetch the *same*
//! manifests and footers because each holds its own cache. This module is
//! the shared substrate: a sharded, admission-controlled, checksummed pool.
//!
//! Three mechanisms beyond a plain LRU:
//!
//! - **Segmented LRU**: entries land in a probation segment and are promoted
//!   to a protected segment (80% of the budget) on re-reference. Eviction
//!   prefers probation, so one-touch pages leave first.
//! - **TinyLFU admission**: a 4-row count-min sketch of 4-bit counters
//!   estimates access frequency. When inserting a page would evict a victim
//!   that is *more* frequent than the candidate, the candidate is rejected
//!   instead — a large cold scan cannot flush the hot metadata working set.
//!   Write-through inserts (the caller just produced the bytes) bypass the
//!   contest; read-miss inserts compete.
//! - **CRC32C frames**: every entry records a checksum on insert and is
//!   verified on every hit. A mismatch removes the entry, bumps
//!   `pool.verify_failures`, and reports a miss — cached corruption is
//!   detected, never served. The same counter also records format-layer
//!   verification failures attributed to a cached path via
//!   [`BufferPool::invalidate_corrupt`], which is how a torn read caught by
//!   a file-footer checksum poisons the cache entry that held it.
//!
//! Concurrency: keys are sharded by *path* (all entries of one object live
//! in one shard), so invalidation is single-shard and a range lookup can
//! fall back to its whole-object entry under one lock. Misses are
//! single-flighted per key: one loader fetches while other threads wait on
//! a gate; waiters whose entry vanished (loader failed, or admission
//! rejected it) fall back to at most one direct fetch each.
//!
//! Coherence model (same contract as the seed cache): all writers go
//! through an attached adapter, and a shared pool assumes every attached
//! store views the same object universe (same paths → same bytes). Writes
//! and deletes invalidate by path, which every attached store observes
//! immediately because the pool itself is shared.

use crate::error::Result;
use bytes::Bytes;
use lakehouse_checksum::crc32c;
use lakehouse_obs::{Counter, Gauge};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pool key: a whole object or one exact byte range of an object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PoolKey {
    Whole(String),
    Range(String, usize, usize),
}

impl PoolKey {
    pub fn path(&self) -> &str {
        match self {
            PoolKey::Whole(p) => p,
            PoolKey::Range(p, _, _) => p,
        }
    }

    /// Deterministic 64-bit identity used by the frequency sketch (FNV-1a
    /// over the discriminant, path, and bounds — stable across runs).
    fn sketch_hash(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut feed = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        match self {
            PoolKey::Whole(p) => {
                feed(&[0u8]);
                feed(p.as_bytes());
            }
            PoolKey::Range(p, s, e) => {
                feed(&[1u8]);
                feed(p.as_bytes());
                feed(&(*s as u64).to_le_bytes());
                feed(&(*e as u64).to_le_bytes());
            }
        }
        h
    }
}

/// Splitmix64 finalizer — decorrelates the sketch rows.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const SKETCH_ROWS: usize = 4;
const SKETCH_ROW_SEEDS: [u64; SKETCH_ROWS] = [
    0xA076_1D64_78BD_642F,
    0xE703_7ED1_A0B4_28DB,
    0x8EBC_6AF0_9C88_C6E3,
    0x5899_65CC_7537_4CC3,
];

/// Count-min sketch with 4-bit saturating counters and periodic halving —
/// the TinyLFU frequency estimator. One per shard (paths are shard-stable,
/// so a key's frequency accumulates in a single sketch).
struct FrequencySketch {
    rows: Vec<Vec<u8>>,
    mask: u64,
    ops: u64,
    window: u64,
}

impl FrequencySketch {
    fn new(shard_capacity: usize) -> FrequencySketch {
        let width = (shard_capacity / 512).next_power_of_two().clamp(64, 32_768);
        FrequencySketch {
            rows: vec![vec![0u8; width]; SKETCH_ROWS],
            mask: width as u64 - 1,
            ops: 0,
            window: width as u64 * 16,
        }
    }

    fn index(&self, hash: u64, row: usize) -> usize {
        (mix(hash ^ SKETCH_ROW_SEEDS[row]) & self.mask) as usize
    }

    fn bump(&mut self, hash: u64) {
        for row in 0..SKETCH_ROWS {
            let idx = self.index(hash, row);
            let c = &mut self.rows[row][idx];
            if *c < 15 {
                *c += 1;
            }
        }
        self.ops += 1;
        if self.ops >= self.window {
            // Halve every counter: old traffic decays so the sketch tracks
            // the recent access distribution, not all of history.
            for row in &mut self.rows {
                for c in row.iter_mut() {
                    *c >>= 1;
                }
            }
            self.ops = 0;
        }
    }

    fn freq(&self, hash: u64) -> u8 {
        (0..SKETCH_ROWS)
            .map(|row| self.rows[row][self.index(hash, row)])
            .min()
            .unwrap_or(0)
    }
}

/// Counters and gauges for one pool, published under `pool.*` in the
/// process-wide metrics registry (so `bauplan profile` shows them).
///
/// These are the pool's *own* metrics: when a pool is shared across stores,
/// effectiveness is a property of the pool, not of any one store's
/// `StoreMetrics` (which the private-pool adapter still folds into for
/// seed compatibility).
pub struct PoolMetrics {
    hits: AtomicU64,
    misses: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    evicted_bytes: AtomicU64,
    verify_failures: AtomicU64,
    quota_denied: AtomicU64,
    resident_bytes: AtomicU64,
    resident_entries: AtomicU64,
    g_hits: Arc<Counter>,
    g_misses: Arc<Counter>,
    g_admitted: Arc<Counter>,
    g_rejected: Arc<Counter>,
    g_evicted_bytes: Arc<Counter>,
    g_verify_failures: Arc<Counter>,
    g_quota_denied: Arc<Counter>,
    g_resident_bytes: Arc<Gauge>,
    g_resident_entries: Arc<Gauge>,
}

impl PoolMetrics {
    fn new() -> PoolMetrics {
        let reg = lakehouse_obs::global();
        PoolMetrics {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            verify_failures: AtomicU64::new(0),
            quota_denied: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
            resident_entries: AtomicU64::new(0),
            g_hits: reg.counter("pool.hits"),
            g_misses: reg.counter("pool.misses"),
            g_admitted: reg.counter("pool.admitted"),
            g_rejected: reg.counter("pool.rejected"),
            g_evicted_bytes: reg.counter("pool.evicted_bytes"),
            g_verify_failures: reg.counter("pool.verify_failures"),
            g_quota_denied: reg.counter("pool.quota_denied"),
            g_resident_bytes: reg.gauge("pool.resident_bytes"),
            g_resident_entries: reg.gauge("pool.resident_entries"),
        }
    }

    fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.g_hits.inc();
        lakehouse_obs::ctx::charge(|l| l.add_pool_hit());
    }
    fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.g_misses.inc();
        lakehouse_obs::ctx::charge(|l| l.add_pool_miss());
    }
    fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.g_admitted.inc();
    }
    fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.g_rejected.inc();
    }
    fn record_evicted(&self, bytes: usize) {
        self.evicted_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.g_evicted_bytes.add(bytes as u64);
    }
    fn record_verify_failure(&self) {
        self.verify_failures.fetch_add(1, Ordering::Relaxed);
        self.g_verify_failures.inc();
    }
    fn record_quota_denied(&self) {
        self.quota_denied.fetch_add(1, Ordering::Relaxed);
        self.g_quota_denied.inc();
    }
    fn update_resident(&self, bytes_delta: i64, entries_delta: i64) {
        let b = if bytes_delta >= 0 {
            self.resident_bytes
                .fetch_add(bytes_delta as u64, Ordering::Relaxed)
                .wrapping_add(bytes_delta as u64)
        } else {
            self.resident_bytes
                .fetch_sub((-bytes_delta) as u64, Ordering::Relaxed)
                .wrapping_sub((-bytes_delta) as u64)
        };
        let e = if entries_delta >= 0 {
            self.resident_entries
                .fetch_add(entries_delta as u64, Ordering::Relaxed)
                .wrapping_add(entries_delta as u64)
        } else {
            self.resident_entries
                .fetch_sub((-entries_delta) as u64, Ordering::Relaxed)
                .wrapping_sub((-entries_delta) as u64)
        };
        self.g_resident_bytes.set(b);
        self.g_resident_entries.set(e);
    }

    /// Lookups answered from resident, checksum-verified bytes.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
    /// Lookups that fell through to the backing store.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
    /// Entries accepted into the pool.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }
    /// Insert attempts turned away (lost the TinyLFU frequency contest, or
    /// exceeded the per-entry size cap).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
    /// Bytes removed to make room for admitted entries.
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes.load(Ordering::Relaxed)
    }
    /// Checksum verification failures: in-pool CRC mismatches plus
    /// format-layer corruption reports against cached paths
    /// ([`BufferPool::invalidate_corrupt`]).
    pub fn verify_failures(&self) -> u64 {
        self.verify_failures.load(Ordering::Relaxed)
    }
    /// Promotions to the protected segment denied because the owning
    /// tenant's protected-byte quota was full (tenant isolation).
    pub fn quota_denied(&self) -> u64 {
        self.quota_denied.load(Ordering::Relaxed)
    }
    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes.load(Ordering::Relaxed)
    }
    /// Entries currently resident.
    pub fn resident_entries(&self) -> u64 {
        self.resident_entries.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for PoolMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolMetrics")
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("admitted", &self.admitted())
            .field("rejected", &self.rejected())
            .field("evicted_bytes", &self.evicted_bytes())
            .field("verify_failures", &self.verify_failures())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

struct PoolEntry {
    data: Bytes,
    crc: u32,
    last_used: u64,
    segment: Segment,
    /// Tenant whose query inserted the entry (empty when no [`QueryCtx`]
    /// was entered). Only consulted when a tenant quota is armed.
    tenant: String,
}

/// A single-flight gate: the first misser loads while later missers wait.
/// Built on `std::sync` because the vendored `parking_lot` has no condvar;
/// poisoned locks are recovered (`into_inner`), never unwrapped.
struct Gate {
    done: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            done: std::sync::Mutex::new(false),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Wait for the gate to open, bailing out early when the calling
    /// query's cancel token trips. Returns the kill reason on bail-out;
    /// `None` means the loader finished and the caller should re-check.
    fn wait(&self) -> Option<lakehouse_obs::KillReason> {
        let ctx = lakehouse_obs::QueryCtx::current();
        let mut done = self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*done {
            if let Some(reason) = ctx.as_ref().and_then(|c| c.check().err()) {
                return Some(reason);
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(done, std::time::Duration::from_millis(5))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            done = guard;
        }
        None
    }

    fn open(&self) {
        *self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        self.cv.notify_all();
    }
}

/// Per-tenant byte accounting inside one shard.
#[derive(Debug, Default, Clone, Copy)]
struct TenantBytes {
    resident: usize,
    protected: usize,
}

struct Shard {
    map: HashMap<PoolKey, PoolEntry>,
    bytes: usize,
    protected_bytes: usize,
    /// Monotone recency stamp (larger = more recently used).
    tick: u64,
    sketch: FrequencySketch,
    inflight: HashMap<PoolKey, Arc<Gate>>,
    /// Resident/protected bytes per owning tenant (entries removed at 0).
    tenant_bytes: HashMap<String, TenantBytes>,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            map: HashMap::new(),
            bytes: 0,
            protected_bytes: 0,
            tick: 0,
            sketch: FrequencySketch::new(capacity),
            inflight: HashMap::new(),
            tenant_bytes: HashMap::new(),
        }
    }

    fn tenant_add(&mut self, tenant: &str, resident: isize, protected: isize) {
        let e = self.tenant_bytes.entry(tenant.to_string()).or_default();
        e.resident = (e.resident as isize + resident).max(0) as usize;
        e.protected = (e.protected as isize + protected).max(0) as usize;
        if e.resident == 0 && e.protected == 0 {
            self.tenant_bytes.remove(tenant);
        }
    }

    fn tenant_protected(&self, tenant: &str) -> usize {
        self.tenant_bytes
            .get(tenant)
            .map(|t| t.protected)
            .unwrap_or(0)
    }
}

/// Removes the single-flight gate and wakes waiters even if the loader
/// panicked — waiters then fall back to direct fetches instead of blocking
/// forever.
struct GateCleanup<'a> {
    shard: &'a Mutex<Shard>,
    key: &'a PoolKey,
    gate: &'a Arc<Gate>,
}

impl Drop for GateCleanup<'_> {
    fn drop(&mut self) {
        self.shard.lock().inflight.remove(self.key);
        self.gate.open();
    }
}

/// The shared, admission-controlled, checksum-verified page cache. See the
/// module docs for the design; [`crate::CachedStore`] is the per-store
/// adapter that routes `ObjectStore` traffic through one of these.
pub struct BufferPool {
    shards: Vec<Mutex<Shard>>,
    /// Byte budget per shard (total budget / shard count).
    shard_capacity: usize,
    /// Largest single entry the pool will hold (bigger reads pass through;
    /// prevents one bulk object from evicting all the metadata).
    max_entry: AtomicUsize,
    /// Per-tenant byte quota on the protected segment (0 = tenant isolation
    /// off; eviction and promotion then behave exactly as without quotas).
    tenant_quota: AtomicUsize,
    metrics: Arc<PoolMetrics>,
}

/// Shards for a pool built with [`BufferPool::new`] (shared use). A power
/// of two so the shard index is a mask.
const DEFAULT_SHARDS: usize = 8;

/// Protected segment budget as a fraction of each shard (SLRU): 4/5.
const PROTECTED_NUM: usize = 4;
const PROTECTED_DEN: usize = 5;

impl BufferPool {
    /// A pool meant for sharing across stores: sharded locks, `capacity_bytes`
    /// total budget split evenly across shards. Entries larger than a quarter
    /// of the total budget are never cached (override via
    /// [`set_max_entry_bytes`](Self::set_max_entry_bytes)).
    pub fn new(capacity_bytes: usize) -> BufferPool {
        Self::with_shards(capacity_bytes, DEFAULT_SHARDS)
    }

    /// A single-shard pool: one lock, one global LRU order — exactly the
    /// seed `CachedStore` eviction behavior. Used for the private per-store
    /// default so metrics and eviction order stay byte-identical.
    pub fn private(capacity_bytes: usize) -> BufferPool {
        Self::with_shards(capacity_bytes, 1)
    }

    /// A pool with an explicit shard count (clamped to at least 1; small
    /// budgets get fewer shards so each shard keeps a usable byte budget).
    pub fn with_shards(capacity_bytes: usize, shards: usize) -> BufferPool {
        let shards = shards.max(1).min(capacity_bytes.max(1)).next_power_of_two();
        let shard_capacity = capacity_bytes / shards;
        BufferPool {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(shard_capacity)))
                .collect(),
            shard_capacity,
            max_entry: AtomicUsize::new((capacity_bytes / 4).max(1)),
            tenant_quota: AtomicUsize::new(0),
            metrics: Arc::new(PoolMetrics::new()),
        }
    }

    /// Override the largest cacheable entry size.
    pub fn set_max_entry_bytes(&self, max_entry: usize) {
        self.max_entry.store(max_entry.max(1), Ordering::Relaxed);
    }

    /// Arm (or, with 0, disarm) the per-tenant protected-byte quota. While
    /// armed:
    ///
    /// - a tenant whose protected bytes are at quota keeps new re-referenced
    ///   pages in probation instead of promoting them (`pool.quota_denied`);
    /// - a miss-driven insert never evicts another tenant's *protected*
    ///   pages — a greedy scan evicts its own probation pages first, then
    ///   its own protected ones, then other tenants' probation.
    ///
    /// With the quota at 0 (the default) behavior is byte-identical to a
    /// pool without tenant accounting.
    pub fn set_tenant_quota_bytes(&self, quota: usize) {
        self.tenant_quota.store(quota, Ordering::Relaxed);
    }

    /// The armed per-tenant protected-byte quota (0 = off).
    pub fn tenant_quota_bytes(&self) -> usize {
        self.tenant_quota.load(Ordering::Relaxed)
    }

    /// Per-tenant residency aggregated across shards, sorted by tenant:
    /// `(tenant, resident_bytes, protected_bytes)`. Tenant attribution is
    /// recorded on every insert, so stats are meaningful with or without an
    /// armed quota.
    pub fn tenant_stats(&self) -> Vec<(String, u64, u64)> {
        let mut agg: std::collections::BTreeMap<String, (u64, u64)> =
            std::collections::BTreeMap::new();
        for shard in &self.shards {
            let s = shard.lock();
            for (tenant, tb) in &s.tenant_bytes {
                let e = agg.entry(tenant.clone()).or_default();
                e.0 += tb.resident as u64;
                e.1 += tb.protected as u64;
            }
        }
        agg.into_iter().map(|(t, (r, p))| (t, r, p)).collect()
    }

    /// This pool's metrics (shared handle; live counters).
    pub fn metrics(&self) -> Arc<PoolMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Total byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    fn shard_for(&self, path: &str) -> &Mutex<Shard> {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in path.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(mix(h) as usize) & (self.shards.len() - 1)]
    }

    /// Bytes currently resident across all shards.
    pub fn cached_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Number of resident entries across all shards.
    pub fn cached_entries(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether an exact key is resident (no recency touch, no metrics).
    pub fn contains(&self, key: &PoolKey) -> bool {
        self.shard_for(key.path()).lock().map.contains_key(key)
    }

    /// Drop every entry (counters are untouched).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            let (bytes, entries) = (s.bytes, s.map.len());
            s.map.clear();
            s.bytes = 0;
            s.protected_bytes = 0;
            s.tenant_bytes.clear();
            if bytes > 0 || entries > 0 {
                self.metrics
                    .update_resident(-(bytes as i64), -(entries as i64));
            }
        }
    }

    /// Serve `key` from the pool or load it via `load`, single-flighting
    /// concurrent misses on the same key. Returns the bytes and whether they
    /// came from the pool (`true` = hit). A `Range` key is also served by
    /// slicing a resident whole-object entry.
    ///
    /// Waiters that find no entry after the loader finishes (load failed, or
    /// admission rejected the entry) fall back to one direct `load` each —
    /// at most one extra fetch per waiting thread, never an unbounded storm.
    pub fn get_or_load<F>(&self, key: &PoolKey, load: F) -> Result<(Bytes, bool)>
    where
        F: FnOnce() -> Result<Bytes>,
    {
        let shard = self.shard_for(key.path());
        let gate: Arc<Gate> = {
            let mut s = shard.lock();
            let hash = key.sketch_hash();
            s.sketch.bump(hash);
            if let Some(data) = self.lookup_locked(&mut s, key) {
                self.metrics.record_hit();
                return Ok((data, true));
            }
            if let Some(gate) = s.inflight.get(key) {
                Arc::clone(gate)
            } else {
                // First misser: install a gate and load outside the lock.
                let gate = Arc::new(Gate::new());
                s.inflight.insert(key.clone(), Arc::clone(&gate));
                self.metrics.record_miss();
                drop(s);
                let cleanup = GateCleanup {
                    shard,
                    key,
                    gate: &gate,
                };
                let result = load();
                if let Ok(data) = &result {
                    let mut s = shard.lock();
                    self.insert_locked(&mut s, key.clone(), data.clone(), true);
                }
                drop(cleanup); // removes the gate, wakes waiters
                return result.map(|d| (d, false));
            }
        };
        // Another thread is loading this key: wait, then re-check. A killed
        // waiter abandons the gate without disturbing the loader or the
        // pool's bookkeeping — the shared pool stays consistent.
        if let Some(reason) = gate.wait() {
            return Err(crate::error::StoreError::QueryKilled { reason });
        }
        let mut s = shard.lock();
        if let Some(data) = self.lookup_locked(&mut s, key) {
            self.metrics.record_hit();
            return Ok((data, true));
        }
        // The loader failed or its entry is already gone: fetch directly.
        self.metrics.record_miss();
        drop(s);
        let data = load()?;
        let mut s = shard.lock();
        self.insert_locked(&mut s, key.clone(), data.clone(), true);
        Ok((data, false))
    }

    /// Serve a resident whole-object entry (recency touch + CRC verify),
    /// recording a pool hit on success. Used for `head`-style lookups where
    /// a fall-through is not a pool miss (the caller never inserts).
    pub fn try_get_whole(&self, path: &str) -> Option<Bytes> {
        let key = PoolKey::Whole(path.to_string());
        let mut s = self.shard_for(path).lock();
        s.sketch.bump(key.sketch_hash());
        let data = self.touch_verified(&mut s, &key)?;
        self.metrics.record_hit();
        Some(data)
    }

    /// Whether the whole object is resident (no touch — mirrors the seed
    /// `exists` check, which must not perturb recency).
    pub fn contains_whole(&self, path: &str) -> bool {
        self.shard_for(path)
            .lock()
            .map
            .contains_key(&PoolKey::Whole(path.to_string()))
    }

    /// Write-through replace: drop every entry for `path` (its ranges are
    /// stale) and insert the new whole object unconditionally — the caller
    /// just produced these bytes, so they skip the admission contest.
    pub fn replace_whole(&self, path: &str, data: Bytes) {
        let mut s = self.shard_for(path).lock();
        self.invalidate_locked(&mut s, path);
        self.insert_locked(&mut s, PoolKey::Whole(path.to_string()), data, false);
    }

    /// Drop every entry for `path` (write/delete invalidation).
    pub fn invalidate_path(&self, path: &str) {
        let mut s = self.shard_for(path).lock();
        self.invalidate_locked(&mut s, path);
    }

    /// Drop every entry for `path` because a *downstream* integrity check
    /// (file-footer or column-chunk checksum) rejected bytes read through
    /// this pool. Counts a verify failure: the poisoned entry is what kept
    /// serving the corruption, and the retry that follows must re-fetch.
    pub fn invalidate_corrupt(&self, path: &str) {
        self.metrics.record_verify_failure();
        self.invalidate_path(path);
    }

    fn invalidate_locked(&self, s: &mut Shard, path: &str) {
        let keys: Vec<PoolKey> = s.map.keys().filter(|k| k.path() == path).cloned().collect();
        for k in keys {
            self.remove_locked(s, &k);
        }
    }

    fn remove_locked(&self, s: &mut Shard, key: &PoolKey) -> Option<PoolEntry> {
        let e = s.map.remove(key)?;
        let len = e.data.len();
        s.bytes -= len;
        let protected = e.segment == Segment::Protected;
        if protected {
            s.protected_bytes -= len;
        }
        s.tenant_add(
            &e.tenant,
            -(len as isize),
            if protected { -(len as isize) } else { 0 },
        );
        self.metrics.update_resident(-(len as i64), -1);
        Some(e)
    }

    /// Exact-key touch with CRC verification and SLRU promotion. A checksum
    /// mismatch removes the entry, counts a verify failure, and misses.
    fn touch_verified(&self, s: &mut Shard, key: &PoolKey) -> Option<Bytes> {
        s.tick += 1;
        let tick = s.tick;
        let (verified, data) = match s.map.get(key) {
            None => return None,
            Some(e) => (crc32c(&e.data) == e.crc, e.data.clone()),
        };
        if !verified {
            self.metrics.record_verify_failure();
            self.remove_locked(s, key);
            return None;
        }
        // Admission to protected is where the tenant quota bites: a tenant
        // whose protected bytes are full keeps the page in probation (still
        // served, still touched) instead of growing its protected share.
        let quota = self.tenant_quota.load(Ordering::Relaxed);
        let denied = quota > 0
            && match s.map.get(key) {
                Some(e) if e.segment == Segment::Probation => {
                    s.tenant_protected(&e.tenant) + data.len() > quota
                }
                _ => false,
            };
        if denied {
            self.metrics.record_quota_denied();
        }
        let mut promoted: Option<String> = None;
        if let Some(entry) = s.map.get_mut(key) {
            entry.last_used = tick;
            if entry.segment == Segment::Probation && !denied {
                entry.segment = Segment::Protected;
                promoted = Some(entry.tenant.clone());
            }
        }
        if let Some(tenant) = promoted {
            s.protected_bytes += data.len();
            s.tenant_add(&tenant, 0, data.len() as isize);
            self.rebalance_protected(s);
        }
        Some(data)
    }

    /// Demote protected-LRU entries back to probation until the protected
    /// segment fits its budget. Moves no bytes out of the pool.
    fn rebalance_protected(&self, s: &mut Shard) {
        let budget = self.shard_capacity * PROTECTED_NUM / PROTECTED_DEN;
        while s.protected_bytes > budget {
            let Some(victim) = s
                .map
                .iter()
                .filter(|(_, e)| e.segment == Segment::Protected)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let Some(e) = s.map.get_mut(&victim) else {
                break;
            };
            let len = e.data.len();
            e.segment = Segment::Probation;
            let tenant = e.tenant.clone();
            s.protected_bytes -= len;
            s.tenant_add(&tenant, 0, -(len as isize));
        }
    }

    fn lookup_locked(&self, s: &mut Shard, key: &PoolKey) -> Option<Bytes> {
        if let Some(data) = self.touch_verified(s, key) {
            return Some(data);
        }
        // A resident whole object can serve any of its ranges.
        if let PoolKey::Range(path, start, end) = key {
            let whole = PoolKey::Whole(path.clone());
            if let Some(data) = self.touch_verified(s, &whole) {
                if *end <= data.len() {
                    return Some(data.slice(*start..*end));
                }
            }
        }
        None
    }

    /// Insert into probation. `admission: true` (read-miss path) runs the
    /// TinyLFU contest against each would-be victim; `false` (write-through)
    /// evicts plain LRU like the seed cache.
    fn insert_locked(&self, s: &mut Shard, key: PoolKey, data: Bytes, admission: bool) {
        let len = data.len();
        if len > self.max_entry.load(Ordering::Relaxed) || len > self.shard_capacity {
            self.metrics.record_rejected();
            return;
        }
        // Attribute the page to the inserting query's tenant (empty when no
        // query context is active, e.g. warm-up traffic).
        let tenant = lakehouse_obs::QueryCtx::current()
            .map(|c| c.tenant().to_string())
            .unwrap_or_default();
        let quota = self.tenant_quota.load(Ordering::Relaxed);
        s.tick += 1;
        let tick = s.tick;
        let hash = key.sketch_hash();
        s.sketch.bump(hash);
        self.remove_locked(s, &key); // replacing: drop the old entry's bytes
                                     // Make room, preferring probation victims (SLRU), stopping if the
                                     // candidate loses the frequency contest against a victim.
        while s.bytes + len > self.shard_capacity {
            // With tenant quotas armed, a miss may never evict *another*
            // tenant's protected pages; victims are taken from the inserting
            // tenant's own pages first (probation, then protected), then
            // foreign probation. Quota off = the seed's SLRU order, exactly.
            let victim = if quota == 0 {
                s.map
                    .iter()
                    .min_by_key(|(_, e)| (e.segment == Segment::Protected, e.last_used))
                    .map(|(k, _)| k.clone())
            } else {
                s.map
                    .iter()
                    .filter(|(_, e)| e.tenant == tenant || e.segment != Segment::Protected)
                    .min_by_key(|(_, e)| {
                        (
                            e.tenant != tenant,
                            e.segment == Segment::Protected,
                            e.last_used,
                        )
                    })
                    .map(|(k, _)| k.clone())
            };
            let Some(victim) = victim else {
                if quota > 0 && s.bytes + len > self.shard_capacity {
                    // Every resident byte belongs to other tenants' protected
                    // segments: politeness wins, the insert is rejected.
                    self.metrics.record_rejected();
                    return;
                }
                break;
            };
            if admission && s.sketch.freq(hash) < s.sketch.freq(victim.sketch_hash()) {
                self.metrics.record_rejected();
                return;
            }
            if let Some(e) = self.remove_locked(s, &victim) {
                self.metrics.record_evicted(e.data.len());
                // The inserting query caused this eviction: charge its
                // ledger and leave a flight-recorder event naming the victim.
                lakehouse_obs::ctx::charge(|l| l.add_evictions_caused(1));
                lakehouse_obs::recorder().record(
                    lakehouse_obs::EventKind::PoolEvict,
                    victim.path(),
                    e.data.len() as u64,
                );
            }
        }
        let crc = crc32c(&data);
        s.bytes += len;
        s.tenant_add(&tenant, len as isize, 0);
        lakehouse_obs::recorder().record(
            lakehouse_obs::EventKind::PoolAdmit,
            key.path(),
            len as u64,
        );
        s.map.insert(
            key,
            PoolEntry {
                data,
                crc,
                last_used: tick,
                segment: Segment::Probation,
                tenant,
            },
        );
        self.metrics.record_admitted();
        self.metrics.update_resident(len as i64, 1);
    }

    /// Test hook: overwrite a resident entry's bytes *without* refreshing
    /// its stored CRC, simulating in-cache corruption.
    #[cfg(test)]
    fn poison_entry(&self, key: &PoolKey, bad: Bytes) -> bool {
        let mut s = self.shard_for(key.path()).lock();
        match s.map.get_mut(key) {
            Some(e) => {
                e.data = bad;
                true
            }
            None => false,
        }
    }
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity_bytes", &self.capacity_bytes())
            .field("shards", &self.shards.len())
            .field("max_entry", &self.max_entry.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StoreError;
    use std::sync::atomic::AtomicUsize;

    fn whole(p: &str) -> PoolKey {
        PoolKey::Whole(p.to_string())
    }

    #[test]
    fn hit_after_load_and_exact_accounting() {
        let pool = BufferPool::private(1 << 20);
        let (d, hit) = pool
            .get_or_load(&whole("a"), || Ok(Bytes::from_static(b"abc")))
            .unwrap();
        assert_eq!(d, Bytes::from_static(b"abc"));
        assert!(!hit);
        let (d, hit) = pool
            .get_or_load(&whole("a"), || panic!("must not reload"))
            .unwrap();
        assert_eq!(d, Bytes::from_static(b"abc"));
        assert!(hit);
        let m = pool.metrics();
        assert_eq!(m.hits(), 1);
        assert_eq!(m.misses(), 1);
        assert_eq!(m.admitted(), 1);
        assert_eq!(m.resident_bytes(), 3);
    }

    #[test]
    fn range_served_from_whole_entry() {
        let pool = BufferPool::private(1 << 20);
        pool.replace_whole("f", Bytes::from_static(b"0123456789"));
        let key = PoolKey::Range("f".to_string(), 2, 5);
        let (d, hit) = pool
            .get_or_load(&key, || panic!("whole entry must serve the range"))
            .unwrap();
        assert_eq!(d, Bytes::from_static(b"234"));
        assert!(hit);
    }

    #[test]
    fn crc_verification_catches_poisoned_entry() {
        let pool = BufferPool::private(1 << 20);
        pool.replace_whole("x", Bytes::from_static(b"good bytes"));
        assert!(pool.poison_entry(&whole("x"), Bytes::from_static(b"bad  bytes")));
        // The hit path verifies, drops the entry, and reloads.
        let (d, hit) = pool
            .get_or_load(&whole("x"), || Ok(Bytes::from_static(b"good bytes")))
            .unwrap();
        assert_eq!(d, Bytes::from_static(b"good bytes"));
        assert!(!hit, "poisoned entry must not be served");
        assert_eq!(pool.metrics().verify_failures(), 1);
        // The reload re-resident a verified copy.
        let (_, hit) = pool
            .get_or_load(&whole("x"), || panic!("should be resident again"))
            .unwrap();
        assert!(hit);
    }

    #[test]
    fn admission_protects_frequent_entries_from_cold_scan() {
        let pool = BufferPool::private(100);
        pool.set_max_entry_bytes(60);
        // Make "hot" frequent: several touches build sketch frequency.
        for _ in 0..4 {
            let _ = pool.get_or_load(&whole("hot"), || Ok(Bytes::from(vec![1u8; 60])));
        }
        // A cold one-touch insert that would need to evict `hot` loses the
        // frequency contest and is rejected.
        let (d, hit) = pool
            .get_or_load(&whole("cold"), || Ok(Bytes::from(vec![2u8; 60])))
            .unwrap();
        assert_eq!(d.len(), 60);
        assert!(!hit);
        assert!(pool.metrics().rejected() >= 1);
        assert!(pool.contains(&whole("hot")), "hot entry must survive");
        assert!(
            !pool.contains(&whole("cold")),
            "cold entry must be rejected"
        );
    }

    #[test]
    fn write_through_bypasses_admission() {
        let pool = BufferPool::private(100);
        pool.set_max_entry_bytes(60);
        for _ in 0..4 {
            let _ = pool.get_or_load(&whole("hot"), || Ok(Bytes::from(vec![1u8; 60])));
        }
        // A write-through insert always lands (the writer just produced it).
        pool.replace_whole("fresh", Bytes::from(vec![3u8; 60]));
        assert!(pool.contains(&whole("fresh")));
        assert!(!pool.contains(&whole("hot")), "LRU victim evicted");
    }

    #[test]
    fn single_flight_coalesces_concurrent_misses() {
        let pool = Arc::new(BufferPool::new(1 << 20));
        let loads = Arc::new(AtomicUsize::new(0));
        let results: Vec<(usize, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    let loads = Arc::clone(&loads);
                    scope.spawn(move || {
                        let (d, hit) = pool
                            .get_or_load(&PoolKey::Whole("k".to_string()), || {
                                loads.fetch_add(1, Ordering::SeqCst);
                                // Widen the race window so waiters pile up.
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                Ok(Bytes::from_static(b"payload"))
                            })
                            .unwrap();
                        (d.len(), hit)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|(len, _)| *len == 7));
        assert_eq!(
            loads.load(Ordering::SeqCst),
            1,
            "one loader, everyone else waits on the gate"
        );
        assert_eq!(results.iter().filter(|(_, hit)| !hit).count(), 1);
    }

    #[test]
    fn failed_load_wakes_waiters_without_poisoning() {
        let pool = Arc::new(BufferPool::new(1 << 20));
        let first = pool.get_or_load(&whole("gone"), || {
            Err(StoreError::Transient("flaky".into()))
        });
        assert!(first.is_err());
        // The gate is gone; the next call loads cleanly.
        let (d, hit) = pool
            .get_or_load(&whole("gone"), || Ok(Bytes::from_static(b"ok")))
            .unwrap();
        assert_eq!(d, Bytes::from_static(b"ok"));
        assert!(!hit);
    }

    #[test]
    fn invalidate_corrupt_counts_and_clears() {
        let pool = BufferPool::private(1 << 20);
        pool.replace_whole("torn", Bytes::from_static(b"half"));
        assert_eq!(pool.cached_entries(), 1);
        pool.invalidate_corrupt("torn");
        assert_eq!(pool.cached_entries(), 0);
        assert_eq!(pool.metrics().verify_failures(), 1);
    }

    #[test]
    fn slru_protects_rereferenced_entries() {
        // Capacity 50: three 10-byte entries; re-reference a and b so they
        // sit in protected, then stream cold pages through probation.
        let pool = BufferPool::private(50);
        pool.set_max_entry_bytes(10);
        for name in ["a", "b", "c"] {
            pool.replace_whole(name, Bytes::from(vec![0u8; 10]));
        }
        for name in ["a", "b"] {
            let _ = pool.get_or_load(&whole(name), || unreachable!("resident"));
        }
        // Cold write-through stream: victims must come from probation (c,
        // then the cold pages themselves), never the protected a/b.
        for i in 0..8 {
            pool.replace_whole(&format!("cold/{i}"), Bytes::from(vec![1u8; 10]));
        }
        assert!(pool.contains(&whole("a")));
        assert!(pool.contains(&whole("b")));
        assert!(!pool.contains(&whole("c")));
    }

    #[test]
    fn eviction_is_deterministic_under_fixed_touch_order() {
        let run = || {
            let pool = BufferPool::private(300);
            pool.set_max_entry_bytes(100);
            for i in 0..10 {
                let _ = pool.get_or_load(&whole(&format!("k/{i}")), || {
                    Ok(Bytes::from(vec![i as u8; 60]))
                });
            }
            let mut resident: Vec<String> = (0..10)
                .map(|i| format!("k/{i}"))
                .filter(|k| pool.contains(&whole(k)))
                .collect();
            resident.sort();
            resident
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same touch order must leave the same residents");
        assert!(!a.is_empty());
    }

    #[test]
    fn tenant_quota_caps_protected_promotions() {
        let pool = BufferPool::private(1 << 20);
        pool.set_tenant_quota_bytes(400);
        let ctx = lakehouse_obs::QueryCtx::new("alpha", "q");
        let _g = ctx.enter();
        for i in 0..5 {
            pool.replace_whole(&format!("p/{i}"), Bytes::from(vec![i as u8; 100]));
        }
        // Touch every page: the first four promote (4 x 100 = quota), the
        // fifth is denied promotion but still served.
        for i in 0..5 {
            let (d, hit) = pool
                .get_or_load(&whole(&format!("p/{i}")), || unreachable!("resident"))
                .unwrap();
            assert_eq!(d.len(), 100);
            assert!(hit);
        }
        assert_eq!(pool.metrics().quota_denied(), 1);
        let stats = pool.tenant_stats();
        assert_eq!(stats, vec![("alpha".to_string(), 500, 400)]);
    }

    #[test]
    fn tenant_isolation_never_evicts_foreign_protected_pages() {
        let pool = BufferPool::private(1000);
        pool.set_max_entry_bytes(1000);
        pool.set_tenant_quota_bytes(400);
        // Polite tenant promotes two pages into protected.
        {
            let ctx = lakehouse_obs::QueryCtx::new("polite", "q");
            let _g = ctx.enter();
            for name in ["polite/a", "polite/b"] {
                pool.replace_whole(name, Bytes::from(vec![7u8; 100]));
                let _ = pool.get_or_load(&whole(name), || unreachable!("resident"));
            }
        }
        // Greedy tenant streams far more than the pool holds: its misses
        // must recycle its own pages, never the polite protected ones.
        {
            let ctx = lakehouse_obs::QueryCtx::new("greedy", "q");
            let _g = ctx.enter();
            for i in 0..30 {
                pool.replace_whole(&format!("greedy/{i}"), Bytes::from(vec![9u8; 100]));
            }
        }
        assert!(pool.contains(&whole("polite/a")));
        assert!(pool.contains(&whole("polite/b")));
        let stats = pool.tenant_stats();
        let polite = stats.iter().find(|(t, _, _)| t == "polite").unwrap();
        assert_eq!(
            (polite.1, polite.2),
            (200, 200),
            "polite protected bytes must survive the greedy stream"
        );
        let greedy = stats.iter().find(|(t, _, _)| t == "greedy").unwrap();
        assert!(greedy.1 <= 800, "greedy stays within capacity minus polite");
    }

    #[test]
    fn insert_rejected_when_only_foreign_protected_bytes_remain() {
        let pool = BufferPool::private(500);
        pool.set_max_entry_bytes(500);
        pool.set_tenant_quota_bytes(400);
        {
            let ctx = lakehouse_obs::QueryCtx::new("polite", "q");
            let _g = ctx.enter();
            for i in 0..4 {
                let name = format!("p/{i}");
                pool.replace_whole(&name, Bytes::from(vec![1u8; 100]));
                let _ = pool.get_or_load(&whole(&name), || unreachable!("resident"));
            }
        }
        // All 400 resident bytes are polite-protected; a 200-byte foreign
        // insert cannot make room without violating isolation.
        let rejected_before = pool.metrics().rejected();
        {
            let ctx = lakehouse_obs::QueryCtx::new("greedy", "q");
            let _g = ctx.enter();
            pool.replace_whole("g/big", Bytes::from(vec![2u8; 200]));
        }
        assert!(!pool.contains(&whole("g/big")));
        assert!(pool.metrics().rejected() > rejected_before);
        for i in 0..4 {
            assert!(pool.contains(&whole(&format!("p/{i}"))));
        }
    }
}
