//! S3-like latency simulation.
//!
//! The paper's Reasonable-Scale argument (§3.1, §4.4.2) rests on a single
//! empirical fact: at small data volumes compute is cheap and **object-store
//! round trips dominate**. [`SimulatedStore`] makes that fact reproducible on
//! a laptop by charging each operation a first-byte latency (lognormal, mean
//! ≈ 30 ms for GETs, like S3 in-region) plus a bandwidth-limited transfer
//! time.
//!
//! Charged time is *always* recorded in [`StoreMetrics`]; whether the thread
//! actually sleeps is controlled by [`SleepMode`], so unit tests run at full
//! speed while end-to-end latency benches can opt into real (or scaled)
//! sleeping.

use crate::error::Result;
use crate::metrics::StoreMetrics;
use crate::path::ObjectPath;
use crate::ObjectStore;
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use std::sync::Arc;
use std::time::Duration;

/// How simulated latency is applied to the calling thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SleepMode {
    /// Record latency in metrics only; never sleep. Deterministic benches.
    None,
    /// Sleep for `latency * factor` (e.g. 0.01 for fast integration tests
    /// that still want ordering effects).
    Scaled(f64),
    /// Sleep for the full simulated latency.
    Real,
}

/// Parameters of the latency model.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Median first-byte latency for reads.
    pub get_first_byte: Duration,
    /// Median first-byte latency for writes (S3 PUTs are slower than GETs).
    pub put_first_byte: Duration,
    /// Median latency for LIST/HEAD/DELETE control-plane calls.
    pub control_plane: Duration,
    /// Sustained transfer bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: u64,
    /// Lognormal sigma controlling tail heaviness (0 = deterministic).
    pub sigma: f64,
}

impl LatencyModel {
    /// In-region S3-like defaults: ~15 ms GET first byte, ~25 ms PUT,
    /// ~90 MB/s effective single-stream bandwidth, mild tail (AWS-published
    /// in-region small-object latencies).
    pub fn s3_like() -> Self {
        LatencyModel {
            get_first_byte: Duration::from_millis(15),
            put_first_byte: Duration::from_millis(25),
            control_plane: Duration::from_millis(10),
            bandwidth_bytes_per_sec: 90 * 1024 * 1024,
            sigma: 0.35,
        }
    }

    /// Local-NVMe-like defaults for the "data locality" side of comparisons:
    /// microsecond access, multi-GB/s bandwidth.
    pub fn local_nvme() -> Self {
        LatencyModel {
            get_first_byte: Duration::from_micros(80),
            put_first_byte: Duration::from_micros(120),
            control_plane: Duration::from_micros(50),
            bandwidth_bytes_per_sec: 3 * 1024 * 1024 * 1024,
            sigma: 0.1,
        }
    }

    /// A zero-latency model (wrapper becomes pass-through accounting).
    pub fn zero() -> Self {
        LatencyModel {
            get_first_byte: Duration::ZERO,
            put_first_byte: Duration::ZERO,
            control_plane: Duration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX,
            sigma: 0.0,
        }
    }

    fn transfer_time(&self, bytes: usize) -> Duration {
        if self.bandwidth_bytes_per_sec == 0 || self.bandwidth_bytes_per_sec == u64::MAX {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64)
    }

    fn sample(&self, median: Duration, rng: &mut StdRng) -> Duration {
        if self.sigma <= 0.0 || median.is_zero() {
            return median;
        }
        // Lognormal parameterized so the *median* equals the configured
        // value: ln X ~ Normal(ln median, sigma).
        let mu = median.as_secs_f64().ln();
        let dist = LogNormal::new(mu, self.sigma).expect("valid lognormal");
        Duration::from_secs_f64(dist.sample(rng))
    }
}

/// An [`ObjectStore`] wrapper charging simulated latency per operation.
pub struct SimulatedStore<S> {
    inner: S,
    model: LatencyModel,
    sleep_mode: SleepMode,
    metrics: Arc<StoreMetrics>,
    rng: Mutex<StdRng>,
}

impl<S: ObjectStore> SimulatedStore<S> {
    /// Wrap `inner` with the given model, `SleepMode::None`, and a fixed RNG
    /// seed (deterministic latency sequences).
    pub fn new(inner: S, model: LatencyModel) -> Self {
        Self::with_seed(inner, model, 42)
    }

    pub fn with_seed(inner: S, model: LatencyModel, seed: u64) -> Self {
        SimulatedStore {
            inner,
            model,
            sleep_mode: SleepMode::None,
            metrics: Arc::new(StoreMetrics::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Set how latency is applied to calling threads.
    ///
    /// Also publishes the wall-seconds-per-simulated-second factor on the
    /// metrics handle so downstream layers (hedge timers, chaos stalls,
    /// retry backoff) can convert simulated durations into real waits.
    pub fn with_sleep_mode(mut self, mode: SleepMode) -> Self {
        self.sleep_mode = mode;
        self.metrics.set_wall_scale(match mode {
            SleepMode::None => 0.0,
            SleepMode::Scaled(f) => f.max(0.0),
            SleepMode::Real => 1.0,
        });
        self
    }

    /// The metrics handle (shared; clone freely).
    pub fn metrics(&self) -> Arc<StoreMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn charge(&self, median: Duration, bytes: usize) -> Duration {
        let first_byte = {
            let mut rng = self.rng.lock();
            self.model.sample(median, &mut rng)
        };
        let total = first_byte + self.model.transfer_time(bytes);
        match self.sleep_mode {
            SleepMode::None => {}
            SleepMode::Scaled(f) => std::thread::sleep(total.mul_f64(f.max(0.0))),
            SleepMode::Real => std::thread::sleep(total),
        }
        total
    }

    /// Charge an arbitrary extra read round trip (used by schedulers modeling
    /// spillover without materializing data).
    pub fn charge_read(&self, bytes: usize) -> Duration {
        let latency = self.charge(self.model.get_first_byte, bytes);
        self.metrics.record_get(bytes, latency);
        latency
    }

    /// Charge an arbitrary extra write round trip.
    pub fn charge_write(&self, bytes: usize) -> Duration {
        let latency = self.charge(self.model.put_first_byte, bytes);
        self.metrics.record_put(bytes, latency);
        latency
    }
}

impl<S: ObjectStore> ObjectStore for SimulatedStore<S> {
    fn put(&self, path: &ObjectPath, data: Bytes) -> Result<()> {
        let bytes = data.len();
        let latency = self.charge(self.model.put_first_byte, bytes);
        let r = self.inner.put(path, data);
        self.metrics.record_put(bytes, latency);
        r
    }

    fn get(&self, path: &ObjectPath) -> Result<Bytes> {
        let data = self.inner.get(path)?;
        let latency = self.charge(self.model.get_first_byte, data.len());
        self.metrics.record_get(data.len(), latency);
        Ok(data)
    }

    fn get_range(&self, path: &ObjectPath, start: usize, end: usize) -> Result<Bytes> {
        let data = self.inner.get_range(path, start, end)?;
        let latency = self.charge(self.model.get_first_byte, data.len());
        self.metrics.record_get(data.len(), latency);
        Ok(data)
    }

    fn head(&self, path: &ObjectPath) -> Result<usize> {
        let r = self.inner.head(path)?;
        let latency = self.charge(self.model.control_plane, 0);
        self.metrics.record_list(latency);
        Ok(r)
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectPath>> {
        let r = self.inner.list(prefix)?;
        let latency = self.charge(self.model.control_plane, 0);
        self.metrics.record_list(latency);
        Ok(r)
    }

    fn delete(&self, path: &ObjectPath) -> Result<()> {
        self.inner.delete(path)?;
        let latency = self.charge(self.model.control_plane, 0);
        self.metrics.record_delete(latency);
        Ok(())
    }

    fn put_if_matches(
        &self,
        path: &ObjectPath,
        expected: Option<&[u8]>,
        data: Bytes,
    ) -> Result<()> {
        let bytes = data.len();
        let latency = self.charge(self.model.put_first_byte, bytes);
        let r = self.inner.put_if_matches(path, expected, data);
        self.metrics.record_put(bytes, latency);
        r
    }

    fn store_metrics(&self) -> Option<Arc<StoreMetrics>> {
        Some(self.metrics())
    }

    fn invalidate_corrupt(&self, path: &ObjectPath) {
        // Free: invalidation is in-process bookkeeping, not a store op.
        self.inner.invalidate_corrupt(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryStore;

    fn p(s: &str) -> ObjectPath {
        ObjectPath::new(s).unwrap()
    }

    #[test]
    fn charges_latency_without_sleeping() {
        let s = SimulatedStore::new(InMemoryStore::new(), LatencyModel::s3_like());
        let start = std::time::Instant::now();
        s.put(&p("a"), Bytes::from(vec![0u8; 1024])).unwrap();
        s.get(&p("a")).unwrap();
        // No sleeping: real elapsed should be far less than simulated.
        assert!(start.elapsed() < Duration::from_millis(20));
        let m = s.metrics();
        assert!(m.simulated_time() >= Duration::from_millis(20));
        assert_eq!(m.gets(), 1);
        assert_eq!(m.puts(), 1);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let model = LatencyModel {
            sigma: 0.0,
            ..LatencyModel::s3_like()
        };
        let small = model.get_first_byte + model.transfer_time(1024);
        let large = model.get_first_byte + model.transfer_time(100 * 1024 * 1024);
        assert!(large > small + Duration::from_millis(500));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let s = SimulatedStore::with_seed(InMemoryStore::new(), LatencyModel::s3_like(), seed);
            s.put(&p("a"), Bytes::from_static(b"x")).unwrap();
            s.get(&p("a")).unwrap();
            s.metrics().simulated_time()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn sleep_mode_publishes_wall_scale() {
        let s = SimulatedStore::new(InMemoryStore::new(), LatencyModel::s3_like());
        assert_eq!(s.metrics().wall_scale(), 0.0);
        let s = s.with_sleep_mode(SleepMode::Scaled(0.2));
        assert_eq!(s.metrics().wall_scale(), 0.2);
        let s = s.with_sleep_mode(SleepMode::Real);
        assert_eq!(s.metrics().wall_scale(), 1.0);
        let s = s.with_sleep_mode(SleepMode::None);
        assert_eq!(s.metrics().wall_scale(), 0.0);
    }

    #[test]
    fn zero_model_is_free() {
        let s = SimulatedStore::new(InMemoryStore::new(), LatencyModel::zero());
        s.put(&p("a"), Bytes::from_static(b"x")).unwrap();
        assert_eq!(s.metrics().simulated_time(), Duration::ZERO);
    }

    #[test]
    fn nvme_much_faster_than_s3() {
        let s3 = SimulatedStore::new(InMemoryStore::new(), LatencyModel::s3_like());
        let nvme = SimulatedStore::new(InMemoryStore::new(), LatencyModel::local_nvme());
        let payload = Bytes::from(vec![0u8; 1 << 20]);
        {
            let s = &s3;
            s.put(&p("a"), payload.clone()).unwrap();
            s.get(&p("a")).unwrap();
        }
        nvme.put(&p("a"), payload).unwrap();
        nvme.get(&p("a")).unwrap();
        assert!(s3.metrics().simulated_time() > nvme.metrics().simulated_time() * 10);
    }

    #[test]
    fn charge_helpers_record() {
        let s = SimulatedStore::new(InMemoryStore::new(), LatencyModel::s3_like());
        s.charge_read(1000);
        s.charge_write(1000);
        assert_eq!(s.metrics().gets(), 1);
        assert_eq!(s.metrics().puts(), 1);
    }

    #[test]
    fn errors_pass_through() {
        let s = SimulatedStore::new(InMemoryStore::new(), LatencyModel::s3_like());
        assert!(s.get(&p("missing")).is_err());
    }
}
