//! A bounded LRU cache over small objects and byte ranges.
//!
//! The paper's core observation is that object-store round trips dominate at
//! Reasonable Scale; the cheapest round trip is the one never made. Every
//! query re-reads the same *metadata*: the table's manifest, and each data
//! file's footer (a small tail range). [`CachedStore`] sits above any
//! [`ObjectStore`] and answers repeated whole-object GETs and exact range
//! GETs from memory — the "differential caching" lever of FaaS lakehouse
//! engines, applied to the metadata path.
//!
//! Coherence model: all writers go *through* this wrapper (a `put`,
//! `put_if_matches`, or `delete` invalidates every cached entry for that
//! path). Lakehouse data and metadata objects are immutable once written —
//! only the catalog pointer mutates, and it mutates through the same handle —
//! so write-through invalidation is sufficient.
//!
//! Hit/miss/byte counters are folded into the *inner* store's
//! [`StoreMetrics`] when it exposes one (so a `SimulatedStore` under the
//! cache reports latency and cache effectiveness in one place); otherwise the
//! cache keeps its own metrics instance. Cache hits charge no simulated
//! latency and move no `bytes_read` — exactly like a memory hit in front of
//! S3.

use crate::error::Result;
use crate::metrics::StoreMetrics;
use crate::path::ObjectPath;
use crate::ObjectStore;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: a whole object or one exact byte range of an object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CacheKey {
    Whole(String),
    Range(String, usize, usize),
}

impl CacheKey {
    fn path(&self) -> &str {
        match self {
            CacheKey::Whole(p) => p,
            CacheKey::Range(p, _, _) => p,
        }
    }
}

struct CacheEntry {
    data: Bytes,
    /// Monotone recency stamp (larger = more recently used).
    last_used: u64,
}

struct LruState {
    map: HashMap<CacheKey, CacheEntry>,
    bytes: usize,
    tick: u64,
}

impl LruState {
    fn touch(&mut self, key: &CacheKey) -> Option<Bytes> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.data.clone())
    }

    fn insert(&mut self, key: CacheKey, data: Bytes, capacity: usize, max_entry: usize) {
        if data.len() > max_entry || data.len() > capacity {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.insert(
            key,
            CacheEntry {
                data: data.clone(),
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.data.len();
        }
        self.bytes += data.len();
        // Evict least-recently-used entries until within capacity.
        while self.bytes > capacity {
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = self.map.remove(&victim) {
                self.bytes -= e.data.len();
            }
        }
    }

    fn invalidate_path(&mut self, path: &str) {
        let keys: Vec<CacheKey> = self
            .map
            .keys()
            .filter(|k| k.path() == path)
            .cloned()
            .collect();
        for k in keys {
            if let Some(e) = self.map.remove(&k) {
                self.bytes -= e.data.len();
            }
        }
    }
}

/// An [`ObjectStore`] wrapper with a bounded LRU over whole objects and byte
/// ranges. See the module docs for the coherence model.
pub struct CachedStore<S> {
    inner: S,
    capacity: usize,
    /// Largest single entry the cache will hold (bigger reads pass through;
    /// prevents one bulk object from evicting all the metadata).
    max_entry: usize,
    state: Mutex<LruState>,
    metrics: Arc<StoreMetrics>,
}

impl<S: ObjectStore> CachedStore<S> {
    /// Wrap `inner` with `capacity_bytes` of cache. Single entries larger
    /// than a quarter of the capacity are never cached.
    pub fn new(inner: S, capacity_bytes: usize) -> Self {
        let metrics = inner
            .store_metrics()
            .unwrap_or_else(|| Arc::new(StoreMetrics::new()));
        CachedStore {
            inner,
            capacity: capacity_bytes,
            max_entry: (capacity_bytes / 4).max(1),
            state: Mutex::new(LruState {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            metrics,
        }
    }

    /// Override the largest cacheable entry size.
    pub fn with_max_entry_bytes(mut self, max_entry: usize) -> Self {
        self.max_entry = max_entry.max(1);
        self
    }

    /// Bytes currently resident in the cache.
    pub fn cached_bytes(&self) -> usize {
        self.state.lock().bytes
    }

    /// Number of resident cache entries.
    pub fn cached_entries(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Drop every cached entry (counters are untouched).
    pub fn clear(&self) {
        let mut state = self.state.lock();
        state.map.clear();
        state.bytes = 0;
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ObjectStore> ObjectStore for CachedStore<S> {
    fn put(&self, path: &ObjectPath, data: Bytes) -> Result<()> {
        self.inner.put(path, data.clone())?;
        let mut state = self.state.lock();
        // Ranges of the old object are stale; the new whole object is known.
        state.invalidate_path(path.as_str());
        state.insert(
            CacheKey::Whole(path.as_str().to_string()),
            data,
            self.capacity,
            self.max_entry,
        );
        Ok(())
    }

    fn get(&self, path: &ObjectPath) -> Result<Bytes> {
        let key = CacheKey::Whole(path.as_str().to_string());
        if let Some(data) = self.state.lock().touch(&key) {
            self.metrics.record_cache_hit(data.len());
            return Ok(data);
        }
        self.metrics.record_cache_miss();
        let data = self.inner.get(path)?;
        self.state
            .lock()
            .insert(key, data.clone(), self.capacity, self.max_entry);
        Ok(data)
    }

    fn get_range(&self, path: &ObjectPath, start: usize, end: usize) -> Result<Bytes> {
        let key = CacheKey::Range(path.as_str().to_string(), start, end);
        {
            let mut state = self.state.lock();
            if let Some(data) = state.touch(&key) {
                drop(state);
                self.metrics.record_cache_hit(data.len());
                return Ok(data);
            }
            // A cached whole object can serve any of its ranges.
            let whole = CacheKey::Whole(path.as_str().to_string());
            if let Some(data) = state.touch(&whole) {
                if end <= data.len() {
                    let slice = data.slice(start..end);
                    drop(state);
                    self.metrics.record_cache_hit(slice.len());
                    return Ok(slice);
                }
            }
        }
        self.metrics.record_cache_miss();
        let data = self.inner.get_range(path, start, end)?;
        self.state
            .lock()
            .insert(key, data.clone(), self.capacity, self.max_entry);
        Ok(data)
    }

    fn head(&self, path: &ObjectPath) -> Result<usize> {
        // Size of a cached whole object is known without a round trip.
        let whole = CacheKey::Whole(path.as_str().to_string());
        if let Some(data) = self.state.lock().touch(&whole) {
            self.metrics.record_cache_hit(0);
            return Ok(data.len());
        }
        self.inner.head(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectPath>> {
        // Listings are not cached: they must observe every write immediately
        // and are off the per-query hot path.
        self.inner.list(prefix)
    }

    fn delete(&self, path: &ObjectPath) -> Result<()> {
        self.inner.delete(path)?;
        self.state.lock().invalidate_path(path.as_str());
        Ok(())
    }

    fn exists(&self, path: &ObjectPath) -> bool {
        if self
            .state
            .lock()
            .map
            .contains_key(&CacheKey::Whole(path.as_str().to_string()))
        {
            return true;
        }
        self.inner.exists(path)
    }

    fn put_if_matches(
        &self,
        path: &ObjectPath,
        expected: Option<&[u8]>,
        data: Bytes,
    ) -> Result<()> {
        self.inner.put_if_matches(path, expected, data.clone())?;
        let mut state = self.state.lock();
        state.invalidate_path(path.as_str());
        state.insert(
            CacheKey::Whole(path.as_str().to_string()),
            data,
            self.capacity,
            self.max_entry,
        );
        Ok(())
    }

    fn store_metrics(&self) -> Option<Arc<StoreMetrics>> {
        Some(Arc::clone(&self.metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{LatencyModel, SimulatedStore};
    use crate::memory::InMemoryStore;

    fn p(s: &str) -> ObjectPath {
        ObjectPath::new(s).unwrap()
    }

    fn store(capacity: usize) -> CachedStore<InMemoryStore> {
        CachedStore::new(InMemoryStore::new(), capacity)
    }

    #[test]
    fn repeated_get_hits_cache() {
        let s = store(1 << 20);
        s.put(&p("m/manifest.json"), Bytes::from_static(b"abc"))
            .unwrap();
        let m = s.store_metrics().unwrap();
        assert_eq!(
            s.get(&p("m/manifest.json")).unwrap(),
            Bytes::from_static(b"abc")
        );
        assert_eq!(
            s.get(&p("m/manifest.json")).unwrap(),
            Bytes::from_static(b"abc")
        );
        // put write-through seeds the cache: both gets hit.
        assert_eq!(m.cache_hits(), 2);
        assert_eq!(m.cache_misses(), 0);
        assert_eq!(m.cache_bytes_served(), 6);
    }

    #[test]
    fn range_hits_exact_and_whole() {
        let s = store(1 << 20);
        s.clear(); // no write-through help
        s.inner()
            .put(&p("f"), Bytes::from_static(b"0123456789"))
            .unwrap();
        let m = s.store_metrics().unwrap();
        assert_eq!(
            s.get_range(&p("f"), 2, 5).unwrap(),
            Bytes::from_static(b"234")
        );
        assert_eq!(m.cache_misses(), 1);
        assert_eq!(
            s.get_range(&p("f"), 2, 5).unwrap(),
            Bytes::from_static(b"234")
        );
        assert_eq!(m.cache_hits(), 1);
        // Whole object cached -> any range is a hit.
        s.get(&p("f")).unwrap();
        assert_eq!(
            s.get_range(&p("f"), 0, 9).unwrap(),
            Bytes::from_static(b"012345678")
        );
        assert_eq!(m.cache_hits(), 2);
    }

    #[test]
    fn writes_invalidate() {
        let s = store(1 << 20);
        s.put(&p("x"), Bytes::from_static(b"old")).unwrap();
        s.get_range(&p("x"), 0, 3).unwrap();
        s.put(&p("x"), Bytes::from_static(b"newer")).unwrap();
        assert_eq!(s.get(&p("x")).unwrap(), Bytes::from_static(b"newer"));
        assert_eq!(
            s.get_range(&p("x"), 0, 5).unwrap(),
            Bytes::from_static(b"newer")
        );
        s.delete(&p("x")).unwrap();
        assert!(s.get(&p("x")).is_err());
        assert!(!s.exists(&p("x")));
    }

    #[test]
    fn eviction_bounds_memory_and_preserves_bytes() {
        let s = CachedStore::new(InMemoryStore::new(), 64).with_max_entry_bytes(32);
        for i in 0..8 {
            s.put(&p(&format!("o/{i}")), Bytes::from(vec![i as u8; 20]))
                .unwrap();
        }
        assert!(s.cached_bytes() <= 64);
        // Every object still reads back identical bytes after eviction.
        for i in 0..8 {
            assert_eq!(
                s.get(&p(&format!("o/{i}"))).unwrap(),
                Bytes::from(vec![i as u8; 20])
            );
        }
    }

    #[test]
    fn oversized_entries_pass_through_uncached() {
        let s = CachedStore::new(InMemoryStore::new(), 1 << 20).with_max_entry_bytes(4);
        s.put(&p("big"), Bytes::from(vec![7u8; 100])).unwrap();
        assert_eq!(s.cached_entries(), 0);
        let m = s.store_metrics().unwrap();
        s.get(&p("big")).unwrap();
        s.get(&p("big")).unwrap();
        assert_eq!(m.cache_hits(), 0);
        assert_eq!(m.cache_misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let s = CachedStore::new(InMemoryStore::new(), 30).with_max_entry_bytes(10);
        s.put(&p("a"), Bytes::from(vec![1u8; 10])).unwrap();
        s.put(&p("b"), Bytes::from(vec![2u8; 10])).unwrap();
        s.put(&p("c"), Bytes::from(vec![3u8; 10])).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        s.get(&p("a")).unwrap();
        s.put(&p("d"), Bytes::from(vec![4u8; 10])).unwrap();
        let m = s.store_metrics().unwrap();
        let before = m.cache_misses();
        s.get(&p("a")).unwrap();
        assert_eq!(m.cache_misses(), before, "a should still be cached");
        s.get(&p("b")).unwrap();
        assert_eq!(m.cache_misses(), before + 1, "b should have been evicted");
    }

    #[test]
    fn folds_into_simulated_store_metrics() {
        let sim = SimulatedStore::new(InMemoryStore::new(), LatencyModel::s3_like());
        let sim_metrics = sim.metrics();
        let s = CachedStore::new(sim, 1 << 20);
        s.put(&p("a"), Bytes::from_static(b"hello")).unwrap();
        let serial_after_put = sim_metrics.simulated_time();
        s.get(&p("a")).unwrap();
        // Hit: no extra simulated latency, no store bytes moved, counters on
        // the *simulated store's* metrics object.
        assert_eq!(sim_metrics.simulated_time(), serial_after_put);
        assert_eq!(sim_metrics.bytes_read(), 0);
        assert_eq!(sim_metrics.cache_hits(), 1);
        assert_eq!(sim_metrics.cache_bytes_served(), 5);
    }

    #[test]
    fn head_served_from_cache() {
        let s = store(1 << 20);
        s.put(&p("a"), Bytes::from_static(b"12345")).unwrap();
        assert_eq!(s.head(&p("a")).unwrap(), 5);
        let m = s.store_metrics().unwrap();
        assert_eq!(m.cache_hits(), 1);
    }
}
