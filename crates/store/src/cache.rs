//! Per-store adapter over the shared [`BufferPool`].
//!
//! The paper's core observation is that object-store round trips dominate at
//! Reasonable Scale; the cheapest round trip is the one never made. Every
//! query re-reads the same *metadata*: the table's manifest, and each data
//! file's footer (a small tail range). [`CachedStore`] sits above any
//! [`ObjectStore`] and answers repeated whole-object GETs and exact range
//! GETs from memory — the "differential caching" lever of FaaS lakehouse
//! engines, applied to the metadata path.
//!
//! Since PR 5 the cache itself lives in [`crate::pool::BufferPool`] — a
//! process-wide, sharded, admission-controlled page cache with CRC32C entry
//! frames — and `CachedStore` is the thin adapter that routes one store's
//! traffic through a pool handle:
//!
//! - [`CachedStore::new`] builds a **private single-shard pool** of the given
//!   capacity: behavior, eviction order, and metrics are byte-identical to
//!   the seed per-store LRU. Hit/miss/byte counters are folded into the
//!   *inner* store's [`StoreMetrics`] when it exposes one (so a
//!   `SimulatedStore` under the cache reports latency and cache
//!   effectiveness in one place).
//! - [`CachedStore::with_pool`] attaches to a **shared** pool. Counters are
//!   *not* folded into the store's metrics — cache effectiveness is a
//!   property of the pool, not of any one store, so misattribution is
//!   avoided; read `pool.{hits,misses,...}` from [`PoolMetrics`] or the
//!   process metrics registry instead. (`ScanReport::cache_hits`, which
//!   reads per-store counters, reports 0 in shared mode by design.)
//!
//! Coherence model: all writers go *through* this wrapper (a `put`,
//! `put_if_matches`, or `delete` invalidates every cached entry for that
//! path). Lakehouse data and metadata objects are immutable once written —
//! only the catalog pointer mutates, and it mutates through the same handle —
//! so write-through invalidation is sufficient. A shared pool additionally
//! assumes every attached store views the same object universe (one lake,
//! many engines); invalidations are then visible to all of them at once.
//!
//! Cache hits charge no simulated latency and move no `bytes_read` — exactly
//! like a memory hit in front of S3.

use crate::error::Result;
use crate::metrics::StoreMetrics;
use crate::path::ObjectPath;
use crate::pool::{BufferPool, PoolKey, PoolMetrics};
use crate::ObjectStore;
use bytes::Bytes;
use std::sync::Arc;

/// An [`ObjectStore`] wrapper that serves whole objects and byte ranges from
/// a [`BufferPool`] — private by default, shareable across stores. See the
/// module docs for the coherence model.
pub struct CachedStore<S> {
    inner: S,
    pool: Arc<BufferPool>,
    metrics: Arc<StoreMetrics>,
    /// Fold hit/miss counters into `metrics` (private-pool mode only).
    fold: bool,
}

impl<S: ObjectStore> CachedStore<S> {
    /// Wrap `inner` with a private pool of `capacity_bytes`. Single entries
    /// larger than a quarter of the capacity are never cached.
    pub fn new(inner: S, capacity_bytes: usize) -> Self {
        let metrics = inner
            .store_metrics()
            .unwrap_or_else(|| Arc::new(StoreMetrics::new()));
        CachedStore {
            inner,
            pool: Arc::new(BufferPool::private(capacity_bytes)),
            metrics,
            fold: true,
        }
    }

    /// Wrap `inner` over an existing (typically shared) pool. Cache counters
    /// stay on the pool; the store's own metrics keep reporting only real
    /// store traffic.
    pub fn with_pool(inner: S, pool: Arc<BufferPool>) -> Self {
        let metrics = inner
            .store_metrics()
            .unwrap_or_else(|| Arc::new(StoreMetrics::new()));
        CachedStore {
            inner,
            pool,
            metrics,
            fold: false,
        }
    }

    /// Override the largest cacheable entry size.
    ///
    /// Adjusts the underlying pool — intended for privately-constructed
    /// pools; on a shared pool this changes the cap for every attached store.
    pub fn with_max_entry_bytes(self, max_entry: usize) -> Self {
        self.pool.set_max_entry_bytes(max_entry);
        self
    }

    /// Bytes currently resident in the pool.
    pub fn cached_bytes(&self) -> usize {
        self.pool.cached_bytes()
    }

    /// Number of resident pool entries.
    pub fn cached_entries(&self) -> usize {
        self.pool.cached_entries()
    }

    /// Drop every cached entry (counters are untouched).
    pub fn clear(&self) {
        self.pool.clear()
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The pool this store caches through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The pool's own metrics (hits/misses/admission/verification).
    pub fn pool_metrics(&self) -> Arc<PoolMetrics> {
        self.pool.metrics()
    }

    fn fold_hit(&self, bytes: usize) {
        if self.fold {
            self.metrics.record_cache_hit(bytes);
        }
    }

    fn fold_miss(&self) {
        if self.fold {
            self.metrics.record_cache_miss();
        }
    }
}

impl<S: ObjectStore> ObjectStore for CachedStore<S> {
    fn put(&self, path: &ObjectPath, data: Bytes) -> Result<()> {
        self.inner.put(path, data.clone())?;
        // Ranges of the old object are stale; the new whole object is known.
        self.pool.replace_whole(path.as_str(), data);
        Ok(())
    }

    fn get(&self, path: &ObjectPath) -> Result<Bytes> {
        let key = PoolKey::Whole(path.as_str().to_string());
        match self.pool.get_or_load(&key, || self.inner.get(path)) {
            Ok((data, true)) => {
                self.fold_hit(data.len());
                Ok(data)
            }
            Ok((data, false)) => {
                self.fold_miss();
                Ok(data)
            }
            Err(e) => {
                // The miss happened even though the load failed.
                self.fold_miss();
                Err(e)
            }
        }
    }

    fn get_range(&self, path: &ObjectPath, start: usize, end: usize) -> Result<Bytes> {
        let key = PoolKey::Range(path.as_str().to_string(), start, end);
        match self
            .pool
            .get_or_load(&key, || self.inner.get_range(path, start, end))
        {
            Ok((data, true)) => {
                self.fold_hit(data.len());
                Ok(data)
            }
            Ok((data, false)) => {
                self.fold_miss();
                Ok(data)
            }
            Err(e) => {
                self.fold_miss();
                Err(e)
            }
        }
    }

    fn head(&self, path: &ObjectPath) -> Result<usize> {
        // Size of a cached whole object is known without a round trip.
        if let Some(data) = self.pool.try_get_whole(path.as_str()) {
            self.fold_hit(0);
            return Ok(data.len());
        }
        self.inner.head(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectPath>> {
        // Listings are not cached: they must observe every write immediately
        // and are off the per-query hot path.
        self.inner.list(prefix)
    }

    fn delete(&self, path: &ObjectPath) -> Result<()> {
        self.inner.delete(path)?;
        self.pool.invalidate_path(path.as_str());
        Ok(())
    }

    fn exists(&self, path: &ObjectPath) -> bool {
        if self.pool.contains_whole(path.as_str()) {
            return true;
        }
        self.inner.exists(path)
    }

    fn put_if_matches(
        &self,
        path: &ObjectPath,
        expected: Option<&[u8]>,
        data: Bytes,
    ) -> Result<()> {
        self.inner.put_if_matches(path, expected, data.clone())?;
        self.pool.replace_whole(path.as_str(), data);
        Ok(())
    }

    fn store_metrics(&self) -> Option<Arc<StoreMetrics>> {
        Some(Arc::clone(&self.metrics))
    }

    fn invalidate_corrupt(&self, path: &ObjectPath) {
        // A downstream checksum rejected bytes read through this store: the
        // pool entry that held them is poisoned — drop it and count the
        // verification failure so the retry re-fetches from the backend.
        self.pool.invalidate_corrupt(path.as_str());
        self.inner.invalidate_corrupt(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{LatencyModel, SimulatedStore};
    use crate::memory::InMemoryStore;

    fn p(s: &str) -> ObjectPath {
        ObjectPath::new(s).unwrap()
    }

    fn store(capacity: usize) -> CachedStore<InMemoryStore> {
        CachedStore::new(InMemoryStore::new(), capacity)
    }

    #[test]
    fn repeated_get_hits_cache() {
        let s = store(1 << 20);
        s.put(&p("m/manifest.json"), Bytes::from_static(b"abc"))
            .unwrap();
        let m = s.store_metrics().unwrap();
        assert_eq!(
            s.get(&p("m/manifest.json")).unwrap(),
            Bytes::from_static(b"abc")
        );
        assert_eq!(
            s.get(&p("m/manifest.json")).unwrap(),
            Bytes::from_static(b"abc")
        );
        // put write-through seeds the cache: both gets hit.
        assert_eq!(m.cache_hits(), 2);
        assert_eq!(m.cache_misses(), 0);
        assert_eq!(m.cache_bytes_served(), 6);
    }

    #[test]
    fn range_hits_exact_and_whole() {
        let s = store(1 << 20);
        s.clear(); // no write-through help
        s.inner()
            .put(&p("f"), Bytes::from_static(b"0123456789"))
            .unwrap();
        let m = s.store_metrics().unwrap();
        assert_eq!(
            s.get_range(&p("f"), 2, 5).unwrap(),
            Bytes::from_static(b"234")
        );
        assert_eq!(m.cache_misses(), 1);
        assert_eq!(
            s.get_range(&p("f"), 2, 5).unwrap(),
            Bytes::from_static(b"234")
        );
        assert_eq!(m.cache_hits(), 1);
        // Whole object cached -> any range is a hit.
        s.get(&p("f")).unwrap();
        assert_eq!(
            s.get_range(&p("f"), 0, 9).unwrap(),
            Bytes::from_static(b"012345678")
        );
        assert_eq!(m.cache_hits(), 2);
    }

    #[test]
    fn writes_invalidate() {
        let s = store(1 << 20);
        s.put(&p("x"), Bytes::from_static(b"old")).unwrap();
        s.get_range(&p("x"), 0, 3).unwrap();
        s.put(&p("x"), Bytes::from_static(b"newer")).unwrap();
        assert_eq!(s.get(&p("x")).unwrap(), Bytes::from_static(b"newer"));
        assert_eq!(
            s.get_range(&p("x"), 0, 5).unwrap(),
            Bytes::from_static(b"newer")
        );
        s.delete(&p("x")).unwrap();
        assert!(s.get(&p("x")).is_err());
        assert!(!s.exists(&p("x")));
    }

    #[test]
    fn eviction_bounds_memory_and_preserves_bytes() {
        let s = CachedStore::new(InMemoryStore::new(), 64).with_max_entry_bytes(32);
        for i in 0..8 {
            s.put(&p(&format!("o/{i}")), Bytes::from(vec![i as u8; 20]))
                .unwrap();
        }
        assert!(s.cached_bytes() <= 64);
        // Every object still reads back identical bytes after eviction.
        for i in 0..8 {
            assert_eq!(
                s.get(&p(&format!("o/{i}"))).unwrap(),
                Bytes::from(vec![i as u8; 20])
            );
        }
    }

    #[test]
    fn oversized_entries_pass_through_uncached() {
        let s = CachedStore::new(InMemoryStore::new(), 1 << 20).with_max_entry_bytes(4);
        s.put(&p("big"), Bytes::from(vec![7u8; 100])).unwrap();
        assert_eq!(s.cached_entries(), 0);
        let m = s.store_metrics().unwrap();
        s.get(&p("big")).unwrap();
        s.get(&p("big")).unwrap();
        assert_eq!(m.cache_hits(), 0);
        assert_eq!(m.cache_misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let s = CachedStore::new(InMemoryStore::new(), 30).with_max_entry_bytes(10);
        s.put(&p("a"), Bytes::from(vec![1u8; 10])).unwrap();
        s.put(&p("b"), Bytes::from(vec![2u8; 10])).unwrap();
        s.put(&p("c"), Bytes::from(vec![3u8; 10])).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        s.get(&p("a")).unwrap();
        s.put(&p("d"), Bytes::from(vec![4u8; 10])).unwrap();
        let m = s.store_metrics().unwrap();
        let before = m.cache_misses();
        s.get(&p("a")).unwrap();
        assert_eq!(m.cache_misses(), before, "a should still be cached");
        s.get(&p("b")).unwrap();
        assert_eq!(m.cache_misses(), before + 1, "b should have been evicted");
    }

    #[test]
    fn folds_into_simulated_store_metrics() {
        let sim = SimulatedStore::new(InMemoryStore::new(), LatencyModel::s3_like());
        let sim_metrics = sim.metrics();
        let s = CachedStore::new(sim, 1 << 20);
        s.put(&p("a"), Bytes::from_static(b"hello")).unwrap();
        let serial_after_put = sim_metrics.simulated_time();
        s.get(&p("a")).unwrap();
        // Hit: no extra simulated latency, no store bytes moved, counters on
        // the *simulated store's* metrics object.
        assert_eq!(sim_metrics.simulated_time(), serial_after_put);
        assert_eq!(sim_metrics.bytes_read(), 0);
        assert_eq!(sim_metrics.cache_hits(), 1);
        assert_eq!(sim_metrics.cache_bytes_served(), 5);
    }

    #[test]
    fn head_served_from_cache() {
        let s = store(1 << 20);
        s.put(&p("a"), Bytes::from_static(b"12345")).unwrap();
        assert_eq!(s.head(&p("a")).unwrap(), 5);
        let m = s.store_metrics().unwrap();
        assert_eq!(m.cache_hits(), 1);
    }

    #[test]
    fn shared_pool_serves_across_stores_without_folding() {
        let pool = Arc::new(BufferPool::new(1 << 20));
        let backend = Arc::new(InMemoryStore::new());
        let a = CachedStore::with_pool(Arc::clone(&backend), Arc::clone(&pool));
        let b = CachedStore::with_pool(Arc::clone(&backend), Arc::clone(&pool));
        a.put(&p("shared/obj"), Bytes::from_static(b"payload"))
            .unwrap();
        // Store B never fetched this object, yet reads it from the pool.
        assert_eq!(
            b.get(&p("shared/obj")).unwrap(),
            Bytes::from_static(b"payload")
        );
        let pm = pool.metrics();
        assert_eq!(pm.hits(), 1);
        // No folding: each store's own metrics stay clean of cache counters.
        assert_eq!(a.store_metrics().unwrap().cache_hits(), 0);
        assert_eq!(b.store_metrics().unwrap().cache_hits(), 0);
    }

    #[test]
    fn shared_pool_invalidation_visible_to_all_stores() {
        let pool = Arc::new(BufferPool::new(1 << 20));
        let backend = Arc::new(InMemoryStore::new());
        let a = CachedStore::with_pool(Arc::clone(&backend), Arc::clone(&pool));
        let b = CachedStore::with_pool(Arc::clone(&backend), Arc::clone(&pool));
        a.put(&p("k"), Bytes::from_static(b"v1")).unwrap();
        assert_eq!(b.get(&p("k")).unwrap(), Bytes::from_static(b"v1"));
        b.put(&p("k"), Bytes::from_static(b"v2")).unwrap();
        // A's next read observes B's write immediately: one pool, one truth.
        assert_eq!(a.get(&p("k")).unwrap(), Bytes::from_static(b"v2"));
    }

    #[test]
    fn invalidate_corrupt_drops_entry_and_counts() {
        let s = store(1 << 20);
        s.put(&p("t"), Bytes::from_static(b"half-written")).unwrap();
        assert_eq!(s.cached_entries(), 1);
        s.invalidate_corrupt(&p("t"));
        assert_eq!(s.cached_entries(), 0);
        assert_eq!(s.pool_metrics().verify_failures(), 1);
        // The next read re-fetches clean bytes from the backend.
        assert_eq!(s.get(&p("t")).unwrap(), Bytes::from_static(b"half-written"));
    }
}
