//! # lakehouse-store
//!
//! The object-storage substrate of the lakehouse (the paper's S3 layer).
//!
//! A data lake "is ultimately made of files" (paper §4.2): this crate
//! provides the [`ObjectStore`] trait with two backends — an in-memory store
//! for tests and a local-filesystem store — plus a **latency-simulating
//! wrapper** ([`SimulatedStore`]) that models S3-like first-byte latency and
//! bandwidth-limited transfers. The simulation is what lets the benchmark
//! harness reproduce the paper's claim that *moving data is the bottleneck at
//! reasonable scale* (§4.4.2) without a real cloud account.
//!
//! All wall-clock effects are also recorded in [`StoreMetrics`], so benches
//! can read accumulated *simulated* time deterministically instead of
//! sleeping.

pub mod cache;
pub mod chaos;
pub mod error;
pub mod io;
pub mod latency;
pub mod local;
pub mod memory;
pub mod metrics;
pub mod path;
pub mod pool;
pub mod retry;

pub use cache::CachedStore;
pub use chaos::{ChaosConfig, ChaosStore, FaultKind, FaultingStore, FlakyStore};
pub use error::{killed_message, Result, StoreError, KILLED_PREFIX};
pub use io::{HedgePolicy, IoCompletion, IoConfig, IoDispatcher, IoStats, IoTicket};
pub use latency::{LatencyModel, SimulatedStore, SleepMode};
pub use local::LocalFsStore;
pub use memory::InMemoryStore;
pub use metrics::StoreMetrics;
pub use path::ObjectPath;
pub use pool::{BufferPool, PoolKey, PoolMetrics};
pub use retry::{Backoff, CircuitBreaker, RetryPolicy, RetryStore};

use bytes::Bytes;
use std::sync::Arc;

/// A minimal object store: the API surface the rest of the lakehouse needs
/// (a subset of S3 semantics — whole-object put/get, prefix list, delete).
pub trait ObjectStore: Send + Sync {
    /// Store an object, overwriting any existing object at `path`.
    fn put(&self, path: &ObjectPath, data: Bytes) -> Result<()>;

    /// Fetch a whole object.
    fn get(&self, path: &ObjectPath) -> Result<Bytes>;

    /// Fetch a byte range `[start, end)` of an object (used for file footers).
    fn get_range(&self, path: &ObjectPath, start: usize, end: usize) -> Result<Bytes> {
        let data = self.get(path)?;
        if start > end || end > data.len() {
            return Err(StoreError::InvalidRange {
                start,
                end,
                len: data.len(),
            });
        }
        Ok(data.slice(start..end))
    }

    /// Object size in bytes without fetching the body.
    fn head(&self, path: &ObjectPath) -> Result<usize>;

    /// All object paths under a prefix, lexicographically sorted.
    fn list(&self, prefix: &str) -> Result<Vec<ObjectPath>>;

    /// Delete an object. Deleting a missing object is an error (callers that
    /// want idempotent delete check `exists` first).
    fn delete(&self, path: &ObjectPath) -> Result<()>;

    /// Whether an object exists.
    fn exists(&self, path: &ObjectPath) -> bool {
        self.head(path).is_ok()
    }

    /// Atomic compare-and-swap put: succeed only if the object's current
    /// content matches `expected` (`None` = must not exist). This is the
    /// primitive the catalog's optimistic commits build on.
    fn put_if_matches(&self, path: &ObjectPath, expected: Option<&[u8]>, data: Bytes)
        -> Result<()>;

    /// The metrics sink this store records into, if it has one. Lets code
    /// holding only a `dyn ObjectStore` (e.g. a table scan) read simulated
    /// latency and cache counters without knowing the wrapper stack.
    fn store_metrics(&self) -> Option<Arc<StoreMetrics>> {
        None
    }

    /// Report that bytes read for `path` failed a *downstream* integrity
    /// check (file-footer or column-chunk checksum). Cache layers drop every
    /// entry for the path so a retry re-fetches from the backend instead of
    /// re-serving the poisoned bytes; stores without a cache do nothing.
    fn invalidate_corrupt(&self, path: &ObjectPath) {
        let _ = path;
    }
}

impl<T: ObjectStore + ?Sized> ObjectStore for Box<T> {
    fn put(&self, path: &ObjectPath, data: Bytes) -> Result<()> {
        (**self).put(path, data)
    }
    fn get(&self, path: &ObjectPath) -> Result<Bytes> {
        (**self).get(path)
    }
    fn get_range(&self, path: &ObjectPath, start: usize, end: usize) -> Result<Bytes> {
        (**self).get_range(path, start, end)
    }
    fn head(&self, path: &ObjectPath) -> Result<usize> {
        (**self).head(path)
    }
    fn list(&self, prefix: &str) -> Result<Vec<ObjectPath>> {
        (**self).list(prefix)
    }
    fn delete(&self, path: &ObjectPath) -> Result<()> {
        (**self).delete(path)
    }
    fn exists(&self, path: &ObjectPath) -> bool {
        (**self).exists(path)
    }
    fn put_if_matches(
        &self,
        path: &ObjectPath,
        expected: Option<&[u8]>,
        data: Bytes,
    ) -> Result<()> {
        (**self).put_if_matches(path, expected, data)
    }
    fn store_metrics(&self) -> Option<Arc<StoreMetrics>> {
        (**self).store_metrics()
    }
    fn invalidate_corrupt(&self, path: &ObjectPath) {
        (**self).invalidate_corrupt(path)
    }
}

impl<T: ObjectStore + ?Sized> ObjectStore for Arc<T> {
    fn put(&self, path: &ObjectPath, data: Bytes) -> Result<()> {
        (**self).put(path, data)
    }
    fn get(&self, path: &ObjectPath) -> Result<Bytes> {
        (**self).get(path)
    }
    fn get_range(&self, path: &ObjectPath, start: usize, end: usize) -> Result<Bytes> {
        (**self).get_range(path, start, end)
    }
    fn head(&self, path: &ObjectPath) -> Result<usize> {
        (**self).head(path)
    }
    fn list(&self, prefix: &str) -> Result<Vec<ObjectPath>> {
        (**self).list(prefix)
    }
    fn delete(&self, path: &ObjectPath) -> Result<()> {
        (**self).delete(path)
    }
    fn exists(&self, path: &ObjectPath) -> bool {
        (**self).exists(path)
    }
    fn put_if_matches(
        &self,
        path: &ObjectPath,
        expected: Option<&[u8]>,
        data: Bytes,
    ) -> Result<()> {
        (**self).put_if_matches(path, expected, data)
    }
    fn store_metrics(&self) -> Option<Arc<StoreMetrics>> {
        (**self).store_metrics()
    }
    fn invalidate_corrupt(&self, path: &ObjectPath) {
        (**self).invalidate_corrupt(path)
    }
}
