//! Completion-based async I/O dispatcher over any [`ObjectStore`].
//!
//! The scan pool overlaps *simulated* latency by bookkeeping; this module
//! makes the overlap real. An [`IoDispatcher`] is an io_uring-shaped
//! front-end to a synchronous store: callers `submit_get` /
//! `submit_get_range` and receive an [`IoTicket`]; a bounded submission
//! queue feeds a pool of worker threads that execute the blocking store
//! calls, so N in-flight gets genuinely overlap even when the store really
//! sleeps (`SleepMode::Scaled`/`Real`). Completions are claimed with
//! [`IoDispatcher::poll`] (non-blocking) or [`IoDispatcher::wait`]
//! (blocking), and each carries the simulated lane-nanos the request was
//! charged so scan reports can fold overlapped work into per-lane totals.
//!
//! **Hedged reads** live in `wait`: when a request's wall time exceeds the
//! live p95 of the store's latency reservoir (converted to wall time via
//! [`StoreMetrics::wall_scale`]), a duplicate request is submitted and the
//! first completion wins; the loser is cancelled (dequeued before it
//! reaches the backend when possible, its result discarded otherwise). A
//! [`CircuitBreaker`] on the hedge *win rate* suppresses hedging when the
//! store is globally slow — hedges that fire but never win are pure load.
//!
//! **Cancellation**: [`IoDispatcher::cancel`] removes a queued request
//! before any backend call is issued — this is what lets a streaming
//! `LIMIT` abandon speculative read-ahead without paying for it.

use crate::error::{Result, StoreError};
use crate::metrics::StoreMetrics;
use crate::path::ObjectPath;
use crate::retry::CircuitBreaker;
use crate::ObjectStore;
use bytes::Bytes;
use lakehouse_obs::{Counter, Gauge};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for an [`IoDispatcher`].
#[derive(Debug, Clone)]
pub struct IoConfig {
    /// Worker threads = maximum genuinely concurrent backend calls.
    pub depth: usize,
    /// Submission-queue capacity; `submit_*` blocks when full (backpressure
    /// so read-ahead cannot run unboundedly far in front of the consumer).
    pub queue_cap: usize,
    /// Hedged-read policy; `None` disables hedging.
    pub hedge: Option<HedgePolicy>,
}

impl IoConfig {
    /// `depth` workers, a `2 * depth` queue, no hedging.
    pub fn new(depth: usize) -> IoConfig {
        let depth = depth.max(1);
        IoConfig {
            depth,
            queue_cap: depth * 2,
            hedge: None,
        }
    }

    pub fn with_queue_cap(mut self, cap: usize) -> IoConfig {
        self.queue_cap = cap.max(1);
        self
    }

    pub fn with_hedge(mut self, hedge: HedgePolicy) -> IoConfig {
        self.hedge = Some(hedge);
        self
    }
}

/// When and how `wait` hedges a slow request.
#[derive(Debug, Clone)]
pub struct HedgePolicy {
    /// Latency quantile of the live [`StoreMetrics`] reservoir after which a
    /// request is considered tail-slow (default p95).
    pub quantile: f64,
    /// Floor on the hedge trigger delay, so a cold or near-zero reservoir
    /// cannot make every request hedge instantly.
    pub min_delay: Duration,
    /// Fixed trigger delay override; bypasses the live quantile entirely.
    /// Used by deterministic tests and available for operators who know
    /// their tail.
    pub hedge_after: Option<Duration>,
    /// Hedge-win outcomes remembered by the breaker.
    pub breaker_window: usize,
    /// Minimum hedge win rate over the window; below it the breaker opens.
    pub breaker_min_win_rate: f64,
    /// Admission checks swallowed while open before probing again.
    pub breaker_cooldown: u64,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            quantile: 0.95,
            min_delay: Duration::from_millis(1),
            hedge_after: None,
            breaker_window: 16,
            breaker_min_win_rate: 0.25,
            breaker_cooldown: 64,
        }
    }
}

impl HedgePolicy {
    pub fn with_hedge_after(mut self, delay: Duration) -> HedgePolicy {
        self.hedge_after = Some(delay);
        self
    }
}

/// Completion token for a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoTicket(u64);

/// A finished request: the payload plus the latency it was charged.
#[derive(Debug)]
pub struct IoCompletion {
    pub result: Result<Bytes>,
    /// Simulated lane-nanos the executing worker was charged for this
    /// request (0 when the store has no metrics). Callers fold this into
    /// their own lane accounting to keep overlapped sim wall-clock honest.
    pub sim_nanos: u64,
    /// Real elapsed time from submission to completion.
    pub wall: Duration,
    /// Whether this payload came from a hedge request rather than the
    /// original submission.
    pub hedged: bool,
}

#[derive(Debug, Clone)]
enum IoOp {
    Get(ObjectPath),
    GetRange(ObjectPath, usize, usize),
}

enum SlotState {
    Queued,
    Running,
    Done(IoCompletion),
    /// Cancelled while running; the worker discards the result and removes
    /// the slot when the backend call returns.
    Abandoned,
}

struct Slot {
    op: IoOp,
    deadline: Option<Duration>,
    submitted_at: Instant,
    hedge: bool,
    /// Query context captured at submit time: the worker enters it around
    /// the backend call, so bytes/ops (including speculative read-ahead and
    /// hedges) are charged to the query that submitted the request, not to
    /// whichever worker thread happens to run it.
    ctx: Option<lakehouse_obs::QueryCtx>,
    state: SlotState,
}

/// Per-dispatcher counters (tests read these; process-global `io.*`
/// registry counters mirror them for `bauplan profile`).
#[derive(Debug, Default)]
struct StatsInner {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    hedges_fired: AtomicU64,
    hedges_won: AtomicU64,
    inflight: AtomicU64,
}

/// Snapshot of a dispatcher's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Requests accepted (including hedges).
    pub submitted: u64,
    /// Completions claimed by `poll`/`wait`.
    pub completed: u64,
    /// Requests cancelled before their result was claimed (dequeued,
    /// abandoned mid-flight, or discarded as a hedge loser).
    pub cancelled: u64,
    /// Hedge requests issued.
    pub hedges_fired: u64,
    /// Races the hedge won.
    pub hedges_won: u64,
    /// Requests currently submitted but neither claimed nor cancelled.
    pub inflight: u64,
}

struct ObsCounters {
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    cancelled: Arc<Counter>,
    hedge_fired: Arc<Counter>,
    hedge_won: Arc<Counter>,
    hedge_cancelled: Arc<Counter>,
    inflight: Arc<Gauge>,
}

impl ObsCounters {
    fn register() -> ObsCounters {
        let reg = lakehouse_obs::global();
        ObsCounters {
            submitted: reg.counter("io.submitted"),
            completed: reg.counter("io.completed"),
            cancelled: reg.counter("io.cancelled"),
            hedge_fired: reg.counter("io.hedge_fired"),
            hedge_won: reg.counter("io.hedge_won"),
            hedge_cancelled: reg.counter("io.hedge_cancelled"),
            inflight: reg.gauge("io.inflight"),
        }
    }
}

struct Shared {
    store: Arc<dyn ObjectStore>,
    metrics: Option<Arc<StoreMetrics>>,
    queue_cap: usize,
    /// Submission queue of request ids; `slots` holds the payloads.
    queue: Mutex<VecDeque<u64>>,
    /// Wakes workers when work arrives (or shutdown).
    work_ready: Condvar,
    /// Wakes blocked submitters when queue space frees.
    space_ready: Condvar,
    slots: Mutex<HashMap<u64, Slot>>,
    /// Wakes `wait` when any slot transitions to Done.
    completion_ready: Condvar,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    stats: StatsInner,
    obs: ObsCounters,
}

impl Shared {
    fn dec_inflight(&self) {
        let prev = self.stats.inflight.fetch_sub(1, Ordering::Relaxed);
        self.obs.inflight.set(prev.saturating_sub(1));
    }

    fn note_cancelled(&self) {
        self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
        self.obs.cancelled.inc();
        self.dec_inflight();
    }
}

/// Bounded-queue worker-pool dispatcher. See the module docs.
pub struct IoDispatcher {
    shared: Arc<Shared>,
    breaker: Option<CircuitBreaker>,
    hedge: Option<HedgePolicy>,
    depth: usize,
    workers: Vec<JoinHandle<()>>,
}

impl IoDispatcher {
    pub fn new(store: Arc<dyn ObjectStore>, config: IoConfig) -> IoDispatcher {
        let metrics = store.store_metrics();
        let shared = Arc::new(Shared {
            store,
            metrics,
            queue_cap: config.queue_cap.max(1),
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            slots: Mutex::new(HashMap::new()),
            completion_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            stats: StatsInner::default(),
            obs: ObsCounters::register(),
        });
        let workers = (0..config.depth.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("io-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn io worker")
            })
            .collect();
        let breaker = config.hedge.as_ref().map(|h| {
            CircuitBreaker::new(h.breaker_window, h.breaker_min_win_rate, h.breaker_cooldown)
        });
        IoDispatcher {
            shared,
            breaker,
            hedge: config.hedge,
            depth: config.depth.max(1),
            workers,
        }
    }

    /// Worker-pool size = maximum genuinely concurrent backend calls.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Submit a whole-object get. Blocks while the submission queue is full.
    pub fn submit_get(&self, path: &ObjectPath, deadline: Option<Duration>) -> IoTicket {
        self.submit(IoOp::Get(path.clone()), deadline, false, false)
    }

    /// Submit a byte-range get. Blocks while the submission queue is full.
    pub fn submit_get_range(
        &self,
        path: &ObjectPath,
        start: usize,
        end: usize,
        deadline: Option<Duration>,
    ) -> IoTicket {
        self.submit(
            IoOp::GetRange(path.clone(), start, end),
            deadline,
            false,
            false,
        )
    }

    fn submit(&self, op: IoOp, deadline: Option<Duration>, hedge: bool, front: bool) -> IoTicket {
        let sh = &self.shared;
        let id = sh.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut queue = sh.queue.lock().expect("io queue poisoned");
            // Hedges bypass backpressure: they are latency-critical, at most
            // one per in-flight wait, and jump the line past read-ahead.
            if !hedge {
                while queue.len() >= sh.queue_cap {
                    queue = sh.space_ready.wait(queue).expect("io queue poisoned");
                }
            }
            sh.slots.lock().expect("io slots poisoned").insert(
                id,
                Slot {
                    op,
                    deadline,
                    submitted_at: Instant::now(),
                    hedge,
                    ctx: lakehouse_obs::QueryCtx::current(),
                    state: SlotState::Queued,
                },
            );
            if front {
                queue.push_front(id);
            } else {
                queue.push_back(id);
            }
            sh.work_ready.notify_one();
        }
        sh.stats.submitted.fetch_add(1, Ordering::Relaxed);
        sh.obs.submitted.inc();
        let cur = sh.stats.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        sh.obs.inflight.set(cur);
        IoTicket(id)
    }

    /// Non-blocking: claim the completion if the request has finished.
    pub fn poll(&self, ticket: IoTicket) -> Option<IoCompletion> {
        let sh = &self.shared;
        let mut slots = sh.slots.lock().expect("io slots poisoned");
        match slots.get(&ticket.0) {
            Some(Slot {
                state: SlotState::Done(_),
                ..
            }) => {
                let slot = slots.remove(&ticket.0).expect("slot just seen");
                drop(slots);
                sh.stats.completed.fetch_add(1, Ordering::Relaxed);
                sh.obs.completed.inc();
                sh.dec_inflight();
                match slot.state {
                    SlotState::Done(c) => Some(c),
                    _ => unreachable!("matched Done above"),
                }
            }
            _ => None,
        }
    }

    /// Block until the request completes, hedging it if it runs tail-slow
    /// (see module docs). Returns an error completion for unknown tickets.
    pub fn wait(&self, ticket: IoTicket) -> IoCompletion {
        match self.hedge_delay() {
            Some(delay) => self.wait_hedged(ticket, delay),
            None => self.wait_plain(ticket),
        }
    }

    /// Cancel a request. Queued requests are dequeued before any backend
    /// call; running ones have their result discarded on completion;
    /// finished-but-unclaimed ones are dropped. Returns false if the ticket
    /// was already claimed or cancelled.
    pub fn cancel(&self, ticket: IoTicket) -> bool {
        let sh = &self.shared;
        let mut slots = sh.slots.lock().expect("io slots poisoned");
        match slots.get_mut(&ticket.0) {
            Some(slot) => match slot.state {
                SlotState::Queued => {
                    // Leave the ghost id in the queue; the worker skips ids
                    // with no slot, so no backend call is ever issued.
                    slots.remove(&ticket.0);
                    drop(slots);
                    sh.note_cancelled();
                    true
                }
                SlotState::Running => {
                    slot.state = SlotState::Abandoned;
                    drop(slots);
                    sh.note_cancelled();
                    true
                }
                SlotState::Done(_) => {
                    slots.remove(&ticket.0);
                    drop(slots);
                    sh.note_cancelled();
                    true
                }
                SlotState::Abandoned => false,
            },
            None => false,
        }
    }

    /// Lifetime counters for this dispatcher instance.
    pub fn stats(&self) -> IoStats {
        let s = &self.shared.stats;
        IoStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            hedges_fired: s.hedges_fired.load(Ordering::Relaxed),
            hedges_won: s.hedges_won.load(Ordering::Relaxed),
            inflight: s.inflight.load(Ordering::Relaxed),
        }
    }

    /// Whether the hedge circuit breaker is currently open.
    pub fn hedge_breaker_open(&self) -> bool {
        self.breaker.as_ref().is_some_and(CircuitBreaker::is_open)
    }

    /// The wall-clock delay after which `wait` hedges, if hedging can work
    /// right now. `None` when hedging is disabled, the store records no
    /// latency, or simulated latency never sleeps (`wall_scale` 0 — tail
    /// latency does not exist in wall time, so a timeout can never fire).
    fn hedge_delay(&self) -> Option<Duration> {
        let policy = self.hedge.as_ref()?;
        if let Some(fixed) = policy.hedge_after {
            return Some(fixed.max(policy.min_delay));
        }
        let metrics = self.shared.metrics.as_ref()?;
        let scale = metrics.wall_scale();
        if scale <= 0.0 {
            return None;
        }
        let sim_p = metrics.latency_percentile(policy.quantile)?;
        Some(sim_p.mul_f64(scale).max(policy.min_delay))
    }

    fn wait_plain(&self, ticket: IoTicket) -> IoCompletion {
        let sh = &self.shared;
        let ctx = lakehouse_obs::QueryCtx::current();
        let mut slots = sh.slots.lock().expect("io slots poisoned");
        loop {
            match take_if_done(&mut slots, ticket.0) {
                TakeResult::Done(c) => {
                    drop(slots);
                    sh.stats.completed.fetch_add(1, Ordering::Relaxed);
                    sh.obs.completed.inc();
                    sh.dec_inflight();
                    return c;
                }
                TakeResult::Gone => {
                    drop(slots);
                    return unknown_ticket();
                }
                TakeResult::Pending => {
                    // Cooperative cancellation: a killed query abandons the
                    // ticket (cancelling it so in-flight accounting drains)
                    // instead of blocking until the backend call lands.
                    if let Some(reason) = check_token(&ctx) {
                        drop(slots);
                        self.cancel(ticket);
                        return killed_completion(reason);
                    }
                    let (guard, _timeout) = sh
                        .completion_ready
                        .wait_timeout(slots, TOKEN_POLL)
                        .expect("io slots poisoned");
                    slots = guard;
                }
            }
        }
    }

    fn wait_hedged(&self, ticket: IoTicket, delay: Duration) -> IoCompletion {
        let sh = &self.shared;
        let ctx = lakehouse_obs::QueryCtx::current();
        let started = Instant::now();
        // Phase 1: give the primary its hedge window.
        {
            let mut slots = sh.slots.lock().expect("io slots poisoned");
            loop {
                match take_if_done(&mut slots, ticket.0) {
                    TakeResult::Done(c) => {
                        drop(slots);
                        sh.stats.completed.fetch_add(1, Ordering::Relaxed);
                        sh.obs.completed.inc();
                        sh.dec_inflight();
                        return c;
                    }
                    TakeResult::Gone => {
                        drop(slots);
                        return unknown_ticket();
                    }
                    TakeResult::Pending => {}
                }
                if let Some(reason) = check_token(&ctx) {
                    drop(slots);
                    self.cancel(ticket);
                    return killed_completion(reason);
                }
                let elapsed = started.elapsed();
                if elapsed >= delay {
                    break;
                }
                let (guard, _timeout) = sh
                    .completion_ready
                    .wait_timeout(slots, (delay - elapsed).min(TOKEN_POLL))
                    .expect("io slots poisoned");
                slots = guard;
            }
        }
        // Tail-slow. Ask the breaker whether a hedge is worth issuing.
        let allowed = self.breaker.as_ref().map(CircuitBreaker::allow);
        if allowed == Some(false) {
            return self.wait_plain(ticket);
        }
        let Some((op, deadline)) = ({
            let slots = sh.slots.lock().expect("io slots poisoned");
            slots.get(&ticket.0).map(|s| (s.op.clone(), s.deadline))
        }) else {
            return unknown_ticket();
        };
        let hedge_path = match &op {
            IoOp::Get(path) | IoOp::GetRange(path, _, _) => path.to_string(),
        };
        let hedge_ticket = self.submit(op, deadline, true, true);
        sh.stats.hedges_fired.fetch_add(1, Ordering::Relaxed);
        sh.obs.hedge_fired.inc();
        lakehouse_obs::recorder().record(lakehouse_obs::EventKind::HedgeFired, &hedge_path, 0);
        // Phase 2: first completion wins; cancel the loser.
        let mut slots = sh.slots.lock().expect("io slots poisoned");
        loop {
            let (winner, loser, hedged) = match take_if_done(&mut slots, ticket.0) {
                TakeResult::Done(c) => (c, hedge_ticket, false),
                TakeResult::Gone => {
                    drop(slots);
                    return unknown_ticket();
                }
                TakeResult::Pending => match take_if_done(&mut slots, hedge_ticket.0) {
                    TakeResult::Done(c) => (c, ticket, true),
                    _ => {
                        // A kill abandons both racers so neither leaks.
                        if let Some(reason) = check_token(&ctx) {
                            drop(slots);
                            self.cancel(ticket);
                            self.cancel(hedge_ticket);
                            return killed_completion(reason);
                        }
                        let (guard, _timeout) = sh
                            .completion_ready
                            .wait_timeout(slots, TOKEN_POLL)
                            .expect("io slots poisoned");
                        slots = guard;
                        continue;
                    }
                },
            };
            drop(slots);
            sh.stats.completed.fetch_add(1, Ordering::Relaxed);
            sh.obs.completed.inc();
            sh.dec_inflight();
            if hedged {
                sh.stats.hedges_won.fetch_add(1, Ordering::Relaxed);
                sh.obs.hedge_won.inc();
                lakehouse_obs::recorder().record(
                    lakehouse_obs::EventKind::HedgeWon,
                    &hedge_path,
                    winner.sim_nanos,
                );
            }
            if let Some(b) = &self.breaker {
                b.record(hedged);
            }
            if self.cancel(loser) {
                sh.obs.hedge_cancelled.inc();
            }
            return IoCompletion { hedged, ..winner };
        }
    }
}

impl Drop for IoDispatcher {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Grab the queue lock so workers blocked in wait() observe the
        // flag on wake-up; notify everyone out of their condvars.
        {
            let _queue = self.shared.queue.lock().expect("io queue poisoned");
            self.shared.work_ready.notify_all();
            self.shared.space_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// How often a blocked `wait` re-checks its query's cancel token. Bounds
/// how long a killed query can stay parked on the completion condvar.
const TOKEN_POLL: Duration = Duration::from_millis(5);

/// The waiter's token verdict, if it has a context and the token tripped.
fn check_token(ctx: &Option<lakehouse_obs::QueryCtx>) -> Option<lakehouse_obs::KillReason> {
    ctx.as_ref().and_then(|c| c.check().err())
}

fn killed_completion(reason: lakehouse_obs::KillReason) -> IoCompletion {
    IoCompletion {
        result: Err(StoreError::QueryKilled { reason }),
        sim_nanos: 0,
        wall: Duration::ZERO,
        hedged: false,
    }
}

enum TakeResult {
    Done(IoCompletion),
    Pending,
    Gone,
}

fn take_if_done(slots: &mut HashMap<u64, Slot>, id: u64) -> TakeResult {
    match slots.get(&id) {
        Some(Slot {
            state: SlotState::Done(_),
            ..
        }) => match slots.remove(&id).map(|s| s.state) {
            Some(SlotState::Done(c)) => TakeResult::Done(c),
            _ => unreachable!("matched Done above"),
        },
        Some(_) => TakeResult::Pending,
        None => TakeResult::Gone,
    }
}

fn unknown_ticket() -> IoCompletion {
    IoCompletion {
        result: Err(StoreError::NotFound("io ticket".to_string())),
        sim_nanos: 0,
        wall: Duration::ZERO,
        hedged: false,
    }
}

fn worker_loop(sh: &Shared) {
    loop {
        let id = {
            let mut queue = sh.queue.lock().expect("io queue poisoned");
            loop {
                if sh.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    sh.space_ready.notify_one();
                    break id;
                }
                queue = sh.work_ready.wait(queue).expect("io queue poisoned");
            }
        };
        // Claim the slot; a ghost id (cancelled while queued) is skipped
        // without touching the backend.
        let (op, deadline, submitted_at, ctx) = {
            let mut slots = sh.slots.lock().expect("io slots poisoned");
            match slots.get_mut(&id) {
                Some(slot) => {
                    slot.state = SlotState::Running;
                    (
                        slot.op.clone(),
                        slot.deadline,
                        slot.submitted_at,
                        slot.ctx.clone(),
                    )
                }
                None => continue,
            }
        };
        // A killed submitter's backend call is skipped entirely: complete
        // the slot with the typed error so any waiter wakes and the
        // in-flight count still drains through the normal claim path.
        if let Some(reason) = ctx.as_ref().and_then(|c| c.check().err()) {
            let mut slots = sh.slots.lock().expect("io slots poisoned");
            if let Some(slot) = slots.get_mut(&id) {
                if matches!(slot.state, SlotState::Abandoned) {
                    slots.remove(&id);
                } else {
                    let hedged = slot.hedge;
                    slot.state = SlotState::Done(IoCompletion {
                        result: Err(StoreError::QueryKilled { reason }),
                        sim_nanos: 0,
                        wall: submitted_at.elapsed(),
                        hedged,
                    });
                    sh.completion_ready.notify_all();
                }
            }
            continue;
        }
        let lane_before = sh.metrics.as_ref().map(|m| m.lane_nanos());
        let mut result = {
            // Attribute the backend call (and everything it charges) to the
            // submitting query.
            let _attributed = ctx.as_ref().map(lakehouse_obs::QueryCtx::enter);
            match &op {
                IoOp::Get(path) => sh.store.get(path),
                IoOp::GetRange(path, start, end) => sh.store.get_range(path, *start, *end),
            }
        };
        let sim_nanos = match (&sh.metrics, lane_before) {
            (Some(m), Some(before)) => m.lane_nanos().saturating_sub(before),
            _ => 0,
        };
        let wall = submitted_at.elapsed();
        // Deadline is checked post-hoc against the charge the request
        // actually incurred (simulated lane time when the store simulates,
        // wall time otherwise) — the same client-side-timeout semantics as
        // `RetryStore`.
        if result.is_ok() {
            if let Some(deadline) = deadline {
                let elapsed = if sh.metrics.is_some() {
                    Duration::from_nanos(sim_nanos)
                } else {
                    wall
                };
                if elapsed > deadline {
                    result = Err(StoreError::Timeout {
                        op: "io_submit".to_string(),
                        deadline,
                    });
                }
            }
        }
        let mut slots = sh.slots.lock().expect("io slots poisoned");
        if let Some(slot) = slots.get_mut(&id) {
            if matches!(slot.state, SlotState::Abandoned) {
                // Cancelled mid-flight: accounting already done.
                slots.remove(&id);
            } else {
                let hedged = slot.hedge;
                slot.state = SlotState::Done(IoCompletion {
                    result,
                    sim_nanos,
                    wall,
                    hedged,
                });
                sh.completion_ready.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{LatencyModel, SimulatedStore};
    use crate::memory::InMemoryStore;

    fn p(s: &str) -> ObjectPath {
        ObjectPath::new(s).unwrap()
    }

    /// A store whose every op really sleeps, with a deterministic bimodal
    /// option (every `slow_every`-th op is slow) and an op counter.
    struct SleepyStore {
        inner: InMemoryStore,
        fast: Duration,
        slow: Duration,
        /// op index n is slow when `slow_every > 0 && n % slow_every == 0`.
        slow_every: u64,
        ops: AtomicU64,
    }

    impl SleepyStore {
        fn uniform(delay: Duration) -> SleepyStore {
            SleepyStore {
                inner: InMemoryStore::new(),
                fast: delay,
                slow: delay,
                slow_every: 0,
                ops: AtomicU64::new(0),
            }
        }

        fn bimodal(fast: Duration, slow: Duration, slow_every: u64) -> SleepyStore {
            SleepyStore {
                inner: InMemoryStore::new(),
                fast,
                slow,
                slow_every,
                ops: AtomicU64::new(0),
            }
        }

        fn gets(&self) -> u64 {
            self.ops.load(Ordering::Relaxed)
        }

        fn nap(&self) {
            let n = self.ops.fetch_add(1, Ordering::Relaxed);
            let d = if self.slow_every > 0 && n.is_multiple_of(self.slow_every) {
                self.slow
            } else {
                self.fast
            };
            std::thread::sleep(d);
        }
    }

    impl ObjectStore for SleepyStore {
        fn put(&self, path: &ObjectPath, data: Bytes) -> Result<()> {
            self.inner.put(path, data)
        }
        fn get(&self, path: &ObjectPath) -> Result<Bytes> {
            self.nap();
            self.inner.get(path)
        }
        fn get_range(&self, path: &ObjectPath, start: usize, end: usize) -> Result<Bytes> {
            self.nap();
            self.inner.get_range(path, start, end)
        }
        fn head(&self, path: &ObjectPath) -> Result<usize> {
            self.inner.head(path)
        }
        fn list(&self, prefix: &str) -> Result<Vec<ObjectPath>> {
            self.inner.list(prefix)
        }
        fn delete(&self, path: &ObjectPath) -> Result<()> {
            self.inner.delete(path)
        }
        fn put_if_matches(
            &self,
            path: &ObjectPath,
            expected: Option<&[u8]>,
            data: Bytes,
        ) -> Result<()> {
            self.inner.put_if_matches(path, expected, data)
        }
    }

    fn seeded(store: &dyn ObjectStore, n: usize) -> Vec<ObjectPath> {
        (0..n)
            .map(|i| {
                let path = p(&format!("obj/{i}"));
                store
                    .put(&path, Bytes::from(format!("payload-{i}")))
                    .unwrap();
                path
            })
            .collect()
    }

    #[test]
    fn in_flight_gets_genuinely_overlap_real_sleeps() {
        let store = Arc::new(SleepyStore::uniform(Duration::from_millis(30)));
        let paths = seeded(store.as_ref(), 8);
        let dispatcher = IoDispatcher::new(store, IoConfig::new(8));
        let start = Instant::now();
        let tickets: Vec<_> = paths
            .iter()
            .map(|path| dispatcher.submit_get(path, None))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let c = dispatcher.wait(t);
            assert_eq!(
                c.result.unwrap(),
                Bytes::from(format!("payload-{i}")),
                "byte-identical payload"
            );
        }
        let elapsed = start.elapsed();
        // Serial would be 8 * 30 ms = 240 ms; overlapped at depth 8 is one
        // round trip. Allow generous scheduling slack.
        assert!(
            elapsed < Duration::from_millis(120),
            "8 overlapped 30 ms gets took {elapsed:?}"
        );
    }

    #[test]
    fn sim_lane_nanos_are_reported_per_completion() {
        let model = LatencyModel {
            sigma: 0.0,
            ..LatencyModel::s3_like()
        };
        let sim = SimulatedStore::new(InMemoryStore::new(), model);
        let paths = seeded(&sim, 2);
        let dispatcher = IoDispatcher::new(Arc::new(sim), IoConfig::new(2));
        for path in &paths {
            let t = dispatcher.submit_get(path, None);
            let c = dispatcher.wait(t);
            assert!(c.result.is_ok());
            assert!(
                c.sim_nanos >= Duration::from_millis(10).as_nanos() as u64,
                "completion must carry the simulated charge, got {}",
                c.sim_nanos
            );
        }
    }

    #[test]
    fn deadline_times_out_slow_requests() {
        let model = LatencyModel {
            sigma: 0.0,
            ..LatencyModel::s3_like()
        };
        let sim = SimulatedStore::new(InMemoryStore::new(), model);
        let paths = seeded(&sim, 1);
        let dispatcher = IoDispatcher::new(Arc::new(sim), IoConfig::new(1));
        let t = dispatcher.submit_get(&paths[0], Some(Duration::from_millis(1)));
        let c = dispatcher.wait(t);
        assert!(
            matches!(c.result, Err(StoreError::Timeout { .. })),
            "15 ms simulated get vs 1 ms deadline must time out, got {:?}",
            c.result
        );
    }

    #[test]
    fn cancelled_queued_requests_never_reach_the_backend() {
        let store = Arc::new(SleepyStore::uniform(Duration::from_millis(20)));
        let paths = seeded(store.as_ref(), 3);
        let dispatcher =
            IoDispatcher::new(Arc::clone(&store) as Arc<dyn ObjectStore>, IoConfig::new(1));
        let t0 = dispatcher.submit_get(&paths[0], None);
        let t1 = dispatcher.submit_get(&paths[1], None);
        let t2 = dispatcher.submit_get(&paths[2], None);
        // t0 is running (or about to); t2 is queued behind t1 — cancel it.
        assert!(dispatcher.cancel(t2));
        assert!(dispatcher.wait(t0).result.is_ok());
        assert!(dispatcher.wait(t1).result.is_ok());
        drop(dispatcher);
        assert_eq!(
            store.gets(),
            2,
            "cancelled request must not hit the backend"
        );
    }

    #[test]
    fn poll_is_nonblocking_and_eventually_done() {
        let store = Arc::new(SleepyStore::uniform(Duration::from_millis(10)));
        let paths = seeded(store.as_ref(), 1);
        let dispatcher = IoDispatcher::new(store, IoConfig::new(1));
        let t = dispatcher.submit_get(&paths[0], None);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(c) = dispatcher.poll(t) {
                assert!(c.result.is_ok());
                break;
            }
            assert!(Instant::now() < deadline, "poll never completed");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(dispatcher.stats().inflight, 0);
    }

    #[test]
    fn submission_queue_applies_backpressure() {
        let store = Arc::new(SleepyStore::uniform(Duration::from_millis(30)));
        let paths = seeded(store.as_ref(), 4);
        let dispatcher = Arc::new(IoDispatcher::new(
            Arc::clone(&store) as Arc<dyn ObjectStore>,
            IoConfig::new(1).with_queue_cap(1),
        ));
        // Worker takes one; queue holds one; the third submission must wait
        // for the worker to drain the queue.
        let t0 = dispatcher.submit_get(&paths[0], None);
        let t1 = dispatcher.submit_get(&paths[1], None);
        let d2 = Arc::clone(&dispatcher);
        let p2 = paths[2].clone();
        let start = Instant::now();
        let h = std::thread::spawn(move || {
            let t2 = d2.submit_get(&p2, None);
            (t2, start.elapsed())
        });
        assert!(dispatcher.wait(t0).result.is_ok());
        let (t2, submit_wait) = h.join().unwrap();
        assert!(
            submit_wait >= Duration::from_millis(10),
            "third submit should have blocked on the full queue, waited {submit_wait:?}"
        );
        assert!(dispatcher.wait(t1).result.is_ok());
        assert!(dispatcher.wait(t2).result.is_ok());
    }

    #[test]
    fn hedge_fires_and_wins_on_deterministic_bimodal_tail() {
        // Op 0 (the primary) sleeps 60 ms; op 1 (the hedge) sleeps 2 ms.
        let store = Arc::new(SleepyStore::bimodal(
            Duration::from_millis(2),
            Duration::from_millis(60),
            1_000_000,
        ));
        let paths = seeded(store.as_ref(), 1);
        let config = IoConfig::new(2)
            .with_hedge(HedgePolicy::default().with_hedge_after(Duration::from_millis(10)));
        let dispatcher = IoDispatcher::new(Arc::clone(&store) as Arc<dyn ObjectStore>, config);
        let start = Instant::now();
        let t = dispatcher.submit_get(&paths[0], None);
        let c = dispatcher.wait(t);
        let elapsed = start.elapsed();
        assert_eq!(c.result.unwrap(), Bytes::from("payload-0"));
        assert!(c.hedged, "the fast hedge must win the race");
        let stats = dispatcher.stats();
        assert_eq!(stats.hedges_fired, 1);
        assert_eq!(stats.hedges_won, 1);
        assert!(
            elapsed < Duration::from_millis(45),
            "hedge should beat the 60 ms primary, took {elapsed:?}"
        );
        // The slow primary is the cancelled loser.
        assert_eq!(stats.cancelled, 1);
    }

    #[test]
    fn breaker_suppresses_hedging_when_store_is_globally_slow() {
        // Every op takes 15 ms: hedges (fired after 2 ms) always lose the
        // race to the earlier-started primary.
        let store = Arc::new(SleepyStore::uniform(Duration::from_millis(15)));
        let paths = seeded(store.as_ref(), 10);
        let mut hedge = HedgePolicy::default().with_hedge_after(Duration::from_millis(2));
        hedge.breaker_window = 4;
        hedge.breaker_min_win_rate = 0.5;
        hedge.breaker_cooldown = 100;
        let config = IoConfig::new(2).with_hedge(hedge);
        let dispatcher = IoDispatcher::new(Arc::clone(&store) as Arc<dyn ObjectStore>, config);
        for path in &paths {
            let t = dispatcher.submit_get(path, None);
            assert!(dispatcher.wait(t).result.is_ok());
        }
        let stats = dispatcher.stats();
        assert_eq!(
            stats.hedges_fired, 4,
            "breaker must open after the 4-op window of lost hedges"
        );
        assert_eq!(stats.hedges_won, 0);
        assert!(dispatcher.hedge_breaker_open());
    }

    #[test]
    fn hedged_completion_is_byte_identical() {
        let store = Arc::new(SleepyStore::bimodal(
            Duration::from_millis(1),
            Duration::from_millis(40),
            1_000_000,
        ));
        let paths = seeded(store.as_ref(), 1);
        let unhedged = {
            let d = IoDispatcher::new(Arc::clone(&store) as Arc<dyn ObjectStore>, IoConfig::new(2));
            // Burn op 0 (slow) so both runs read the same object bytes.
            let t = d.submit_get(&paths[0], None);
            d.wait(t).result.unwrap()
        };
        let hedged = {
            let config = IoConfig::new(2)
                .with_hedge(HedgePolicy::default().with_hedge_after(Duration::from_millis(5)));
            let d = IoDispatcher::new(Arc::clone(&store) as Arc<dyn ObjectStore>, config);
            let t = d.submit_get(&paths[0], None);
            d.wait(t).result.unwrap()
        };
        assert_eq!(unhedged, hedged);
    }

    #[test]
    fn hedging_disabled_under_sleep_mode_none() {
        // No wall sleeping => no wall tail => live-quantile hedging reports
        // no trigger delay.
        let sim = SimulatedStore::new(InMemoryStore::new(), LatencyModel::s3_like());
        let paths = seeded(&sim, 4);
        let config = IoConfig::new(2).with_hedge(HedgePolicy::default());
        let dispatcher = IoDispatcher::new(Arc::new(sim), config);
        for path in &paths {
            let t = dispatcher.submit_get(path, None);
            assert!(dispatcher.wait(t).result.is_ok());
        }
        assert_eq!(dispatcher.stats().hedges_fired, 0);
    }

    #[test]
    fn drop_joins_workers_with_pending_queue() {
        let store = Arc::new(SleepyStore::uniform(Duration::from_millis(5)));
        let paths = seeded(store.as_ref(), 6);
        let dispatcher =
            IoDispatcher::new(Arc::clone(&store) as Arc<dyn ObjectStore>, IoConfig::new(2));
        for path in &paths {
            dispatcher.submit_get(path, None);
        }
        drop(dispatcher); // must not hang or panic
    }

    #[test]
    fn killed_query_wait_returns_promptly_and_drains_inflight() {
        let store = Arc::new(SleepyStore::uniform(Duration::from_millis(50)));
        let paths = seeded(store.as_ref(), 2);
        let dispatcher =
            IoDispatcher::new(Arc::clone(&store) as Arc<dyn ObjectStore>, IoConfig::new(1));
        let ctx = lakehouse_obs::QueryCtx::new("t", "q");
        let _g = ctx.enter();
        let t0 = dispatcher.submit_get(&paths[0], None); // claimed by the worker
        let t1 = dispatcher.submit_get(&paths[1], None); // queued behind it
        ctx.kill(lakehouse_obs::KillReason::Canceled);
        let start = Instant::now();
        let c1 = dispatcher.wait(t1);
        assert!(
            matches!(c1.result, Err(StoreError::QueryKilled { .. })),
            "got {:?}",
            c1.result
        );
        assert!(
            start.elapsed() < Duration::from_millis(40),
            "killed wait must not block behind the 50 ms primary, took {:?}",
            start.elapsed()
        );
        // t0 races the kill: it may have completed, been skipped by the
        // worker's token check, or been abandoned by this wait — all fine,
        // as long as the ticket resolves and accounting drains.
        let _c0 = dispatcher.wait(t0);
        assert_eq!(
            dispatcher.stats().inflight,
            0,
            "abandoned tickets must drain the in-flight count"
        );
        drop(dispatcher);
        assert!(
            store.gets() <= 1,
            "the queued request of a killed query must never reach the backend"
        );
    }

    #[test]
    fn get_range_submissions_slice_correctly() {
        let sim = SimulatedStore::new(InMemoryStore::new(), LatencyModel::zero());
        let path = p("obj/r");
        sim.put(&path, Bytes::from_static(b"hello world")).unwrap();
        let dispatcher = IoDispatcher::new(Arc::new(sim), IoConfig::new(2));
        let t = dispatcher.submit_get_range(&path, 6, 11, None);
        assert_eq!(
            dispatcher.wait(t).result.unwrap(),
            Bytes::from_static(b"world")
        );
    }
}
