//! Counters for object-store activity, including accumulated *simulated*
//! latency — the deterministic alternative to wall-clock sleeping.
//!
//! Besides the totals, simulated latency is also accumulated **per thread**
//! (a "lane"). Total simulated time models a serial execution; when K
//! worker threads issue requests concurrently, the overlapped wall clock of
//! the fan-out is the *maximum* of the worker lane deltas, which parallel
//! scans report alongside the serial total (see `lakehouse-table`).

use lakehouse_obs::{Counter, Histogram};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Duration;

/// Cap on retained latency samples. Percentiles are exact until the cap is
/// reached, then computed over a uniform reservoir — long runs no longer grow
/// the sample buffer without bound.
const RESERVOIR_CAP: usize = 4096;

/// Bounded uniform sample of operation latencies (Vitter's algorithm R with
/// a deterministic xorshift stream, so simulated runs stay reproducible).
#[derive(Debug)]
struct Reservoir {
    samples: Vec<Duration>,
    seen: u64,
    rng: u64,
}

impl Reservoir {
    fn new() -> Reservoir {
        Reservoir {
            samples: Vec::new(),
            seen: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn push(&mut self, v: Duration) {
        self.seen += 1;
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(v);
        } else {
            let j = self.next_u64() % self.seen;
            if (j as usize) < RESERVOIR_CAP {
                self.samples[j as usize] = v;
            }
        }
    }

    fn clear(&mut self) {
        self.samples.clear();
        self.seen = 0;
    }
}

/// Process-wide registry handles this instance also publishes into (atomic
/// adds only — the registry lock is taken once, at construction).
#[derive(Debug)]
struct GlobalHandles {
    gets: Arc<Counter>,
    puts: Arc<Counter>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    op_nanos: Arc<Histogram>,
}

impl GlobalHandles {
    fn register() -> GlobalHandles {
        let reg = lakehouse_obs::global();
        GlobalHandles {
            gets: reg.counter("store.gets"),
            puts: reg.counter("store.puts"),
            bytes_read: reg.counter("store.bytes_read"),
            bytes_written: reg.counter("store.bytes_written"),
            cache_hits: reg.counter("store.cache_hits"),
            cache_misses: reg.counter("store.cache_misses"),
            op_nanos: reg.histogram("store.op_nanos"),
        }
    }
}

/// Thread-safe counters for one store instance.
#[derive(Debug)]
pub struct StoreMetrics {
    gets: AtomicU64,
    puts: AtomicU64,
    lists: AtomicU64,
    deletes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    simulated_nanos: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_bytes_served: AtomicU64,
    stall_nanos: AtomicU64,
    /// Wall seconds slept per simulated second (f64 bits): 0.0 under
    /// `SleepMode::None`, the factor under `Scaled`, 1.0 under `Real`. Set
    /// by the simulated store that owns these metrics; read by anything that
    /// must convert simulated durations into real waits (stall sleeping
    /// below, hedge timers in `crate::io`).
    wall_scale_bits: AtomicU64,
    /// Simulated nanos charged per calling thread (lane accounting).
    lanes: Mutex<HashMap<ThreadId, u64>>,
    /// Bounded reservoir of per-operation simulated latencies (percentiles).
    samples: Mutex<Reservoir>,
    global: GlobalHandles,
}

impl Default for StoreMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreMetrics {
    pub fn new() -> Self {
        StoreMetrics {
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            lists: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            simulated_nanos: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_bytes_served: AtomicU64::new(0),
            stall_nanos: AtomicU64::new(0),
            wall_scale_bits: AtomicU64::new(0.0f64.to_bits()),
            lanes: Mutex::new(HashMap::new()),
            samples: Mutex::new(Reservoir::new()),
            global: GlobalHandles::register(),
        }
    }

    pub(crate) fn record_get(&self, bytes: usize, latency: Duration) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
        self.global.gets.inc();
        self.global.bytes_read.add(bytes as u64);
        lakehouse_obs::ctx::charge(|l| l.add_io_read(bytes as u64));
        lakehouse_obs::recorder().record(lakehouse_obs::EventKind::StoreOp, "get", bytes as u64);
        self.record_latency(latency);
    }

    pub(crate) fn record_put(&self, bytes: usize, latency: Duration) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.global.puts.inc();
        self.global.bytes_written.add(bytes as u64);
        lakehouse_obs::ctx::charge(|l| l.add_io_write(bytes as u64));
        lakehouse_obs::recorder().record(lakehouse_obs::EventKind::StoreOp, "put", bytes as u64);
        self.record_latency(latency);
    }

    pub(crate) fn record_list(&self, latency: Duration) {
        self.lists.fetch_add(1, Ordering::Relaxed);
        self.record_latency(latency);
    }

    pub(crate) fn record_delete(&self, latency: Duration) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
        self.record_latency(latency);
    }

    fn record_latency(&self, latency: Duration) {
        let nanos = latency.as_nanos() as u64;
        self.simulated_nanos.fetch_add(nanos, Ordering::Relaxed);
        *self
            .lanes
            .lock()
            .entry(std::thread::current().id())
            .or_insert(0) += nanos;
        self.samples.lock().push(latency);
        self.global.op_nanos.record(nanos);
    }

    /// Charge simulated time that is *not* an operation: retry backoff and
    /// injected throttle stalls. Adds to the simulated total and the calling
    /// thread's lane (so overlapped wall-clock accounting stays honest) but
    /// records no op count and no latency sample — per-op percentiles keep
    /// measuring store service time, not client-side waiting.
    pub fn record_stall(&self, stall: Duration) {
        let nanos = stall.as_nanos() as u64;
        self.stall_nanos.fetch_add(nanos, Ordering::Relaxed);
        lakehouse_obs::ctx::charge(|l| l.add_retry_stall_nanos(nanos));
        self.simulated_nanos.fetch_add(nanos, Ordering::Relaxed);
        *self
            .lanes
            .lock()
            .entry(std::thread::current().id())
            .or_insert(0) += nanos;
        // When the owning store really sleeps its latency, stalls sleep too
        // — otherwise injected throttles/stalls would be invisible to wall
        // clocks while ordinary ops block, skewing any real-time measurement
        // (and hiding exactly the tail hedged reads exist to cut).
        let scale = self.wall_scale();
        if scale > 0.0 {
            std::thread::sleep(stall.mul_f64(scale));
        }
    }

    /// Set the wall-seconds-per-simulated-second factor (see
    /// [`wall_scale`](Self::wall_scale)). Called by the simulated store when
    /// its sleep mode is configured.
    pub fn set_wall_scale(&self, scale: f64) {
        self.wall_scale_bits
            .store(scale.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// How many wall seconds the owning store sleeps per simulated second:
    /// 0.0 means charged time never blocks (pure bookkeeping), 1.0 means
    /// real-time sleeping. Lets latency-sensitive layers (hedge timers)
    /// convert simulated percentiles into real waits.
    pub fn wall_scale(&self) -> f64 {
        f64::from_bits(self.wall_scale_bits.load(Ordering::Relaxed))
    }

    pub(crate) fn record_cache_hit(&self, bytes: usize) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.cache_bytes_served
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.global.cache_hits.inc();
    }

    pub(crate) fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.global.cache_misses.inc();
    }

    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }
    pub fn lists(&self) -> u64 {
        self.lists.load(Ordering::Relaxed)
    }
    pub fn deletes(&self) -> u64 {
        self.deletes.load(Ordering::Relaxed)
    }
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Requests answered from a cache layer without touching the store.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }
    /// Requests that fell through a cache layer to the store.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }
    /// Bytes served from cache (not counted in `bytes_read`).
    pub fn cache_bytes_served(&self) -> u64 {
        self.cache_bytes_served.load(Ordering::Relaxed)
    }

    /// Total simulated latency accumulated across all operations.
    pub fn simulated_time(&self) -> Duration {
        Duration::from_nanos(self.simulated_nanos.load(Ordering::Relaxed))
    }

    /// Simulated time spent stalled (retry backoff, throttle waits); a
    /// subset of [`simulated_time`](Self::simulated_time).
    pub fn stall_time(&self) -> Duration {
        Duration::from_nanos(self.stall_nanos.load(Ordering::Relaxed))
    }

    /// Simulated latency charged by the *calling thread* so far. Sampling
    /// this before and after a section gives the section's serial latency on
    /// this lane; the max of the deltas across K concurrent worker threads
    /// is the section's overlapped wall clock.
    pub fn lane_nanos(&self) -> u64 {
        self.lanes
            .lock()
            .get(&std::thread::current().id())
            .copied()
            .unwrap_or(0)
    }

    /// Latency percentile (0.0..=1.0) over recorded operations, if any.
    /// Exact until [`RESERVOIR_CAP`] operations, then over a uniform sample.
    pub fn latency_percentile(&self, q: f64) -> Option<Duration> {
        let mut samples = self.samples.lock().samples.clone();
        if samples.is_empty() {
            return None;
        }
        samples.sort();
        let idx = ((samples.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        Some(samples[idx])
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.gets.store(0, Ordering::Relaxed);
        self.puts.store(0, Ordering::Relaxed);
        self.lists.store(0, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.simulated_nanos.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_bytes_served.store(0, Ordering::Relaxed);
        self.stall_nanos.store(0, Ordering::Relaxed);
        self.lanes.lock().clear();
        self.samples.lock().clear();
    }
}

#[cfg(test)]
mod reservoir_tests {
    use super::*;

    #[test]
    fn reservoir_stays_bounded_and_representative() {
        let m = StoreMetrics::new();
        for i in 0..(RESERVOIR_CAP as u64 * 4) {
            m.record_get(1, Duration::from_nanos(i + 1));
        }
        let held = m.samples.lock().samples.len();
        assert_eq!(held, RESERVOIR_CAP, "reservoir must cap retained samples");
        // Percentiles still track the underlying distribution (uniform
        // 1..=4*CAP nanos): the median of a uniform reservoir stays near the
        // true median.
        let p50 = m.latency_percentile(0.5).unwrap().as_nanos() as f64;
        let true_median = (RESERVOIR_CAP * 4) as f64 / 2.0;
        assert!(
            (p50 - true_median).abs() / true_median < 0.25,
            "reservoir median {p50} drifted from true median {true_median}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = StoreMetrics::new();
        m.record_get(100, Duration::from_millis(10));
        m.record_put(50, Duration::from_millis(20));
        m.record_list(Duration::from_millis(5));
        m.record_delete(Duration::from_millis(1));
        assert_eq!(m.gets(), 1);
        assert_eq!(m.puts(), 1);
        assert_eq!(m.lists(), 1);
        assert_eq!(m.deletes(), 1);
        assert_eq!(m.bytes_read(), 100);
        assert_eq!(m.bytes_written(), 50);
        assert_eq!(m.simulated_time(), Duration::from_millis(36));
    }

    #[test]
    fn percentiles() {
        let m = StoreMetrics::new();
        for ms in [1u64, 2, 3, 4, 100] {
            m.record_get(0, Duration::from_millis(ms));
        }
        assert_eq!(m.latency_percentile(0.5), Some(Duration::from_millis(3)));
        assert_eq!(m.latency_percentile(1.0), Some(Duration::from_millis(100)));
    }

    #[test]
    fn empty_percentile_none() {
        assert_eq!(StoreMetrics::new().latency_percentile(0.5), None);
    }

    #[test]
    fn reset_zeros() {
        let m = StoreMetrics::new();
        m.record_get(10, Duration::from_millis(1));
        m.record_cache_hit(5);
        m.record_cache_miss();
        m.reset();
        assert_eq!(m.gets(), 0);
        assert_eq!(m.simulated_time(), Duration::ZERO);
        assert_eq!(m.latency_percentile(0.5), None);
        assert_eq!(m.cache_hits(), 0);
        assert_eq!(m.cache_misses(), 0);
        assert_eq!(m.cache_bytes_served(), 0);
        assert_eq!(m.lane_nanos(), 0);
    }

    #[test]
    fn wall_scale_defaults_to_zero_and_survives_reset() {
        let m = StoreMetrics::new();
        assert_eq!(m.wall_scale(), 0.0);
        m.set_wall_scale(0.25);
        m.reset();
        // Configuration, not a counter: reset leaves it alone.
        assert_eq!(m.wall_scale(), 0.25);
    }

    #[test]
    fn stall_sleeps_only_when_scaled() {
        let m = StoreMetrics::new();
        let t = std::time::Instant::now();
        m.record_stall(Duration::from_millis(200));
        assert!(
            t.elapsed() < Duration::from_millis(50),
            "scale 0 must not sleep"
        );
        m.set_wall_scale(0.05);
        let t = std::time::Instant::now();
        m.record_stall(Duration::from_millis(200));
        assert!(
            t.elapsed() >= Duration::from_millis(10),
            "scaled stall must sleep"
        );
        assert_eq!(m.stall_time(), Duration::from_millis(400));
    }

    #[test]
    fn cache_counters_accumulate() {
        let m = StoreMetrics::new();
        m.record_cache_hit(100);
        m.record_cache_hit(50);
        m.record_cache_miss();
        assert_eq!(m.cache_hits(), 2);
        assert_eq!(m.cache_misses(), 1);
        assert_eq!(m.cache_bytes_served(), 150);
        // Cache hits move no store bytes.
        assert_eq!(m.bytes_read(), 0);
    }

    #[test]
    fn lanes_track_per_thread_latency() {
        let m = StoreMetrics::new();
        m.record_get(1, Duration::from_millis(10));
        assert_eq!(m.lane_nanos(), 10_000_000);

        // Two worker threads each charge their own lane; the total is the
        // serial sum while each lane sees only its own share.
        let lanes: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let m = &m;
                    scope.spawn(move || {
                        m.record_get(1, Duration::from_millis(5 * (i + 1)));
                        m.lane_nanos()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(lanes.contains(&5_000_000) && lanes.contains(&10_000_000));
        // Main lane unchanged by workers.
        assert_eq!(m.lane_nanos(), 10_000_000);
        assert_eq!(m.simulated_time(), Duration::from_millis(25));
    }
}
