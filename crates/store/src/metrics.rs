//! Counters for object-store activity, including accumulated *simulated*
//! latency — the deterministic alternative to wall-clock sleeping.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Thread-safe counters for one store instance.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    gets: AtomicU64,
    puts: AtomicU64,
    lists: AtomicU64,
    deletes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    simulated_nanos: AtomicU64,
    /// Per-operation simulated latencies (kept for percentile reporting).
    samples: Mutex<Vec<Duration>>,
}

impl StoreMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_get(&self, bytes: usize, latency: Duration) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
        self.record_latency(latency);
    }

    pub(crate) fn record_put(&self, bytes: usize, latency: Duration) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.record_latency(latency);
    }

    pub(crate) fn record_list(&self, latency: Duration) {
        self.lists.fetch_add(1, Ordering::Relaxed);
        self.record_latency(latency);
    }

    pub(crate) fn record_delete(&self, latency: Duration) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
        self.record_latency(latency);
    }

    fn record_latency(&self, latency: Duration) {
        self.simulated_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        self.samples.lock().push(latency);
    }

    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }
    pub fn lists(&self) -> u64 {
        self.lists.load(Ordering::Relaxed)
    }
    pub fn deletes(&self) -> u64 {
        self.deletes.load(Ordering::Relaxed)
    }
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total simulated latency accumulated across all operations.
    pub fn simulated_time(&self) -> Duration {
        Duration::from_nanos(self.simulated_nanos.load(Ordering::Relaxed))
    }

    /// Latency percentile (0.0..=1.0) over recorded operations, if any.
    pub fn latency_percentile(&self, q: f64) -> Option<Duration> {
        let mut samples = self.samples.lock().clone();
        if samples.is_empty() {
            return None;
        }
        samples.sort();
        let idx = ((samples.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        Some(samples[idx])
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.gets.store(0, Ordering::Relaxed);
        self.puts.store(0, Ordering::Relaxed);
        self.lists.store(0, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.simulated_nanos.store(0, Ordering::Relaxed);
        self.samples.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = StoreMetrics::new();
        m.record_get(100, Duration::from_millis(10));
        m.record_put(50, Duration::from_millis(20));
        m.record_list(Duration::from_millis(5));
        m.record_delete(Duration::from_millis(1));
        assert_eq!(m.gets(), 1);
        assert_eq!(m.puts(), 1);
        assert_eq!(m.lists(), 1);
        assert_eq!(m.deletes(), 1);
        assert_eq!(m.bytes_read(), 100);
        assert_eq!(m.bytes_written(), 50);
        assert_eq!(m.simulated_time(), Duration::from_millis(36));
    }

    #[test]
    fn percentiles() {
        let m = StoreMetrics::new();
        for ms in [1u64, 2, 3, 4, 100] {
            m.record_get(0, Duration::from_millis(ms));
        }
        assert_eq!(m.latency_percentile(0.5), Some(Duration::from_millis(3)));
        assert_eq!(m.latency_percentile(1.0), Some(Duration::from_millis(100)));
    }

    #[test]
    fn empty_percentile_none() {
        assert_eq!(StoreMetrics::new().latency_percentile(0.5), None);
    }

    #[test]
    fn reset_zeros() {
        let m = StoreMetrics::new();
        m.record_get(10, Duration::from_millis(1));
        m.reset();
        assert_eq!(m.gets(), 0);
        assert_eq!(m.simulated_time(), Duration::ZERO);
        assert_eq!(m.latency_percentile(0.5), None);
    }
}
