//! Local-filesystem object store backend.

use crate::error::{Result, StoreError};
use crate::path::ObjectPath;
use crate::ObjectStore;
use bytes::Bytes;
use parking_lot::Mutex;
use std::fs;
use std::path::{Path, PathBuf};

/// An object store rooted at a local directory. Object paths map directly to
/// relative file paths under the root. A coarse mutex serializes CAS puts
/// (the local backend is for development, not contention benchmarks).
#[derive(Debug)]
pub struct LocalFsStore {
    root: PathBuf,
    cas_lock: Mutex<()>,
}

impl LocalFsStore {
    /// Create (and make) the root directory.
    pub fn new(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(LocalFsStore {
            root,
            cas_lock: Mutex::new(()),
        })
    }

    fn fs_path(&self, path: &ObjectPath) -> PathBuf {
        self.root.join(path.as_str())
    }
}

impl ObjectStore for LocalFsStore {
    fn put(&self, path: &ObjectPath, data: Bytes) -> Result<()> {
        let fp = self.fs_path(path);
        if let Some(parent) = fp.parent() {
            fs::create_dir_all(parent)?;
        }
        // Write-then-rename for atomicity against concurrent readers.
        let tmp = fp.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, &data)?;
        fs::rename(&tmp, &fp)?;
        Ok(())
    }

    fn get(&self, path: &ObjectPath) -> Result<Bytes> {
        match fs::read(self.fs_path(path)) {
            Ok(data) => Ok(Bytes::from(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound(path.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn head(&self, path: &ObjectPath) -> Result<usize> {
        match fs::metadata(self.fs_path(path)) {
            Ok(m) if m.is_file() => Ok(m.len() as usize),
            Ok(_) => Err(StoreError::NotFound(path.to_string())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound(path.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectPath>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let entries = match fs::read_dir(&dir) {
                Ok(e) => e,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            for entry in entries {
                let entry = entry?;
                let ft = entry.file_type()?;
                if ft.is_dir() {
                    stack.push(entry.path());
                } else if ft.is_file() {
                    let rel = entry
                        .path()
                        .strip_prefix(&self.root)
                        .map_err(|_| StoreError::InvalidPath(entry.path().display().to_string()))?
                        .to_string_lossy()
                        .replace('\\', "/");
                    if let Ok(op) = ObjectPath::new(rel) {
                        if op.has_prefix(prefix) {
                            out.push(op);
                        }
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn delete(&self, path: &ObjectPath) -> Result<()> {
        match fs::remove_file(self.fs_path(path)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound(path.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn put_if_matches(
        &self,
        path: &ObjectPath,
        expected: Option<&[u8]>,
        data: Bytes,
    ) -> Result<()> {
        let _guard = self.cas_lock.lock();
        let current = match self.get(path) {
            Ok(b) => Some(b),
            Err(StoreError::NotFound(_)) => None,
            Err(e) => return Err(e),
        };
        let matches = match (&current, expected) {
            (None, None) => true,
            (Some(cur), Some(exp)) => cur.as_ref() == exp,
            _ => false,
        };
        if !matches {
            return Err(StoreError::PreconditionFailed(path.to_string()));
        }
        self.put(path, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> LocalFsStore {
        let dir = std::env::temp_dir().join(format!(
            "lakehouse_store_test_{}_{}",
            tag,
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        LocalFsStore::new(dir).unwrap()
    }

    fn p(s: &str) -> ObjectPath {
        ObjectPath::new(s).unwrap()
    }

    #[test]
    fn put_get_nested() {
        let s = tmp_store("nested");
        s.put(&p("a/b/c.bin"), Bytes::from_static(b"data")).unwrap();
        assert_eq!(s.get(&p("a/b/c.bin")).unwrap().as_ref(), b"data");
        assert_eq!(s.head(&p("a/b/c.bin")).unwrap(), 4);
    }

    #[test]
    fn missing_not_found() {
        let s = tmp_store("missing");
        assert!(matches!(s.get(&p("nope")), Err(StoreError::NotFound(_))));
        assert!(matches!(s.delete(&p("nope")), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn list_prefix() {
        let s = tmp_store("list");
        for k in ["t/one", "t/two", "u/three"] {
            s.put(&p(k), Bytes::new()).unwrap();
        }
        let l = s.list("t").unwrap();
        assert_eq!(
            l.iter().map(ObjectPath::as_str).collect::<Vec<_>>(),
            vec!["t/one", "t/two"]
        );
    }

    #[test]
    fn cas_behaviour() {
        let s = tmp_store("cas");
        s.put_if_matches(&p("ref"), None, Bytes::from_static(b"v1"))
            .unwrap();
        assert!(s
            .put_if_matches(&p("ref"), None, Bytes::from_static(b"v2"))
            .is_err());
        s.put_if_matches(&p("ref"), Some(b"v1"), Bytes::from_static(b"v2"))
            .unwrap();
        assert_eq!(s.get(&p("ref")).unwrap().as_ref(), b"v2");
    }

    #[test]
    fn overwrite_replaces() {
        let s = tmp_store("overwrite");
        s.put(&p("k"), Bytes::from_static(b"old")).unwrap();
        s.put(&p("k"), Bytes::from_static(b"new")).unwrap();
        assert_eq!(s.get(&p("k")).unwrap().as_ref(), b"new");
    }
}
