//! Failure injection: a store wrapper that fails operations on a
//! deterministic schedule. Used by resilience tests to verify that the
//! catalog's CAS retries, the table layer's transactional writes, and the
//! platform's run rollback behave under storage faults.

use crate::error::{Result, StoreError};
use crate::path::ObjectPath;
use crate::ObjectStore;
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which operations to inject failures into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    Gets,
    Puts,
    All,
}

/// A deterministic fault injector: every `period`-th matching operation
/// fails with a synthetic I/O error (period = 3 → ops 3, 6, 9... fail).
pub struct FlakyStore<S> {
    inner: S,
    kind: FaultKind,
    period: u64,
    counter: AtomicU64,
    injected: AtomicU64,
}

impl<S: ObjectStore> FlakyStore<S> {
    pub fn new(inner: S, kind: FaultKind, period: u64) -> FlakyStore<S> {
        assert!(period > 0, "period must be >= 1");
        FlakyStore {
            inner,
            kind,
            period,
            counter: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn maybe_fail(&self, is_get: bool, what: &str) -> Result<()> {
        let applies = match self.kind {
            FaultKind::Gets => is_get,
            FaultKind::Puts => !is_get,
            FaultKind::All => true,
        };
        if !applies {
            return Ok(());
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.period) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Io(std::io::Error::other(format!(
                "injected fault on {what} (op {n})"
            ))));
        }
        Ok(())
    }
}

impl<S: ObjectStore> ObjectStore for FlakyStore<S> {
    fn put(&self, path: &ObjectPath, data: Bytes) -> Result<()> {
        self.maybe_fail(false, "put")?;
        self.inner.put(path, data)
    }

    fn get(&self, path: &ObjectPath) -> Result<Bytes> {
        self.maybe_fail(true, "get")?;
        self.inner.get(path)
    }

    fn get_range(&self, path: &ObjectPath, start: usize, end: usize) -> Result<Bytes> {
        self.maybe_fail(true, "get_range")?;
        self.inner.get_range(path, start, end)
    }

    fn head(&self, path: &ObjectPath) -> Result<usize> {
        self.inner.head(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectPath>> {
        self.inner.list(prefix)
    }

    fn delete(&self, path: &ObjectPath) -> Result<()> {
        self.maybe_fail(false, "delete")?;
        self.inner.delete(path)
    }

    fn put_if_matches(
        &self,
        path: &ObjectPath,
        expected: Option<&[u8]>,
        data: Bytes,
    ) -> Result<()> {
        self.maybe_fail(false, "put_if_matches")?;
        self.inner.put_if_matches(path, expected, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryStore;

    fn p(s: &str) -> ObjectPath {
        ObjectPath::new(s).unwrap()
    }

    #[test]
    fn every_nth_put_fails() {
        let s = FlakyStore::new(InMemoryStore::new(), FaultKind::Puts, 3);
        let mut failures = 0;
        for i in 0..9 {
            if s.put(&p(&format!("k{i}")), Bytes::new()).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 3);
        assert_eq!(s.injected(), 3);
        // Gets unaffected.
        s.put(&p("ok"), Bytes::from_static(b"v")).unwrap();
        assert!(s.get(&p("ok")).is_ok());
    }

    #[test]
    fn gets_only_mode() {
        let s = FlakyStore::new(InMemoryStore::new(), FaultKind::Gets, 2);
        s.put(&p("a"), Bytes::from_static(b"v")).unwrap();
        let mut failures = 0;
        for _ in 0..4 {
            if s.get(&p("a")).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 2);
    }

    #[test]
    fn period_one_fails_everything() {
        let s = FlakyStore::new(InMemoryStore::new(), FaultKind::All, 1);
        assert!(s.put(&p("a"), Bytes::new()).is_err());
        assert!(s.get(&p("a")).is_err());
    }
}
