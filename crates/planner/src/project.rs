//! Pipeline projects: the user layer of the paper's Fig. 3.
//!
//! A project is a set of named nodes. SQL nodes follow the dbt-style
//! one-query-one-artifact pattern; function nodes are native callbacks (our
//! stand-in for Python steps) with `@requirements`-style environment pins.
//! Expectation functions follow the `<table>_expectation` naming convention
//! of the paper's Appendix A.

use crate::error::{PlannerError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a node produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A SQL transformation materializing a new artifact.
    SqlTransform,
    /// A native function materializing a new artifact.
    FunctionTransform,
    /// A native function auditing an artifact (returns pass/fail). Detected
    /// from the `<table>_expectation` naming convention.
    Expectation,
}

/// Environment requirements for a function node — the Rust mirror of the
/// paper's `@requirements({'pandas': '2.0.0'})` decorator.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Requirements {
    /// Interpreter identity, e.g. "python3.11".
    pub interpreter: Option<String>,
    /// package → version pins.
    pub packages: BTreeMap<String, String>,
}

impl Requirements {
    pub fn with_package(mut self, name: &str, version: &str) -> Self {
        self.packages.insert(name.into(), version.into());
        self
    }

    pub fn with_interpreter(mut self, interpreter: &str) -> Self {
        self.interpreter = Some(interpreter.into());
        self
    }

    /// Package names (the runtime's EnvSpec identity ignores versions in the
    /// simulation but keeps them in the fingerprint).
    pub fn package_names(&self) -> Vec<String> {
        self.packages.keys().cloned().collect()
    }
}

/// One node of a pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeDef {
    pub name: String,
    pub kind: NodeKind,
    /// SQL text (SQL nodes only).
    pub sql: Option<String>,
    /// Declared inputs (function nodes; mirrors Python parameter names).
    pub inputs: Vec<String>,
    /// Environment pins (function nodes).
    pub requirements: Requirements,
    /// Identifier of the registered native callback (function nodes). The
    /// platform resolves it in its function registry at execution time.
    pub function_id: Option<String>,
}

impl NodeDef {
    /// A SQL transformation node.
    pub fn sql(name: impl Into<String>, sql: impl Into<String>) -> NodeDef {
        NodeDef {
            name: name.into(),
            kind: NodeKind::SqlTransform,
            sql: Some(sql.into()),
            inputs: vec![],
            requirements: Requirements::default(),
            function_id: None,
        }
    }

    /// A native function node; kind is inferred from the name (the
    /// `<table>_expectation` convention marks audits).
    pub fn function(
        name: impl Into<String>,
        inputs: Vec<String>,
        requirements: Requirements,
        function_id: impl Into<String>,
    ) -> NodeDef {
        let name = name.into();
        let kind = if name.ends_with("_expectation") {
            NodeKind::Expectation
        } else {
            NodeKind::FunctionTransform
        };
        NodeDef {
            name,
            kind,
            sql: None,
            inputs,
            requirements,
            function_id: Some(function_id.into()),
        }
    }

    /// The canonical source text used for fingerprinting.
    pub fn source_text(&self) -> String {
        match &self.sql {
            Some(sql) => format!("-- node:{}\n{}", self.name, sql),
            None => format!(
                "# node:{} inputs:{:?} requirements:{:?} fn:{:?}",
                self.name, self.inputs, self.requirements, self.function_id
            ),
        }
    }

    /// Whether this node's output is written back to the catalog.
    pub fn materializes(&self) -> bool {
        !matches!(self.kind, NodeKind::Expectation)
    }
}

/// A pipeline project: an ordered set of uniquely-named nodes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineProject {
    pub name: String,
    pub nodes: Vec<NodeDef>,
}

impl PipelineProject {
    pub fn new(name: impl Into<String>) -> PipelineProject {
        PipelineProject {
            name: name.into(),
            nodes: vec![],
        }
    }

    /// Add a node, rejecting duplicates.
    pub fn add(&mut self, node: NodeDef) -> Result<&mut Self> {
        if self.nodes.iter().any(|n| n.name == node.name) {
            return Err(PlannerError::DuplicateNode(node.name));
        }
        self.nodes.push(node);
        Ok(self)
    }

    /// Builder-style add that panics on duplicates (ergonomic for examples).
    pub fn with(mut self, node: NodeDef) -> PipelineProject {
        self.add(node).expect("duplicate node in builder");
        self
    }

    pub fn get(&self, name: &str) -> Option<&NodeDef> {
        self.nodes.iter().find(|n| n.name == name)
    }

    pub fn node_names(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.name.as_str()).collect()
    }

    /// The paper's Appendix A pipeline, as a ready-made fixture: trips (SQL)
    /// → trips_expectation (function audit), trips → pickups (SQL).
    pub fn taxi_example() -> PipelineProject {
        PipelineProject::new("taxi_pipeline")
            .with(NodeDef::sql(
                "trips",
                "SELECT pickup_location_id, passenger_count as count, dropoff_location_id \
                 FROM taxi_table WHERE pickup_at >= DATE '2019-04-01'",
            ))
            .with(NodeDef::function(
                "trips_expectation",
                vec!["trips".into()],
                Requirements::default()
                    .with_interpreter("python3.11")
                    .with_package("pandas", "2.0.0"),
                "trips_expectation_impl",
            ))
            .with(NodeDef::sql(
                "pickups",
                "SELECT pickup_location_id, dropoff_location_id, COUNT(*) AS counts \
                 FROM trips GROUP BY pickup_location_id, dropoff_location_id \
                 ORDER BY counts DESC",
            ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectation_kind_from_naming_convention() {
        let n = NodeDef::function(
            "trips_expectation",
            vec!["trips".into()],
            Requirements::default(),
            "f",
        );
        assert_eq!(n.kind, NodeKind::Expectation);
        assert!(!n.materializes());
        let t = NodeDef::function(
            "enriched",
            vec!["trips".into()],
            Requirements::default(),
            "g",
        );
        assert_eq!(t.kind, NodeKind::FunctionTransform);
        assert!(t.materializes());
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut p = PipelineProject::new("p");
        p.add(NodeDef::sql("a", "SELECT 1")).unwrap();
        assert!(matches!(
            p.add(NodeDef::sql("a", "SELECT 2")),
            Err(PlannerError::DuplicateNode(_))
        ));
    }

    #[test]
    fn taxi_example_shape() {
        let p = PipelineProject::taxi_example();
        assert_eq!(
            p.node_names(),
            vec!["trips", "trips_expectation", "pickups"]
        );
        assert_eq!(p.get("trips").unwrap().kind, NodeKind::SqlTransform);
        assert_eq!(
            p.get("trips_expectation").unwrap().requirements.packages["pandas"],
            "2.0.0"
        );
    }

    #[test]
    fn source_text_distinguishes_nodes() {
        let a = NodeDef::sql("a", "SELECT 1");
        let b = NodeDef::sql("b", "SELECT 1");
        assert_ne!(a.source_text(), b.source_text());
    }

    #[test]
    fn project_json_round_trip() {
        let p = PipelineProject::taxi_example();
        let json = serde_json::to_string(&p).unwrap();
        let back: PipelineProject = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
