//! The logical pipeline plan: ordered steps with explicit dependencies and
//! connections to outside artifacts (the middle layer of Fig. 3).

use crate::dag::PipelineDag;
use crate::error::Result;
use crate::project::{NodeKind, PipelineProject};

/// What executing a step does to the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepAction {
    /// Write the artifact back as a table.
    Materialize,
    /// Evaluate a boolean audit; failure aborts the run before any merge.
    Audit,
}

/// One step of the logical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalStep {
    pub name: String,
    pub kind: NodeKind,
    pub action: StepAction,
    /// In-project inputs (artifacts produced by earlier steps).
    pub inputs: Vec<String>,
    /// External inputs (lake tables read by this step).
    pub external_inputs: Vec<String>,
}

/// The ordered logical plan for a whole pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPipeline {
    pub project_name: String,
    pub steps: Vec<LogicalStep>,
}

impl LogicalPipeline {
    /// Build the plan from a project (extracting the DAG on the way).
    pub fn plan(project: &PipelineProject) -> Result<LogicalPipeline> {
        let dag = PipelineDag::extract(project)?;
        Self::plan_with_dag(project, &dag, None)
    }

    /// Plan only a subset of nodes (the replay selector `-m node+`), or all
    /// when `selection` is `None`.
    pub fn plan_with_dag(
        project: &PipelineProject,
        dag: &PipelineDag,
        selection: Option<&[String]>,
    ) -> Result<LogicalPipeline> {
        let mut steps = Vec::new();
        for name in dag.topo_order() {
            if let Some(sel) = selection {
                if !sel.contains(name) {
                    continue;
                }
            }
            let node = project
                .get(name)
                .ok_or_else(|| crate::error::PlannerError::UnknownNode(name.clone()))?;
            let in_project = dag.deps_of(name)?.to_vec();
            // External tables this specific node reads: referenced tables
            // that are not project nodes.
            let external: Vec<String> = match &node.sql {
                Some(sql) => lakehouse_sql::referenced_tables(sql)
                    .map_err(|e| crate::error::PlannerError::Sql {
                        node: name.clone(),
                        source: e,
                    })?
                    .into_iter()
                    .filter(|t| project.get(t).is_none())
                    .collect(),
                None => node
                    .inputs
                    .iter()
                    .filter(|t| project.get(t).is_none())
                    .cloned()
                    .collect(),
            };
            steps.push(LogicalStep {
                name: name.clone(),
                kind: node.kind,
                action: if node.materializes() {
                    StepAction::Materialize
                } else {
                    StepAction::Audit
                },
                inputs: in_project,
                external_inputs: external,
            });
        }
        Ok(LogicalPipeline {
            project_name: project.name.clone(),
            steps,
        })
    }

    /// Names of artifacts this plan writes back.
    pub fn materialized_artifacts(&self) -> Vec<&str> {
        self.steps
            .iter()
            .filter(|s| s.action == StepAction::Materialize)
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Names of audits that must pass.
    pub fn audits(&self) -> Vec<&str> {
        self.steps
            .iter()
            .filter(|s| s.action == StepAction::Audit)
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Render the plan (EXPLAIN-style).
    pub fn display(&self) -> String {
        let mut out = format!("LogicalPipeline: {}\n", self.project_name);
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "  step {}: {} [{:?}/{:?}] inputs={:?} external={:?}\n",
                i + 1,
                s.name,
                s.kind,
                s.action,
                s.inputs,
                s.external_inputs
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxi_logical_plan() {
        let plan = LogicalPipeline::plan(&PipelineProject::taxi_example()).unwrap();
        assert_eq!(plan.steps.len(), 3);
        assert_eq!(plan.steps[0].name, "trips");
        assert_eq!(plan.steps[0].external_inputs, vec!["taxi_table"]);
        assert_eq!(plan.materialized_artifacts(), vec!["trips", "pickups"]);
        assert_eq!(plan.audits(), vec!["trips_expectation"]);
    }

    #[test]
    fn replay_selection_subsets_plan() {
        let project = PipelineProject::taxi_example();
        let dag = PipelineDag::extract(&project).unwrap();
        let sel = dag.descendants_inclusive("pickups").unwrap();
        let plan = LogicalPipeline::plan_with_dag(&project, &dag, Some(&sel)).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.steps[0].name, "pickups");
    }

    #[test]
    fn display_contains_steps() {
        let plan = LogicalPipeline::plan(&PipelineProject::taxi_example()).unwrap();
        let text = plan.display();
        assert!(text.contains("trips_expectation"));
        assert!(text.contains("Audit"));
        assert!(text.contains("taxi_table"));
    }
}
