//! Content-addressed project snapshots and the run registry.
//!
//! "The full project is snapshotted in an object storage and fingerprinted
//! … by assigning an id and immutable artifacts to each run, we guarantee
//! reproducibility for auditing and debugging purposes following the *code
//! is data* principle" (paper §4.4.1).

use crate::error::{PlannerError, Result};
use crate::project::PipelineProject;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// FNV-1a over bytes, hex-encoded (deterministic across runs/platforms).
pub fn fingerprint_bytes(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut h2: u64 = h ^ 0x9e3779b97f4a7c15;
    for &b in bytes {
        h2 ^= b as u64;
        h2 = h2.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}{h2:016x}")
}

/// An immutable snapshot of a project's code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectSnapshot {
    /// Fingerprint of the whole project (order-sensitive over nodes).
    pub project_fingerprint: String,
    /// Per-node fingerprints, keyed by node name.
    pub node_fingerprints: BTreeMap<String, String>,
}

impl ProjectSnapshot {
    pub fn of(project: &PipelineProject) -> ProjectSnapshot {
        let mut node_fingerprints = BTreeMap::new();
        let mut all = String::new();
        for node in &project.nodes {
            let text = node.source_text();
            all.push_str(&text);
            all.push('\n');
            node_fingerprints.insert(node.name.clone(), fingerprint_bytes(text.as_bytes()));
        }
        ProjectSnapshot {
            project_fingerprint: fingerprint_bytes(all.as_bytes()),
            node_fingerprints,
        }
    }
}

/// One recorded run: code version + data version + outcome. This is what
/// `bauplan run --run-id N -m node+` replays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    pub run_id: u64,
    /// The project as snapshotted for this run (full code, so replay never
    /// depends on the working tree).
    pub project: PipelineProject,
    pub snapshot: ProjectSnapshot,
    /// Catalog commit the run read from (the data version).
    pub data_version: String,
    /// Branch the run targeted.
    pub branch: String,
    /// Whether the run (including all expectations) succeeded.
    pub success: bool,
    /// Node name → rows produced (for materialized nodes).
    pub output_rows: BTreeMap<String, u64>,
}

/// An in-memory, append-only run registry (the paper uses Postgres; the
/// registry contract — assign ids, persist immutable records — is the same).
#[derive(Debug, Default)]
pub struct RunRegistry {
    runs: Vec<RunRecord>,
    reserved: u64,
}

impl RunRegistry {
    pub fn new() -> RunRegistry {
        RunRegistry::default()
    }

    /// Reserve the next run id (1-based, dense). Concurrent runs each get a
    /// distinct id even before their records land.
    pub fn reserve(&mut self) -> u64 {
        self.reserved += 1;
        self.reserved
    }

    /// The id the next `reserve()` call would return, plus one — kept for
    /// introspection.
    pub fn next_run_id(&self) -> u64 {
        self.reserved + 1
    }

    /// Record a completed run under a previously reserved id.
    pub fn record(&mut self, record: RunRecord) -> Result<()> {
        if record.run_id == 0 || record.run_id > self.reserved {
            return Err(PlannerError::InvalidProject(format!(
                "run id {} was never reserved (reserved up to {})",
                record.run_id, self.reserved
            )));
        }
        if self.runs.iter().any(|r| r.run_id == record.run_id) {
            return Err(PlannerError::InvalidProject(format!(
                "run id {} already recorded",
                record.run_id
            )));
        }
        self.runs.push(record);
        Ok(())
    }

    pub fn get(&self, run_id: u64) -> Result<&RunRecord> {
        self.runs
            .iter()
            .find(|r| r.run_id == run_id)
            .ok_or(PlannerError::UnknownRun(run_id))
    }

    pub fn len(&self) -> usize {
        self.runs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// All runs, oldest first.
    pub fn all(&self) -> &[RunRecord] {
        &self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_deterministic_and_distinct() {
        assert_eq!(fingerprint_bytes(b"abc"), fingerprint_bytes(b"abc"));
        assert_ne!(fingerprint_bytes(b"abc"), fingerprint_bytes(b"abd"));
        assert_eq!(fingerprint_bytes(b"abc").len(), 32);
    }

    #[test]
    fn snapshot_changes_with_code() {
        let p1 = PipelineProject::taxi_example();
        let s1 = ProjectSnapshot::of(&p1);
        let s1b = ProjectSnapshot::of(&p1);
        assert_eq!(s1, s1b);
        let mut p2 = p1.clone();
        p2.nodes[0].sql = Some("SELECT 1".into());
        let s2 = ProjectSnapshot::of(&p2);
        assert_ne!(s1.project_fingerprint, s2.project_fingerprint);
        assert_ne!(s1.node_fingerprints["trips"], s2.node_fingerprints["trips"]);
        // Unchanged nodes keep their fingerprints.
        assert_eq!(
            s1.node_fingerprints["pickups"],
            s2.node_fingerprints["pickups"]
        );
    }

    #[test]
    fn registry_sequencing() {
        let mut reg = RunRegistry::new();
        assert_eq!(reg.reserve(), 1);
        assert_eq!(reg.reserve(), 2);
        let p = PipelineProject::taxi_example();
        let rec = RunRecord {
            run_id: 1,
            project: p.clone(),
            snapshot: ProjectSnapshot::of(&p),
            data_version: "commit-abc".into(),
            branch: "main".into(),
            success: true,
            output_rows: BTreeMap::new(),
        };
        reg.record(rec.clone()).unwrap();
        assert_eq!(reg.get(1).unwrap().data_version, "commit-abc");
        assert!(matches!(reg.get(2), Err(PlannerError::UnknownRun(2))));
        // Unreserved id rejected.
        let mut bad = rec.clone();
        bad.run_id = 5;
        assert!(reg.record(bad).is_err());
        // Duplicate id rejected.
        assert!(reg.record(rec).is_err());
    }
}
