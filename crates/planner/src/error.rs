//! Error type for the planner.

use lakehouse_sql::SqlError;
use std::fmt;

/// Errors from code-intelligence planning.
#[derive(Debug)]
pub enum PlannerError {
    /// Two nodes declare the same artifact name.
    DuplicateNode(String),
    /// The dependency graph has a cycle.
    CycleDetected(Vec<String>),
    /// A replay selector referenced an unknown node.
    UnknownNode(String),
    /// A run id was not found in the registry.
    UnknownRun(u64),
    /// A SQL node failed to parse.
    Sql { node: String, source: SqlError },
    /// Invalid project configuration.
    InvalidProject(String),
}

impl fmt::Display for PlannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateNode(n) => write!(f, "duplicate node name: {n}"),
            Self::CycleDetected(path) => {
                write!(f, "dependency cycle: {}", path.join(" -> "))
            }
            Self::UnknownNode(n) => write!(f, "unknown node: {n}"),
            Self::UnknownRun(id) => write!(f, "unknown run id: {id}"),
            Self::Sql { node, source } => write!(f, "SQL error in node '{node}': {source}"),
            Self::InvalidProject(m) => write!(f, "invalid project: {m}"),
        }
    }
}

impl std::error::Error for PlannerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Sql { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PlannerError>;
