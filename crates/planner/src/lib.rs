//! # lakehouse-planner
//!
//! The **code intelligence** module (paper §4.4): takes the queries and
//! functions defining a pipeline and produces first a *logical plan* of
//! operations and finally a *physical plan* to run the desired
//! transformations — the middle and bottom layers of the paper's Fig. 3.
//!
//! * [`project`] — pipeline projects: declarative SQL nodes (one query, one
//!   artifact, dbt-style) and native function nodes (the Rust stand-in for
//!   the paper's Python expectations), with `@requirements`-style
//!   environment pins;
//! * [`dag`] — implicit DAG extraction: SQL nodes depend on the tables their
//!   `FROM` clauses reference; `<table>_expectation` functions depend on
//!   their named inputs. No imperative DAG construction anywhere;
//! * [`fingerprint`] — content-addressed project snapshots and the run
//!   registry ("code is data": same code + same data version → identical
//!   results, replayable by run id);
//! * [`logical`] — the ordered logical pipeline plan;
//! * [`physical`] — the physical plan with **operator fusion**: the
//!   optimization of §4.4.2 that runs filter-pushdown + SQL + expectation in
//!   one place instead of three isolated serverless functions, avoiding
//!   object-storage spillover.

pub mod dag;
pub mod error;
pub mod fingerprint;
pub mod logical;
pub mod physical;
pub mod project;

pub use dag::PipelineDag;
pub use error::{PlannerError, Result};
pub use fingerprint::{fingerprint_bytes, ProjectSnapshot, RunRecord, RunRegistry};
pub use logical::{LogicalPipeline, LogicalStep, StepAction};
pub use physical::{EdgeLocality, ExecutionMode, PhysicalPipeline, Stage};
pub use project::{NodeDef, NodeKind, PipelineProject};
