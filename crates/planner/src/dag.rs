//! Implicit DAG extraction: dependencies come from the code itself —
//! SQL `FROM` references and function parameter names — never from an
//! imperative DAG API ("functions are all you need", paper §4.1).

use crate::error::{PlannerError, Result};
use crate::project::PipelineProject;
use lakehouse_sql::referenced_tables;
use std::collections::{BTreeMap, BTreeSet};

/// The extracted dependency graph of a project.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineDag {
    /// node → its in-project dependencies.
    deps: BTreeMap<String, Vec<String>>,
    /// Tables referenced but not produced by any node: the external inputs
    /// (Iceberg tables in the lake).
    external_inputs: BTreeSet<String>,
    /// Topological order of the project's nodes.
    topo_order: Vec<String>,
}

impl PipelineDag {
    /// Extract the DAG from a project.
    pub fn extract(project: &PipelineProject) -> Result<PipelineDag> {
        let node_names: BTreeSet<String> = project.nodes.iter().map(|n| n.name.clone()).collect();
        let mut deps: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut external_inputs = BTreeSet::new();
        for node in &project.nodes {
            let referenced: Vec<String> = match &node.sql {
                Some(sql) => referenced_tables(sql).map_err(|e| PlannerError::Sql {
                    node: node.name.clone(),
                    source: e,
                })?,
                None => node.inputs.clone(),
            };
            let mut in_project = Vec::new();
            for r in referenced {
                if node_names.contains(&r) {
                    in_project.push(r);
                } else {
                    external_inputs.insert(r);
                }
            }
            deps.insert(node.name.clone(), in_project);
        }
        let topo_order = topo_sort(&deps)?;
        Ok(PipelineDag {
            deps,
            external_inputs,
            topo_order,
        })
    }

    /// Nodes in dependency order (parents before children).
    pub fn topo_order(&self) -> &[String] {
        &self.topo_order
    }

    /// In-project dependencies of a node.
    pub fn deps_of(&self, node: &str) -> Result<&[String]> {
        self.deps
            .get(node)
            .map(Vec::as_slice)
            .ok_or_else(|| PlannerError::UnknownNode(node.to_string()))
    }

    /// External (lake) tables the pipeline reads.
    pub fn external_inputs(&self) -> impl Iterator<Item = &str> {
        self.external_inputs.iter().map(String::as_str)
    }

    /// Direct consumers of a node.
    pub fn children_of(&self, node: &str) -> Vec<&str> {
        self.deps
            .iter()
            .filter(|(_, ds)| ds.iter().any(|d| d == node))
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// The node plus all transitive descendants, in topological order — the
    /// `-m node+` replay selector of the paper's CLI (§4.6).
    pub fn descendants_inclusive(&self, node: &str) -> Result<Vec<String>> {
        if !self.deps.contains_key(node) {
            return Err(PlannerError::UnknownNode(node.to_string()));
        }
        let mut selected = BTreeSet::new();
        selected.insert(node.to_string());
        // Repeated passes over topo order: children appear after parents.
        for n in &self.topo_order {
            if selected.contains(n) {
                continue;
            }
            if self.deps[n].iter().any(|d| selected.contains(d)) {
                selected.insert(n.clone());
            }
        }
        Ok(self
            .topo_order
            .iter()
            .filter(|n| selected.contains(*n))
            .cloned()
            .collect())
    }
}

/// Kahn's algorithm with deterministic (name-ordered) tie-breaking; reports
/// a cycle path on failure.
fn topo_sort(deps: &BTreeMap<String, Vec<String>>) -> Result<Vec<String>> {
    let mut in_degree: BTreeMap<&str, usize> =
        deps.iter().map(|(n, ds)| (n.as_str(), ds.len())).collect();
    let mut order = Vec::with_capacity(deps.len());
    loop {
        // Deterministic: pick the lexicographically smallest ready node.
        let ready: Option<&str> = in_degree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .next();
        let Some(node) = ready else { break };
        in_degree.remove(node);
        for (n, ds) in deps {
            if ds.iter().any(|d| d == node) {
                if let Some(d) = in_degree.get_mut(n.as_str()) {
                    *d -= 1;
                }
            }
        }
        order.push(node.to_string());
    }
    if !in_degree.is_empty() {
        let cycle: Vec<String> = in_degree.keys().map(|s| s.to_string()).collect();
        return Err(PlannerError::CycleDetected(cycle));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::{NodeDef, Requirements};

    #[test]
    fn taxi_dag_shape() {
        let dag = PipelineDag::extract(&PipelineProject::taxi_example()).unwrap();
        // trips first; expectation and pickups both depend on trips.
        assert_eq!(dag.topo_order()[0], "trips");
        assert_eq!(dag.deps_of("pickups").unwrap(), &["trips"]);
        assert_eq!(dag.deps_of("trips_expectation").unwrap(), &["trips"]);
        assert_eq!(dag.deps_of("trips").unwrap(), &[] as &[String]);
        let ext: Vec<&str> = dag.external_inputs().collect();
        assert_eq!(ext, vec!["taxi_table"]);
    }

    #[test]
    fn children_lookup() {
        let dag = PipelineDag::extract(&PipelineProject::taxi_example()).unwrap();
        let mut kids = dag.children_of("trips");
        kids.sort();
        assert_eq!(kids, vec!["pickups", "trips_expectation"]);
    }

    #[test]
    fn descendants_inclusive_is_replay_selector() {
        let dag = PipelineDag::extract(&PipelineProject::taxi_example()).unwrap();
        let from_trips = dag.descendants_inclusive("trips").unwrap();
        assert_eq!(from_trips.len(), 3);
        let from_pickups = dag.descendants_inclusive("pickups").unwrap();
        assert_eq!(from_pickups, vec!["pickups"]);
        assert!(dag.descendants_inclusive("ghost").is_err());
    }

    #[test]
    fn cycle_detected() {
        let p = PipelineProject::new("cyclic")
            .with(NodeDef::sql("a", "SELECT * FROM b"))
            .with(NodeDef::sql("b", "SELECT * FROM a"));
        assert!(matches!(
            PipelineDag::extract(&p),
            Err(PlannerError::CycleDetected(_))
        ));
    }

    #[test]
    fn self_cycle_detected() {
        let p = PipelineProject::new("selfy").with(NodeDef::sql("a", "SELECT * FROM a"));
        assert!(PipelineDag::extract(&p).is_err());
    }

    #[test]
    fn bad_sql_surfaces_node_name() {
        let p = PipelineProject::new("bad").with(NodeDef::sql("broken", "SELEKT nope"));
        match PipelineDag::extract(&p) {
            Err(PlannerError::Sql { node, .. }) => assert_eq!(node, "broken"),
            other => panic!("expected Sql error, got {other:?}"),
        }
    }

    #[test]
    fn diamond_topology() {
        let p = PipelineProject::new("diamond")
            .with(NodeDef::sql("base", "SELECT * FROM raw"))
            .with(NodeDef::sql("left", "SELECT * FROM base"))
            .with(NodeDef::sql("right", "SELECT * FROM base"))
            .with(NodeDef::function(
                "merged",
                vec!["left".into(), "right".into()],
                Requirements::default(),
                "m",
            ));
        let dag = PipelineDag::extract(&p).unwrap();
        let order = dag.topo_order();
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("base") < pos("left"));
        assert!(pos("base") < pos("right"));
        assert!(pos("left") < pos("merged"));
        assert!(pos("right") < pos("merged"));
        assert_eq!(dag.descendants_inclusive("base").unwrap().len(), 4);
    }

    #[test]
    fn deterministic_order() {
        let p = PipelineProject::new("tie")
            .with(NodeDef::sql("zeta", "SELECT * FROM raw"))
            .with(NodeDef::sql("alpha", "SELECT * FROM raw"));
        let dag = PipelineDag::extract(&p).unwrap();
        assert_eq!(dag.topo_order(), &["alpha".to_string(), "zeta".to_string()]);
    }
}
