//! The physical pipeline plan: stages, fusion, and edge locality (the bottom
//! layer of Fig. 3).
//!
//! The paper's §4.4.2 optimization: instead of running "an Iceberg command
//! first, a SQL query and then a Python function as three separate
//! executions", push filters down, keep the intermediate table in memory,
//! and run the SQL logic and the expectation *in place* — a "5× faster
//! feedback loop even with small datasets" that "avoids unnecessary
//! spillover to object storage". Fusion here groups DAG nodes into stages;
//! edges inside a stage pass data in memory, edges across stages spill to
//! the object store.

use crate::dag::PipelineDag;
use crate::error::Result;
use crate::logical::LogicalPipeline;

/// How a plan maps steps to serverless functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Isomorphic mapping: one (stateless) function per node, all
    /// intermediates through object storage — the paper's "first Bauplan
    /// version … the simplest possible idea".
    Naive,
    /// Fused stages with in-memory data passing — the optimized executor.
    Fused,
}

/// Locality of one producer→consumer edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeLocality {
    pub from: String,
    pub to: String,
    pub in_memory: bool,
}

/// A group of steps executed in one container invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Step names in topological order.
    pub steps: Vec<String>,
}

/// The physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPipeline {
    pub mode: ExecutionMode,
    pub stages: Vec<Stage>,
    pub edges: Vec<EdgeLocality>,
}

impl PhysicalPipeline {
    /// Compile a logical plan for the given mode.
    ///
    /// * `Naive`: one stage per step.
    /// * `Fused`: greedily pack steps into stages until the estimated
    ///   working set exceeds `memory_budget` (step estimates via
    ///   `estimate_bytes`; at the paper's Reasonable Scale, one stage is the
    ///   common case).
    pub fn compile(
        logical: &LogicalPipeline,
        dag: &PipelineDag,
        mode: ExecutionMode,
        memory_budget: u64,
        estimate_bytes: impl Fn(&str) -> u64,
    ) -> Result<PhysicalPipeline> {
        let stages: Vec<Stage> = match mode {
            ExecutionMode::Naive => logical
                .steps
                .iter()
                .map(|s| Stage {
                    steps: vec![s.name.clone()],
                })
                .collect(),
            ExecutionMode::Fused => {
                let mut stages: Vec<Stage> = Vec::new();
                let mut current: Vec<String> = Vec::new();
                let mut current_bytes: u64 = 0;
                for step in &logical.steps {
                    let est = estimate_bytes(&step.name);
                    if !current.is_empty() && current_bytes + est > memory_budget {
                        stages.push(Stage {
                            steps: std::mem::take(&mut current),
                        });
                        current_bytes = 0;
                    }
                    current.push(step.name.clone());
                    current_bytes += est;
                }
                if !current.is_empty() {
                    stages.push(Stage { steps: current });
                }
                stages
            }
        };
        // Edge localities: in-memory iff producer and consumer share a stage.
        let stage_of = |name: &str| -> Option<usize> {
            stages
                .iter()
                .position(|st| st.steps.iter().any(|s| s == name))
        };
        let mut edges = Vec::new();
        for step in &logical.steps {
            for dep in &step.inputs {
                // Only edges between planned steps (replay subsets may read
                // a dep's artifact from the catalog instead).
                if let (Some(a), Some(b)) = (stage_of(dep), stage_of(&step.name)) {
                    edges.push(EdgeLocality {
                        from: dep.clone(),
                        to: step.name.clone(),
                        in_memory: a == b,
                    });
                }
            }
        }
        let _ = dag;
        Ok(PhysicalPipeline {
            mode,
            stages,
            edges,
        })
    }

    /// Number of object-store round trips this plan performs for
    /// intermediates (the quantity fusion minimizes).
    pub fn spilled_edges(&self) -> usize {
        self.edges.iter().filter(|e| !e.in_memory).count()
    }

    /// Render the plan.
    pub fn display(&self) -> String {
        let mut out = format!("PhysicalPipeline ({:?})\n", self.mode);
        for (i, st) in self.stages.iter().enumerate() {
            out.push_str(&format!("  stage {}: [{}]\n", i + 1, st.steps.join(", ")));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "  edge {} -> {}: {}\n",
                e.from,
                e.to,
                if e.in_memory {
                    "in-memory"
                } else {
                    "object-store"
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::PipelineProject;

    fn fixtures() -> (LogicalPipeline, PipelineDag) {
        let project = PipelineProject::taxi_example();
        let dag = PipelineDag::extract(&project).unwrap();
        let logical = LogicalPipeline::plan(&project).unwrap();
        (logical, dag)
    }

    #[test]
    fn naive_one_stage_per_step() {
        let (logical, dag) = fixtures();
        let p = PhysicalPipeline::compile(&logical, &dag, ExecutionMode::Naive, u64::MAX, |_| 1)
            .unwrap();
        assert_eq!(p.stages.len(), 3);
        assert_eq!(p.spilled_edges(), 2); // trips→expectation, trips→pickups
        assert!(p.edges.iter().all(|e| !e.in_memory));
    }

    #[test]
    fn fused_single_stage_when_fits() {
        let (logical, dag) = fixtures();
        let p =
            PhysicalPipeline::compile(&logical, &dag, ExecutionMode::Fused, 1 << 30, |_| 1 << 20)
                .unwrap();
        assert_eq!(p.stages.len(), 1);
        assert_eq!(p.spilled_edges(), 0);
        assert!(p.edges.iter().all(|e| e.in_memory));
    }

    #[test]
    fn fused_splits_on_memory_budget() {
        let (logical, dag) = fixtures();
        // Each step "weighs" 10; budget 15 → stages of ~1 step each after
        // the first pair exceeds.
        let p =
            PhysicalPipeline::compile(&logical, &dag, ExecutionMode::Fused, 15, |_| 10).unwrap();
        assert!(p.stages.len() >= 2);
        assert!(p.spilled_edges() >= 1);
        // All steps still present exactly once.
        let total: usize = p.stages.iter().map(|s| s.steps.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn display_mentions_localities() {
        let (logical, dag) = fixtures();
        let p = PhysicalPipeline::compile(&logical, &dag, ExecutionMode::Naive, u64::MAX, |_| 1)
            .unwrap();
        let text = p.display();
        assert!(text.contains("object-store"));
        assert!(text.contains("stage 1"));
    }
}
