//! CRC32C (Castagnoli) — the checksum both the buffer pool and the file
//! format use to detect torn or bit-rotted bytes.
//!
//! CRC32C is what real lakehouse formats settled on (Parquet page CRCs,
//! iSCSI, ext4): cheap, well-studied error detection with hardware support
//! on every modern ISA. This implementation is a portable table-driven
//! variant (slicing-by-one) with no dependencies; it exists as its own
//! crate because the store layer (cache entry frames) and the format layer
//! (footer + column chunk verification) both need the exact same function,
//! and neither depends on the other.

/// Reflected CRC32C polynomial (Castagnoli, 0x1EDC6F41 bit-reversed).
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32C of `data` in one call.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC32C hasher for multi-slice frames.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    pub fn new() -> Crc32c {
        Crc32c { state: !0 }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors from RFC 3720 (iSCSI) appendix B.4 and the
    /// de-facto reference used by every CRC32C implementation.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"a"), 0xC1D0_4330);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the cheapest round trip is the one never made";
        let mut h = Crc32c::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32c(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0x5Au8; 1024];
        let clean = crc32c(&data);
        data[512] ^= 0x01;
        assert_ne!(crc32c(&data), clean);
    }
}
