//! Logical-plan optimizer: constant folding, predicate pushdown, and
//! projection pruning.
//!
//! These three rules are what make the paper's execution-plan claims real:
//! pushdown lets the table layer prune files/row groups before any bytes
//! move, and projection pruning shrinks what does move (§4.4.2).

use crate::ast::{ArithOp, Expr, LogicalOp};
use crate::error::Result;
use crate::logical::{resolve_column, LogicalPlan};
use lakehouse_columnar::kernels::cast::cast_value;
use lakehouse_columnar::Value;

/// Run all rules to fixpoint-ish (each rule once; they are confluent for our
/// plan shapes).
pub fn optimize(plan: LogicalPlan) -> Result<LogicalPlan> {
    let plan = fold_constants_in_plan(plan)?;
    let plan = push_down_predicates(plan)?;
    let plan = prune_projections(plan)?;
    Ok(plan)
}

// ---- constant folding ------------------------------------------------------

fn fold_constants_in_plan(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(fold_constants_in_plan(*input)?),
            predicate: fold_expr(predicate),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(fold_constants_in_plan(*input)?),
            exprs: exprs.into_iter().map(|(e, n)| (fold_expr(e), n)).collect(),
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            agg_exprs,
        } => LogicalPlan::Aggregate {
            input: Box::new(fold_constants_in_plan(*input)?),
            group_exprs: group_exprs
                .into_iter()
                .map(|(e, n)| (fold_expr(e), n))
                .collect(),
            agg_exprs,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
        } => LogicalPlan::Join {
            left: Box::new(fold_constants_in_plan(*left)?),
            right: Box::new(fold_constants_in_plan(*right)?),
            join_type,
            on,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(fold_constants_in_plan(*input)?),
            keys: keys.into_iter().map(|(e, d)| (fold_expr(e), d)).collect(),
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(fold_constants_in_plan(*input)?),
            limit,
            offset,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(fold_constants_in_plan(*input)?),
        },
        LogicalPlan::SubqueryAlias { input, alias } => LogicalPlan::SubqueryAlias {
            input: Box::new(fold_constants_in_plan(*input)?),
            alias,
        },
        scan @ LogicalPlan::Scan { .. } => scan,
    })
}

/// Fold constant subexpressions bottom-up.
pub fn fold_expr(expr: Expr) -> Expr {
    match expr {
        Expr::Arith { op, left, right } => {
            let left = fold_expr(*left);
            let right = fold_expr(*right);
            if let (Expr::Literal(l), Expr::Literal(r)) = (&left, &right) {
                if let Some(v) = fold_arith(op, l, r) {
                    return Expr::Literal(v);
                }
            }
            Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        Expr::Compare { op, left, right } => {
            let left = fold_expr(*left);
            let right = fold_expr(*right);
            if let (Expr::Literal(l), Expr::Literal(r)) = (&left, &right) {
                if !l.is_null() && !r.is_null() {
                    return Expr::Literal(Value::Bool(op.matches(l.total_cmp(r))));
                }
            }
            Expr::Compare {
                op,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        Expr::Logical { op, left, right } => {
            let left = fold_expr(*left);
            let right = fold_expr(*right);
            match (op, &left, &right) {
                (LogicalOp::And, Expr::Literal(Value::Bool(true)), _) => right,
                (LogicalOp::And, _, Expr::Literal(Value::Bool(true))) => left,
                (LogicalOp::And, Expr::Literal(Value::Bool(false)), _)
                | (LogicalOp::And, _, Expr::Literal(Value::Bool(false))) => {
                    Expr::Literal(Value::Bool(false))
                }
                (LogicalOp::Or, Expr::Literal(Value::Bool(false)), _) => right,
                (LogicalOp::Or, _, Expr::Literal(Value::Bool(false))) => left,
                (LogicalOp::Or, Expr::Literal(Value::Bool(true)), _)
                | (LogicalOp::Or, _, Expr::Literal(Value::Bool(true))) => {
                    Expr::Literal(Value::Bool(true))
                }
                _ => Expr::Logical {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                },
            }
        }
        Expr::Not(e) => {
            let e = fold_expr(*e);
            if let Expr::Literal(Value::Bool(b)) = e {
                return Expr::Literal(Value::Bool(!b));
            }
            Expr::Not(Box::new(e))
        }
        Expr::Negate(e) => {
            let e = fold_expr(*e);
            match &e {
                Expr::Literal(Value::Int64(i)) if *i != i64::MIN => {
                    return Expr::Literal(Value::Int64(-i))
                }
                Expr::Literal(Value::Float64(f)) => return Expr::Literal(Value::Float64(-f)),
                _ => {}
            }
            Expr::Negate(Box::new(e))
        }
        Expr::Cast { expr, to } => {
            let e = fold_expr(*expr);
            if let Expr::Literal(v) = &e {
                if let Ok(folded) = cast_value(v, to) {
                    return Expr::Literal(folded);
                }
            }
            Expr::Cast {
                expr: Box::new(e),
                to,
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(fold_expr(*expr)),
            low: Box::new(fold_expr(*low)),
            high: Box::new(fold_expr(*high)),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(fold_expr(*expr)),
            list: list.into_iter().map(fold_expr).collect(),
            negated,
        },
        Expr::Function { name, args } => Expr::Function {
            name,
            args: args.into_iter().map(fold_expr).collect(),
        },
        Expr::Case {
            branches,
            else_expr,
        } => Expr::Case {
            branches: branches
                .into_iter()
                .map(|(c, v)| (fold_expr(c), fold_expr(v)))
                .collect(),
            else_expr: else_expr.map(|e| Box::new(fold_expr(*e))),
        },
        other => other,
    }
}

fn fold_arith(op: ArithOp, l: &Value, r: &Value) -> Option<Value> {
    if l.is_null() || r.is_null() {
        return Some(Value::Null);
    }
    match (l, r) {
        (Value::Int64(a), Value::Int64(b)) => Some(match op {
            ArithOp::Add => Value::Int64(a.checked_add(*b)?),
            ArithOp::Sub => Value::Int64(a.checked_sub(*b)?),
            ArithOp::Mul => Value::Int64(a.checked_mul(*b)?),
            ArithOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int64(a.checked_div(*b)?)
                }
            }
            ArithOp::Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int64(a.checked_rem(*b)?)
                }
            }
        }),
        _ => {
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            Some(Value::Float64(match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => a / b,
                ArithOp::Mod => a % b,
            }))
        }
    }
}

// ---- predicate pushdown ----------------------------------------------------

/// Split a conjunction into its AND-ed parts.
pub fn split_conjunction(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Logical {
            op: LogicalOp::And,
            left,
            right,
        } => {
            let mut out = split_conjunction(left);
            out.extend(split_conjunction(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Recombine predicates into a conjunction.
pub fn conjoin(mut parts: Vec<Expr>) -> Option<Expr> {
    let first = if parts.is_empty() {
        return None;
    } else {
        parts.remove(0)
    };
    Some(parts.into_iter().fold(first, |acc, p| Expr::Logical {
        op: LogicalOp::And,
        left: Box::new(acc),
        right: Box::new(p),
    }))
}

fn push_down_predicates(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_down_predicates(*input)?;
            let parts = split_conjunction(&predicate);
            push_filter_into(input, parts)?
        }
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(push_down_predicates(*input)?),
            exprs,
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            agg_exprs,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_down_predicates(*input)?),
            group_exprs,
            agg_exprs,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
        } => LogicalPlan::Join {
            left: Box::new(push_down_predicates(*left)?),
            right: Box::new(push_down_predicates(*right)?),
            join_type,
            on,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_down_predicates(*input)?),
            keys,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(push_down_predicates(*input)?),
            limit,
            offset,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(push_down_predicates(*input)?),
        },
        LogicalPlan::SubqueryAlias { input, alias } => LogicalPlan::SubqueryAlias {
            input: Box::new(push_down_predicates(*input)?),
            alias,
        },
        scan @ LogicalPlan::Scan { .. } => scan,
    })
}

/// Push each conjunct as deep as possible; conjuncts that cannot be pushed
/// are re-attached as a Filter at this level.
fn push_filter_into(plan: LogicalPlan, parts: Vec<Expr>) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Scan {
            table,
            schema,
            projection,
            mut filters,
        } => {
            let mut residual = Vec::new();
            for p in parts {
                if predicate_resolves(&p, &schema) {
                    filters.push(p);
                } else {
                    residual.push(p);
                }
            }
            let scan = LogicalPlan::Scan {
                table,
                schema,
                projection,
                filters,
            };
            Ok(wrap_filter(scan, residual))
        }
        LogicalPlan::SubqueryAlias { input, alias } => {
            let inner = push_filter_into(*input, parts)?;
            Ok(LogicalPlan::SubqueryAlias {
                input: Box::new(inner),
                alias,
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            // Merge with the deeper filter's conjuncts and push together.
            let mut all = split_conjunction(&predicate);
            all.extend(parts);
            push_filter_into(*input, all)
        }
        LogicalPlan::Project { input, exprs } => {
            // A conjunct can cross the projection if every column it
            // references is a pass-through column (projected as a bare
            // column reference).
            let mut pushable = Vec::new();
            let mut residual = Vec::new();
            for p in parts {
                match rewrite_through_project(&p, &exprs) {
                    Some(rewritten) => pushable.push(rewritten),
                    None => residual.push(p),
                }
            }
            let inner = if pushable.is_empty() {
                *input
            } else {
                push_filter_into(*input, pushable)?
            };
            let project = LogicalPlan::Project {
                input: Box::new(inner),
                exprs,
            };
            Ok(wrap_filter(project, residual))
        }
        other => Ok(wrap_filter(other, parts)),
    }
}

fn wrap_filter(plan: LogicalPlan, parts: Vec<Expr>) -> LogicalPlan {
    match conjoin(parts) {
        Some(predicate) => LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        },
        None => plan,
    }
}

/// Can every column in `expr` be resolved against `schema`?
fn predicate_resolves(expr: &Expr, schema: &lakehouse_columnar::Schema) -> bool {
    let mut ok = true;
    expr.walk(&mut |e| {
        if let Expr::Column { qualifier, name } = e {
            if resolve_column(schema, qualifier.as_deref(), name).is_err() {
                ok = false;
            }
        }
    });
    ok
}

/// Rewrite a predicate's column references through a projection (output name
/// → input expression), succeeding only when all referenced projections are
/// bare columns.
fn rewrite_through_project(expr: &Expr, exprs: &[(Expr, String)]) -> Option<Expr> {
    match expr {
        Expr::Column { qualifier, name } => {
            let target = exprs.iter().find(|(_, n)| {
                n == name
                    || qualifier
                        .as_ref()
                        .is_some_and(|q| n == &format!("{q}.{name}"))
            })?;
            match &target.0 {
                col @ Expr::Column { .. } => Some(col.clone()),
                _ => None,
            }
        }
        Expr::Literal(_) => Some(expr.clone()),
        Expr::Compare { op, left, right } => Some(Expr::Compare {
            op: *op,
            left: Box::new(rewrite_through_project(left, exprs)?),
            right: Box::new(rewrite_through_project(right, exprs)?),
        }),
        Expr::Logical { op, left, right } => Some(Expr::Logical {
            op: *op,
            left: Box::new(rewrite_through_project(left, exprs)?),
            right: Box::new(rewrite_through_project(right, exprs)?),
        }),
        Expr::Not(e) => Some(Expr::Not(Box::new(rewrite_through_project(e, exprs)?))),
        Expr::IsNull { expr, negated } => Some(Expr::IsNull {
            expr: Box::new(rewrite_through_project(expr, exprs)?),
            negated: *negated,
        }),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Some(Expr::Between {
            expr: Box::new(rewrite_through_project(expr, exprs)?),
            low: Box::new(rewrite_through_project(low, exprs)?),
            high: Box::new(rewrite_through_project(high, exprs)?),
            negated: *negated,
        }),
        Expr::InList {
            expr,
            list,
            negated,
        } => Some(Expr::InList {
            expr: Box::new(rewrite_through_project(expr, exprs)?),
            list: list
                .iter()
                .map(|e| rewrite_through_project(e, exprs))
                .collect::<Option<Vec<_>>>()?,
            negated: *negated,
        }),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Some(Expr::Like {
            expr: Box::new(rewrite_through_project(expr, exprs)?),
            pattern: pattern.clone(),
            negated: *negated,
        }),
        // Anything else (functions, case, casts) stays above the projection.
        _ => None,
    }
}

// ---- projection pruning ----------------------------------------------------

/// Narrow every Scan to the columns actually used above it.
fn prune_projections(plan: LogicalPlan) -> Result<LogicalPlan> {
    // Determine required columns top-down; None = all columns required.
    fn go(plan: LogicalPlan, required: Option<Vec<String>>) -> Result<LogicalPlan> {
        Ok(match plan {
            LogicalPlan::Scan {
                table,
                schema,
                projection,
                filters,
            } => {
                let proj = match (projection, required) {
                    (Some(p), _) => Some(p), // already narrowed upstream
                    (None, Some(mut req)) => {
                        // Filters' columns must stay readable.
                        for f in &filters {
                            for c in f.referenced_columns() {
                                if !req.contains(&c) {
                                    req.push(c);
                                }
                            }
                        }
                        // Keep schema order; drop unknown names (qualified
                        // references resolved elsewhere keep the scan whole).
                        let cols: Vec<String> = schema
                            .fields()
                            .iter()
                            .map(|f| f.name().to_string())
                            .filter(|n| req.contains(n))
                            .collect();
                        if cols.len() == schema.len() || cols.is_empty() {
                            None
                        } else {
                            Some(cols)
                        }
                    }
                    (None, None) => None,
                };
                LogicalPlan::Scan {
                    table,
                    schema,
                    projection: proj,
                    filters,
                }
            }
            LogicalPlan::Project { input, exprs } => {
                let mut needed = Vec::new();
                for (e, _) in &exprs {
                    for c in e.referenced_columns() {
                        if !needed.contains(&c) {
                            needed.push(c);
                        }
                    }
                }
                LogicalPlan::Project {
                    input: Box::new(go(*input, Some(needed))?),
                    exprs,
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                let required = required.map(|mut req| {
                    for c in predicate.referenced_columns() {
                        if !req.contains(&c) {
                            req.push(c);
                        }
                    }
                    req
                });
                LogicalPlan::Filter {
                    input: Box::new(go(*input, required)?),
                    predicate,
                }
            }
            LogicalPlan::Aggregate {
                input,
                group_exprs,
                agg_exprs,
            } => {
                let mut needed = Vec::new();
                for (e, _) in &group_exprs {
                    needed.extend(e.referenced_columns());
                }
                for (a, _) in &agg_exprs {
                    if let Some(e) = &a.arg {
                        needed.extend(e.referenced_columns());
                    }
                }
                needed.dedup();
                LogicalPlan::Aggregate {
                    input: Box::new(go(*input, Some(needed))?),
                    group_exprs,
                    agg_exprs,
                }
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                on,
            } => {
                // Conservative: joins require all columns (output may use
                // any; ON uses some). Recurse without narrowing.
                LogicalPlan::Join {
                    left: Box::new(go(*left, None)?),
                    right: Box::new(go(*right, None)?),
                    join_type,
                    on,
                }
            }
            LogicalPlan::Sort { input, keys } => {
                let required = required.map(|mut req| {
                    for (e, _) in &keys {
                        for c in e.referenced_columns() {
                            if !req.contains(&c) {
                                req.push(c);
                            }
                        }
                    }
                    req
                });
                LogicalPlan::Sort {
                    input: Box::new(go(*input, required)?),
                    keys,
                }
            }
            LogicalPlan::Limit {
                input,
                limit,
                offset,
            } => LogicalPlan::Limit {
                input: Box::new(go(*input, required)?),
                limit,
                offset,
            },
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                input: Box::new(go(*input, required)?),
            },
            LogicalPlan::SubqueryAlias { input, alias } => LogicalPlan::SubqueryAlias {
                input: Box::new(go(*input, required)?),
                alias,
            },
        })
    }
    go(plan, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{plan_select, SchemaProvider};
    use crate::parser::parse_select;
    use lakehouse_columnar::kernels::CmpOp;
    use lakehouse_columnar::{DataType, Field, Schema};

    struct Fixture;
    impl SchemaProvider for Fixture {
        fn table_schema(&self, table: &str) -> Option<Schema> {
            (table == "t").then(|| {
                Schema::new(vec![
                    Field::new("a", DataType::Int64, false),
                    Field::new("b", DataType::Float64, true),
                    Field::new("c", DataType::Utf8, true),
                ])
            })
        }
    }

    fn optimized(sql: &str) -> LogicalPlan {
        optimize(plan_select(&parse_select(sql).unwrap(), &Fixture).unwrap()).unwrap()
    }

    fn find_scan(plan: &LogicalPlan) -> &LogicalPlan {
        match plan {
            LogicalPlan::Scan { .. } => plan,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::SubqueryAlias { input, .. } => find_scan(input),
            LogicalPlan::Join { left, .. } => find_scan(left),
        }
    }

    #[test]
    fn constant_folding() {
        assert_eq!(
            fold_expr(Expr::Arith {
                op: ArithOp::Add,
                left: Box::new(Expr::lit(1i64)),
                right: Box::new(Expr::lit(2i64)),
            }),
            Expr::lit(3i64)
        );
        assert_eq!(
            fold_expr(Expr::Compare {
                op: CmpOp::Gt,
                left: Box::new(Expr::lit(3i64)),
                right: Box::new(Expr::lit(2i64)),
            }),
            Expr::lit(true)
        );
    }

    #[test]
    fn and_true_simplifies() {
        let e = fold_expr(Expr::Logical {
            op: LogicalOp::And,
            left: Box::new(Expr::lit(true)),
            right: Box::new(Expr::col("a")),
        });
        assert_eq!(e, Expr::col("a"));
    }

    #[test]
    fn where_pushed_into_scan() {
        let p = optimized("SELECT a FROM t WHERE a > 5 AND b < 2.0");
        let LogicalPlan::Scan { filters, .. } = find_scan(&p) else {
            panic!()
        };
        assert_eq!(filters.len(), 2);
    }

    #[test]
    fn projection_pruned_to_used_columns() {
        let p = optimized("SELECT a FROM t WHERE b > 1.0");
        let LogicalPlan::Scan { projection, .. } = find_scan(&p) else {
            panic!()
        };
        let proj = projection.clone().unwrap();
        assert!(proj.contains(&"a".to_string()));
        assert!(proj.contains(&"b".to_string()));
        assert!(!proj.contains(&"c".to_string()));
    }

    #[test]
    fn pushdown_through_subquery_alias() {
        let p = optimized("SELECT a FROM (SELECT a, b FROM t) sub WHERE a = 1");
        let LogicalPlan::Scan { filters, .. } = find_scan(&p) else {
            panic!()
        };
        assert_eq!(filters.len(), 1);
        assert!(filters[0].to_string().contains("(a = 1)"));
    }

    #[test]
    fn having_not_pushed_below_aggregate() {
        let p = optimized("SELECT c, COUNT(*) AS n FROM t GROUP BY c HAVING COUNT(*) > 2");
        // The filter on __agg_0 must remain above the aggregate node.
        fn has_filter_above_agg(plan: &LogicalPlan) -> bool {
            match plan {
                LogicalPlan::Filter { input, .. } => {
                    matches!(**input, LogicalPlan::Aggregate { .. }) || has_filter_above_agg(input)
                }
                LogicalPlan::Project { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Distinct { input }
                | LogicalPlan::SubqueryAlias { input, .. } => has_filter_above_agg(input),
                _ => false,
            }
        }
        assert!(has_filter_above_agg(&p));
        let LogicalPlan::Scan { filters, .. } = find_scan(&p) else {
            panic!()
        };
        assert!(filters.is_empty());
    }

    #[test]
    fn split_and_conjoin_round_trip() {
        let e = parse_select("SELECT * FROM t WHERE a = 1 AND b = 2.0 AND c = 'x'")
            .unwrap()
            .where_clause
            .unwrap();
        let parts = split_conjunction(&e);
        assert_eq!(parts.len(), 3);
        let back = conjoin(parts.clone()).unwrap();
        assert_eq!(split_conjunction(&back), parts);
    }

    #[test]
    fn cast_literal_folds() {
        let e = fold_expr(Expr::Cast {
            expr: Box::new(Expr::lit(2i64)),
            to: DataType::Float64,
        });
        assert_eq!(e, Expr::Literal(lakehouse_columnar::Value::Float64(2.0)));
    }
}
