//! Logical plans and the AST → plan translation (the "logical plan" layer of
//! the paper's Fig. 3).

use crate::ast::{Expr, JoinType, Relation, SelectItem, SelectStmt};
use crate::error::{Result, SqlError};
use crate::functions::is_scalar_function;
use lakehouse_columnar::kernels::Aggregator;
use lakehouse_columnar::{DataType, Field, Schema};

/// Resolves table names to schemas during planning. The execution-side
/// companion ([`crate::engine::TableProvider`]) extends this with data
/// access.
pub trait SchemaProvider {
    /// Schema of a table, or `None` if unknown.
    fn table_schema(&self, table: &str) -> Option<Schema>;

    /// Like [`SchemaProvider::table_schema`], but distinguishes "no such
    /// table" (`Ok(None)`) from a failure to resolve it (`Err`, e.g. a
    /// store fault while loading table metadata). The planner reports the
    /// former as an unknown table and the latter as the underlying error,
    /// so transient faults are never misdiagnosed as missing tables.
    fn table_schema_checked(&self, table: &str) -> std::result::Result<Option<Schema>, String> {
        Ok(self.table_schema(table))
    }
}

/// One aggregate computation within an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub agg: Aggregator,
    /// Argument expression; `None` for `COUNT(*)`.
    pub arg: Option<Expr>,
}

/// A relational logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base table scan with optional projection pushdown and pushed filters.
    Scan {
        table: String,
        schema: Schema,
        /// Columns to read (None = all).
        projection: Option<Vec<String>>,
        /// Conjunctive filters pushed into the scan.
        filters: Vec<Expr>,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<LogicalPlan>,
        /// (expression, output name)
        exprs: Vec<(Expr, String)>,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group_exprs: Vec<(Expr, String)>,
        agg_exprs: Vec<(AggExpr, String)>,
    },
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        join_type: JoinType,
        /// Equality pairs (left side expr, right side expr).
        on: Vec<(Expr, Expr)>,
    },
    Sort {
        input: Box<LogicalPlan>,
        /// (expression, descending)
        keys: Vec<(Expr, bool)>,
    },
    Limit {
        input: Box<LogicalPlan>,
        limit: Option<usize>,
        offset: usize,
    },
    Distinct {
        input: Box<LogicalPlan>,
    },
    /// Renames the column namespace of a subquery (derived table alias).
    SubqueryAlias {
        input: Box<LogicalPlan>,
        alias: String,
    },
}

impl LogicalPlan {
    /// Operator name for plan display and per-operator execution metrics.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Limit { .. } => "Limit",
            LogicalPlan::Distinct { .. } => "Distinct",
            LogicalPlan::SubqueryAlias { .. } => "SubqueryAlias",
        }
    }

    /// The output schema of this plan node.
    pub fn schema(&self) -> Result<Schema> {
        match self {
            LogicalPlan::Scan {
                schema, projection, ..
            } => match projection {
                Some(cols) => {
                    let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                    Ok(schema.project(&names)?)
                }
                None => Ok(schema.clone()),
            },
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema()?;
                let fields = exprs
                    .iter()
                    .map(|(e, name)| infer_type(e, &in_schema).map(|dt| Field::new(name, dt, true)))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Schema::new(fields))
            }
            LogicalPlan::Aggregate {
                input,
                group_exprs,
                agg_exprs,
            } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::new();
                for (e, name) in group_exprs {
                    fields.push(Field::new(name, infer_type(e, &in_schema)?, true));
                }
                for (a, name) in agg_exprs {
                    let input_type = match &a.arg {
                        Some(e) => infer_type(e, &in_schema)?,
                        None => DataType::Int64,
                    };
                    fields.push(Field::new(name, a.agg.output_type(input_type), true));
                }
                Ok(Schema::new(fields))
            }
            LogicalPlan::Join { left, right, .. } => {
                let l = left.schema()?;
                let r = right.schema()?;
                let mut fields: Vec<Field> = l.fields().to_vec();
                for f in r.fields() {
                    fields.push(f.clone());
                }
                Ok(Schema::new(fields))
            }
            LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
            LogicalPlan::SubqueryAlias { input, alias } => {
                let inner = input.schema()?;
                // Strip any previous qualification, re-qualify ambiguities
                // only (plain names preferred for usability).
                let _ = alias;
                Ok(inner)
            }
        }
    }

    /// This node's inputs, in execution-path order (Join: left then right).
    /// The order matches the `path` attribute the executors record on spans
    /// (child `i` of a node at path `p` executes at path `p.i`).
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::SubqueryAlias { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// One-line label for this node as it appears in EXPLAIN output.
    pub fn node_label(&self) -> String {
        match self {
            LogicalPlan::Scan {
                table,
                projection,
                filters,
                ..
            } => {
                let mut label = format!("Scan: {table}");
                if let Some(p) = projection {
                    label.push_str(&format!(" projection=[{}]", p.join(", ")));
                }
                if !filters.is_empty() {
                    let fs: Vec<String> = filters.iter().map(|f| f.to_string()).collect();
                    label.push_str(&format!(" filters=[{}]", fs.join(" AND ")));
                }
                label
            }
            LogicalPlan::Filter { predicate, .. } => format!("Filter: {predicate}"),
            LogicalPlan::Project { exprs, .. } => {
                let items: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                format!("Project: {}", items.join(", "))
            }
            LogicalPlan::Aggregate {
                group_exprs,
                agg_exprs,
                ..
            } => {
                let gs: Vec<String> = group_exprs.iter().map(|(e, _)| e.to_string()).collect();
                let aggs: Vec<String> = agg_exprs.iter().map(|(_, n)| n.clone()).collect();
                format!(
                    "Aggregate: group=[{}] aggs=[{}]",
                    gs.join(", "),
                    aggs.join(", ")
                )
            }
            LogicalPlan::Join { join_type, on, .. } => {
                let pairs: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                format!("Join({join_type:?}): on [{}]", pairs.join(" AND "))
            }
            LogicalPlan::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(e, d)| format!("{e}{}", if *d { " DESC" } else { "" }))
                    .collect();
                format!("Sort: {}", ks.join(", "))
            }
            LogicalPlan::Limit { limit, offset, .. } => {
                format!("Limit: {limit:?} offset {offset}")
            }
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
            LogicalPlan::SubqueryAlias { alias, .. } => format!("SubqueryAlias: {alias}"),
        }
    }

    /// Indented textual rendering (EXPLAIN output).
    pub fn display_indent(&self) -> String {
        fn go(plan: &LogicalPlan, indent: usize, out: &mut String) {
            out.push_str(&"  ".repeat(indent));
            out.push_str(&plan.node_label());
            out.push('\n');
            for child in plan.children() {
                go(child, indent + 1, out);
            }
        }
        let mut out = String::new();
        go(self, 0, &mut out);
        out
    }
}

/// Resolve a (possibly qualified) column against a schema. Qualified names
/// try `qualifier.name` first, then the bare name; unqualified names try
/// exact match then a unique `*.name` suffix match.
pub fn resolve_column(schema: &Schema, qualifier: Option<&str>, name: &str) -> Result<usize> {
    if let Some(q) = qualifier {
        let qualified = format!("{q}.{name}");
        if let Ok(i) = schema.index_of(&qualified) {
            return Ok(i);
        }
    }
    if let Ok(i) = schema.index_of(name) {
        return Ok(i);
    }
    // Suffix match: a field named "alias.name".
    let suffix = format!(".{name}");
    let matches: Vec<usize> = schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name().ends_with(&suffix))
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [one] => Ok(*one),
        [] => Err(SqlError::Plan(format!("unknown column: {name}"))),
        _ => Err(SqlError::Plan(format!("ambiguous column: {name}"))),
    }
}

/// Infer the output type of an expression against an input schema.
pub fn infer_type(expr: &Expr, schema: &Schema) -> Result<DataType> {
    Ok(match expr {
        Expr::Column { qualifier, name } => {
            let i = resolve_column(schema, qualifier.as_deref(), name)?;
            schema.field(i).data_type()
        }
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Int64),
        Expr::Compare { .. }
        | Expr::Logical { .. }
        | Expr::Not(_)
        | Expr::IsNull { .. }
        | Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::Like { .. } => DataType::Bool,
        Expr::Arith { left, right, .. } => {
            let l = infer_type(left, schema)?;
            let r = infer_type(right, schema)?;
            if l == DataType::Float64 || r == DataType::Float64 {
                DataType::Float64
            } else {
                DataType::Int64
            }
        }
        Expr::Negate(e) => infer_type(e, schema)?,
        Expr::Function { name, args } => {
            if let Some(agg) = Aggregator::parse(name) {
                let input = args
                    .first()
                    .map(|a| infer_type(a, schema))
                    .transpose()?
                    .unwrap_or(DataType::Int64);
                agg.output_type(input)
            } else if is_scalar_function(name) {
                crate::functions::scalar_return_type(name, args, schema)?
            } else {
                return Err(SqlError::Plan(format!("unknown function: {name}")));
            }
        }
        Expr::CountStar => DataType::Int64,
        Expr::Cast { to, .. } => *to,
        Expr::Case {
            branches,
            else_expr,
        } => {
            let mut t = None;
            for (_, v) in branches {
                let vt = infer_type(v, schema)?;
                t = Some(t.map_or(vt, |prev| unify(prev, vt)));
            }
            if let Some(e) = else_expr {
                let vt = infer_type(e, schema)?;
                t = Some(t.map_or(vt, |prev| unify(prev, vt)));
            }
            t.unwrap_or(DataType::Int64)
        }
    })
}

fn unify(a: DataType, b: DataType) -> DataType {
    if a == b {
        a
    } else if (a == DataType::Int64 && b == DataType::Float64)
        || (a == DataType::Float64 && b == DataType::Int64)
    {
        DataType::Float64
    } else {
        a
    }
}

/// Is this expression (at the top level) an aggregate call?
pub fn as_aggregate(expr: &Expr) -> Option<AggExpr> {
    match expr {
        Expr::CountStar => Some(AggExpr {
            agg: Aggregator::CountStar,
            arg: None,
        }),
        Expr::Function { name, args } => Aggregator::parse(name).map(|agg| AggExpr {
            agg,
            arg: args.first().cloned(),
        }),
        _ => None,
    }
}

/// Does the expression contain any aggregate call?
pub fn contains_aggregate(expr: &Expr) -> bool {
    let mut found = false;
    expr.walk(&mut |e| {
        if as_aggregate(e).is_some() {
            found = true;
        }
    });
    found
}

/// Plan a parsed SELECT against a schema provider.
pub fn plan_select(stmt: &SelectStmt, provider: &dyn SchemaProvider) -> Result<LogicalPlan> {
    // 1. FROM + JOINs.
    let mut plan = match &stmt.from {
        Some(rel) => plan_relation(rel, provider)?,
        None => {
            // SELECT without FROM: a single-row dummy relation.
            LogicalPlan::Scan {
                table: "__dual".into(),
                schema: Schema::new(vec![Field::new("__dummy", DataType::Int64, true)]),
                projection: None,
                filters: vec![],
            }
        }
    };
    for join in &stmt.joins {
        let right = plan_relation(&join.relation, provider)?;
        plan = disambiguate_join(plan, right, join.join_type, join.on.clone())?;
    }

    // 2. WHERE.
    if let Some(pred) = &stmt.where_clause {
        if contains_aggregate(pred) {
            return Err(SqlError::Plan(
                "aggregate functions are not allowed in WHERE".into(),
            ));
        }
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: pred.clone(),
        };
    }

    // 3. Expand wildcard projection.
    let input_schema = plan.schema()?;
    let mut proj_items: Vec<(Expr, String)> = Vec::new();
    for item in &stmt.projection {
        match item {
            SelectItem::Wildcard => {
                for f in input_schema.fields() {
                    proj_items.push((Expr::col(f.name()), f.name().to_string()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr.default_name());
                proj_items.push((expr.clone(), name));
            }
        }
    }

    // 4. Aggregation.
    let needs_agg = !stmt.group_by.is_empty()
        || proj_items.iter().any(|(e, _)| contains_aggregate(e))
        || stmt.having.as_ref().is_some_and(contains_aggregate);
    let mut having = stmt.having.clone();
    let mut order_keys: Vec<(Expr, bool)> = stmt
        .order_by
        .iter()
        .map(|o| (o.expr.clone(), o.descending))
        .collect();

    if needs_agg {
        // Group expressions keyed by display text.
        let group_exprs: Vec<(Expr, String)> = stmt
            .group_by
            .iter()
            .map(|e| (e.clone(), e.default_name()))
            .collect();
        // Collect unique aggregate expressions from projection/having/order.
        let mut agg_exprs: Vec<(AggExpr, String)> = Vec::new();
        let collect = |e: &Expr, agg_exprs: &mut Vec<(AggExpr, String)>| {
            e.walk(&mut |node| {
                if let Some(agg) = as_aggregate(node) {
                    if !agg_exprs.iter().any(|(a, _)| *a == agg) {
                        let name = format!("__agg_{}", agg_exprs.len());
                        agg_exprs.push((agg, name));
                    }
                }
            });
        };
        for (e, _) in &proj_items {
            collect(e, &mut agg_exprs);
        }
        if let Some(h) = &having {
            collect(h, &mut agg_exprs);
        }
        for (e, _) in &order_keys {
            collect(e, &mut agg_exprs);
        }
        // Validate: projection expressions must be built from group exprs and
        // aggregates only.
        for (e, name) in &proj_items {
            validate_agg_projection(e, &group_exprs, name)?;
        }
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_exprs: group_exprs.clone(),
            agg_exprs: agg_exprs.clone(),
        };
        // Rewrite downstream expressions to reference aggregate output.
        let rewrite = |e: &Expr| rewrite_post_agg(e, &group_exprs, &agg_exprs);
        proj_items = proj_items
            .iter()
            .map(|(e, n)| (rewrite(e), n.clone()))
            .collect();
        having = having.as_ref().map(&rewrite);
        order_keys = order_keys.iter().map(|(e, d)| (rewrite(e), *d)).collect();
    }

    // 5. HAVING.
    if let Some(h) = having {
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: h,
        };
    }

    // 6-8. Projection, DISTINCT, ORDER BY.
    //
    // ORDER BY may reference projection aliases ("ORDER BY n DESC") *or*
    // columns that are not projected at all ("ORDER BY id" with id dropped).
    // Strategy: rewrite alias references to the underlying projected
    // expression; if every key then resolves against the pre-projection
    // schema, sort *below* the projection (covers non-projected columns);
    // otherwise sort above it in output terms.
    let pre_proj_schema = plan.schema()?;
    let keys_below: Option<Vec<(Expr, bool)>> = if order_keys.is_empty() {
        None
    } else {
        order_keys
            .iter()
            .map(|(e, d)| {
                // Alias reference → the projected expression.
                let expr = match e {
                    Expr::Column {
                        qualifier: None,
                        name,
                    } => proj_items
                        .iter()
                        .find(|(_, n)| n == name)
                        .map(|(pe, _)| pe.clone())
                        .unwrap_or_else(|| e.clone()),
                    _ => e.clone(),
                };
                infer_type(&expr, &pre_proj_schema).ok().map(|_| (expr, *d))
            })
            .collect()
    };
    if let Some(keys) = &keys_below {
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys: keys.clone(),
        };
    }

    let proj_plan = LogicalPlan::Project {
        input: Box::new(plan),
        exprs: proj_items.clone(),
    };
    let out_schema = proj_plan.schema()?;
    plan = proj_plan;

    if stmt.distinct {
        plan = LogicalPlan::Distinct {
            input: Box::new(plan),
        };
    }

    if !order_keys.is_empty() && keys_below.is_none() {
        let keys = order_keys
            .into_iter()
            .map(|(e, d)| {
                // Alias for a projected expression?
                if let Some((_, name)) = proj_items.iter().find(|(pe, _)| *pe == e) {
                    return Ok((Expr::col(name.clone()), d));
                }
                // Resolvable against output schema?
                if let Expr::Column { qualifier, name } = &e {
                    if resolve_column(&out_schema, qualifier.as_deref(), name).is_ok() {
                        return Ok((e, d));
                    }
                }
                // Computed key over projected columns.
                infer_type(&e, &out_schema).map(|_| (e, d))
            })
            .collect::<Result<Vec<_>>>()?;
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        };
    }

    // 9. LIMIT / OFFSET.
    if stmt.limit.is_some() || stmt.offset.is_some() {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            limit: stmt.limit,
            offset: stmt.offset.unwrap_or(0),
        };
    }
    Ok(plan)
}

fn plan_relation(rel: &Relation, provider: &dyn SchemaProvider) -> Result<LogicalPlan> {
    match rel {
        Relation::Table { name, alias } => {
            let schema = provider
                .table_schema_checked(name)
                .map_err(SqlError::Execution)?
                .ok_or_else(|| SqlError::Plan(format!("unknown table: {name}")))?;
            let scan = LogicalPlan::Scan {
                table: name.clone(),
                schema,
                projection: None,
                filters: vec![],
            };
            Ok(match alias {
                Some(a) => LogicalPlan::SubqueryAlias {
                    input: Box::new(scan),
                    alias: a.clone(),
                },
                None => scan,
            })
        }
        Relation::Subquery { query, alias } => Ok(LogicalPlan::SubqueryAlias {
            input: Box::new(plan_select(query, provider)?),
            alias: alias.clone(),
        }),
    }
}

/// Build a join, renaming right-side columns that collide with left-side
/// names to `alias.name` form so resolution stays unambiguous.
fn disambiguate_join(
    left: LogicalPlan,
    right: LogicalPlan,
    join_type: JoinType,
    on: Vec<(Expr, Expr)>,
) -> Result<LogicalPlan> {
    let lschema = left.schema()?;
    let rschema = right.schema()?;
    let alias = match &right {
        LogicalPlan::SubqueryAlias { alias, .. } => alias.clone(),
        LogicalPlan::Scan { table, .. } => table.clone(),
        _ => "right".to_string(),
    };
    let mut rename_needed = false;
    for f in rschema.fields() {
        if lschema.contains(f.name()) {
            rename_needed = true;
        }
    }
    let right = if rename_needed {
        let exprs = rschema
            .fields()
            .iter()
            .map(|f| {
                let out_name = if lschema.contains(f.name()) {
                    format!("{alias}.{}", f.name())
                } else {
                    f.name().to_string()
                };
                (Expr::col(f.name()), out_name)
            })
            .collect();
        LogicalPlan::Project {
            input: Box::new(right),
            exprs,
        }
    } else {
        right
    };
    Ok(LogicalPlan::Join {
        left: Box::new(left),
        right: Box::new(right),
        join_type,
        on,
    })
}

/// After aggregation, every non-aggregate leaf must be a group expression.
fn validate_agg_projection(
    expr: &Expr,
    group_exprs: &[(Expr, String)],
    item_name: &str,
) -> Result<()> {
    if group_exprs.iter().any(|(g, _)| g == expr) || as_aggregate(expr).is_some() {
        return Ok(());
    }
    match expr {
        Expr::Column { .. } => Err(SqlError::Plan(format!(
            "column {expr} in select item '{item_name}' must appear in GROUP BY \
             or be inside an aggregate"
        ))),
        Expr::Literal(_) | Expr::CountStar => Ok(()),
        Expr::Compare { left, right, .. }
        | Expr::Arith { left, right, .. }
        | Expr::Logical { left, right, .. } => {
            validate_agg_projection(left, group_exprs, item_name)?;
            validate_agg_projection(right, group_exprs, item_name)
        }
        Expr::Not(e) | Expr::Negate(e) => validate_agg_projection(e, group_exprs, item_name),
        Expr::Cast { expr, .. } => validate_agg_projection(expr, group_exprs, item_name),
        Expr::Function { args, .. } => {
            for a in args {
                validate_agg_projection(a, group_exprs, item_name)?;
            }
            Ok(())
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                validate_agg_projection(c, group_exprs, item_name)?;
                validate_agg_projection(v, group_exprs, item_name)?;
            }
            if let Some(e) = else_expr {
                validate_agg_projection(e, group_exprs, item_name)?;
            }
            Ok(())
        }
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
            validate_agg_projection(expr, group_exprs, item_name)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            validate_agg_projection(expr, group_exprs, item_name)?;
            validate_agg_projection(low, group_exprs, item_name)?;
            validate_agg_projection(high, group_exprs, item_name)
        }
        Expr::InList { expr, list, .. } => {
            validate_agg_projection(expr, group_exprs, item_name)?;
            for e in list {
                validate_agg_projection(e, group_exprs, item_name)?;
            }
            Ok(())
        }
    }
}

/// Replace group-expression and aggregate subtrees with references to the
/// aggregate node's output columns.
fn rewrite_post_agg(
    expr: &Expr,
    group_exprs: &[(Expr, String)],
    agg_exprs: &[(AggExpr, String)],
) -> Expr {
    if let Some((_, name)) = group_exprs.iter().find(|(g, _)| g == expr) {
        return Expr::col(name.clone());
    }
    if let Some(agg) = as_aggregate(expr) {
        if let Some((_, name)) = agg_exprs.iter().find(|(a, _)| *a == agg) {
            return Expr::col(name.clone());
        }
    }
    let rw = |e: &Expr| rewrite_post_agg(e, group_exprs, agg_exprs);
    match expr {
        Expr::Compare { op, left, right } => Expr::Compare {
            op: *op,
            left: Box::new(rw(left)),
            right: Box::new(rw(right)),
        },
        Expr::Arith { op, left, right } => Expr::Arith {
            op: *op,
            left: Box::new(rw(left)),
            right: Box::new(rw(right)),
        },
        Expr::Logical { op, left, right } => Expr::Logical {
            op: *op,
            left: Box::new(rw(left)),
            right: Box::new(rw(right)),
        },
        Expr::Not(e) => Expr::Not(Box::new(rw(e))),
        Expr::Negate(e) => Expr::Negate(Box::new(rw(e))),
        Expr::Cast { expr, to } => Expr::Cast {
            expr: Box::new(rw(expr)),
            to: *to,
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(rw).collect(),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rw(expr)),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rw(expr)),
            low: Box::new(rw(low)),
            high: Box::new(rw(high)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rw(expr)),
            list: list.iter().map(rw).collect(),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rw(expr)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::Case {
            branches,
            else_expr,
        } => Expr::Case {
            branches: branches.iter().map(|(c, v)| (rw(c), rw(v))).collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(rw(e))),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use std::collections::HashMap;

    struct Fixture(HashMap<String, Schema>);

    impl SchemaProvider for Fixture {
        fn table_schema(&self, table: &str) -> Option<Schema> {
            self.0.get(table).cloned()
        }
    }

    fn fixture() -> Fixture {
        let mut m = HashMap::new();
        m.insert(
            "trips".to_string(),
            Schema::new(vec![
                Field::new("pickup_location_id", DataType::Int64, false),
                Field::new("dropoff_location_id", DataType::Int64, false),
                Field::new("fare", DataType::Float64, true),
                Field::new("zone", DataType::Utf8, true),
            ]),
        );
        m.insert(
            "zones".to_string(),
            Schema::new(vec![
                Field::new("id", DataType::Int64, false),
                Field::new("zone", DataType::Utf8, false),
            ]),
        );
        Fixture(m)
    }

    fn plan(sql: &str) -> Result<LogicalPlan> {
        plan_select(&parse_select(sql).unwrap(), &fixture())
    }

    #[test]
    fn simple_projection_schema() {
        let p = plan("SELECT fare, zone FROM trips").unwrap();
        let s = p.schema().unwrap();
        assert_eq!(s.names(), vec!["fare", "zone"]);
        assert_eq!(s.field(0).data_type(), DataType::Float64);
    }

    #[test]
    fn wildcard_expands() {
        let p = plan("SELECT * FROM trips").unwrap();
        assert_eq!(p.schema().unwrap().len(), 4);
    }

    #[test]
    fn unknown_table_errors() {
        assert!(matches!(
            plan("SELECT * FROM ghost"),
            Err(SqlError::Plan(_))
        ));
    }

    #[test]
    fn unknown_column_errors() {
        assert!(plan("SELECT nope FROM trips").is_err());
    }

    #[test]
    fn aggregate_schema() {
        let p = plan("SELECT zone, COUNT(*) AS n, AVG(fare) AS avg_fare FROM trips GROUP BY zone")
            .unwrap();
        let s = p.schema().unwrap();
        assert_eq!(s.names(), vec!["zone", "n", "avg_fare"]);
        assert_eq!(s.field(1).data_type(), DataType::Int64);
        assert_eq!(s.field(2).data_type(), DataType::Float64);
    }

    #[test]
    fn non_grouped_column_rejected() {
        assert!(plan("SELECT zone, fare FROM trips GROUP BY zone").is_err());
    }

    #[test]
    fn aggregate_in_where_rejected() {
        assert!(plan("SELECT zone FROM trips WHERE COUNT(*) > 1 GROUP BY zone").is_err());
    }

    #[test]
    fn order_by_alias_resolves() {
        // "ORDER BY counts DESC" where counts aliases COUNT(*): the key is
        // rewritten to the aggregate output column and the sort placed below
        // the projection.
        let p =
            plan("SELECT zone, COUNT(*) AS counts FROM trips GROUP BY zone ORDER BY counts DESC")
                .unwrap();
        let LogicalPlan::Project { input, .. } = p else {
            panic!("expected project on top");
        };
        match *input {
            LogicalPlan::Sort { keys, .. } => {
                assert_eq!(keys[0].0, Expr::col("__agg_0"));
                assert!(keys[0].1);
            }
            other => panic!("expected sort below project, got {other:?}"),
        }
    }

    #[test]
    fn order_by_non_projected_column() {
        // Sorting by a column the projection drops must still plan.
        let p = plan("SELECT zone FROM trips ORDER BY fare DESC").unwrap();
        assert_eq!(p.schema().unwrap().names(), vec!["zone"]);
    }

    #[test]
    fn join_disambiguates_duplicate_columns() {
        let p = plan(
            "SELECT trips.zone, zones.zone FROM trips JOIN zones ON trips.pickup_location_id = zones.id",
        )
        .unwrap();
        let s = p.schema().unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn explain_renders() {
        let p = plan("SELECT zone FROM trips WHERE fare > 1 ORDER BY zone LIMIT 5").unwrap();
        let text = p.display_indent();
        assert!(text.contains("Limit"));
        assert!(text.contains("Sort"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Scan: trips"));
    }

    #[test]
    fn select_without_from() {
        let p = plan("SELECT 1 + 2 AS three").unwrap();
        assert_eq!(p.schema().unwrap().names(), vec!["three"]);
    }

    #[test]
    fn having_rewritten_to_agg_reference() {
        let p = plan("SELECT zone FROM trips GROUP BY zone HAVING COUNT(*) > 2").unwrap();
        // Plan shape: Project <- Filter(__agg_0 > 2) <- Aggregate.
        let LogicalPlan::Project { input, .. } = p else {
            panic!()
        };
        let LogicalPlan::Filter { predicate, .. } = *input else {
            panic!()
        };
        assert!(predicate.to_string().contains("__agg_0"));
    }
}
