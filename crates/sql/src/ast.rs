//! Abstract syntax tree for the supported SQL dialect.

use lakehouse_columnar::kernels::CmpOp;
use lakehouse_columnar::{DataType, Value};
use std::fmt;

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified: `t.col` or `col`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// `left OP right` comparison.
    Compare {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Arithmetic: `+ - * / %`.
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `AND` / `OR`.
    Logical {
        op: LogicalOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `-expr`.
    Negate(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr LIKE 'pat%'` (supports `%` and `_`).
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    /// Function call: scalar or aggregate (resolved during planning).
    Function { name: String, args: Vec<Expr> },
    /// `COUNT(*)`.
    CountStar,
    /// `CAST(expr AS type)`.
    Cast { expr: Box<Expr>, to: DataType },
    /// `CASE WHEN cond THEN val [WHEN ...] [ELSE val] END`.
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Boolean connectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicalOp {
    And,
    Or,
}

impl Expr {
    /// Shorthand for an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Walk the expression tree, calling `f` on every node (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Compare { left, right, .. }
            | Expr::Arith { left, right, .. }
            | Expr::Logical { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Not(e) | Expr::Negate(e) => e.walk(f),
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Like { expr, .. } => expr.walk(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Cast { expr, .. } => expr.walk(f),
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.walk(f);
                    v.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            Expr::Column { .. } | Expr::Literal(_) | Expr::CountStar => {}
        }
    }

    /// Names of all referenced columns (unqualified form).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column { name, .. } = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// A display name for an unaliased projection of this expression.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.clone(),
            Expr::CountStar => "count_star".into(),
            Expr::Function { name, args } => {
                let inner: Vec<String> = args.iter().map(Expr::default_name).collect();
                format!("{}({})", name.to_lowercase(), inner.join(", "))
            }
            Expr::Literal(v) => v.to_string(),
            Expr::Cast { expr, .. } => expr.default_name(),
            other => format!("{other:?}")
                .chars()
                .take(32)
                .collect::<String>()
                .to_lowercase(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column {
                qualifier: Some(q),
                name,
            } => write!(f, "{q}.{name}"),
            Expr::Column { name, .. } => write!(f, "{name}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Compare { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Arith { op, left, right } => {
                let s = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                    ArithOp::Mod => "%",
                };
                write!(f, "({left} {s} {right})")
            }
            Expr::Logical { op, left, right } => {
                let s = match op {
                    LogicalOp::And => "AND",
                    LogicalOp::Or => "OR",
                };
                write!(f, "({left} {s} {right})")
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::Negate(e) => write!(f, "-{e}"),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "{expr} {}IN ({})",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}LIKE '{pattern}'",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Function { name, args } => {
                let items: Vec<String> = args.iter().map(|e| e.to_string()).collect();
                write!(f, "{name}({})", items.join(", "))
            }
            Expr::CountStar => write!(f, "COUNT(*)"),
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            Expr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
        }
    }
}

/// One projected item in SELECT.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// `FROM` relation: a named table or a parenthesized subquery, with an
/// optional alias.
#[derive(Debug, Clone, PartialEq)]
pub enum Relation {
    Table {
        name: String,
        alias: Option<String>,
    },
    Subquery {
        query: Box<SelectStmt>,
        alias: String,
    },
}

impl Relation {
    /// The alias by which columns of this relation may be qualified.
    pub fn alias(&self) -> &str {
        match self {
            Relation::Table { name, alias } => alias.as_deref().unwrap_or(name),
            Relation::Subquery { alias, .. } => alias,
        }
    }
}

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    Left,
}

/// One join clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub join_type: JoinType,
    pub relation: Relation,
    /// Equality pairs from the ON clause: (left expr, right expr).
    pub on: Vec<(Expr, Expr)>,
}

/// Sort specification.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByExpr {
    pub expr: Expr,
    pub descending: bool,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Option<Relation>,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByExpr>,
    pub limit: Option<usize>,
    pub offset: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::Logical {
            op: LogicalOp::And,
            left: Box::new(Expr::Compare {
                op: CmpOp::Gt,
                left: Box::new(Expr::col("a")),
                right: Box::new(Expr::lit(1i64)),
            }),
            right: Box::new(Expr::Compare {
                op: CmpOp::Lt,
                left: Box::new(Expr::col("a")),
                right: Box::new(Expr::col("b")),
            }),
        };
        assert_eq!(e.referenced_columns(), vec!["a", "b"]);
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::Compare {
            op: CmpOp::GtEq,
            left: Box::new(Expr::col("x")),
            right: Box::new(Expr::lit(10i64)),
        };
        assert_eq!(e.to_string(), "(x >= 10)");
    }

    #[test]
    fn relation_alias() {
        let t = Relation::Table {
            name: "trips".into(),
            alias: None,
        };
        assert_eq!(t.alias(), "trips");
        let t2 = Relation::Table {
            name: "trips".into(),
            alias: Some("t".into()),
        };
        assert_eq!(t2.alias(), "t");
    }

    #[test]
    fn default_names() {
        assert_eq!(Expr::col("fare").default_name(), "fare");
        assert_eq!(Expr::CountStar.default_name(), "count_star");
        assert_eq!(
            Expr::Function {
                name: "SUM".into(),
                args: vec![Expr::col("x")]
            }
            .default_name(),
            "sum(x)"
        );
    }
}
