//! Error type for the SQL engine.

use lakehouse_columnar::ColumnarError;
use std::fmt;

/// Errors from parsing, planning, or executing SQL.
#[derive(Debug)]
pub enum SqlError {
    /// Lexical error with position.
    Tokenize { message: String, position: usize },
    /// Syntax error.
    Parse(String),
    /// Semantic error during planning (unknown table/column, bad types...).
    Plan(String),
    /// Runtime error during execution.
    Execution(String),
    /// Underlying columnar kernel error.
    Columnar(ColumnarError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Tokenize { message, position } => {
                write!(f, "tokenize error at byte {position}: {message}")
            }
            Self::Parse(m) => write!(f, "parse error: {m}"),
            Self::Plan(m) => write!(f, "planning error: {m}"),
            Self::Execution(m) => write!(f, "execution error: {m}"),
            Self::Columnar(e) => write!(f, "columnar error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Columnar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ColumnarError> for SqlError {
    fn from(e: ColumnarError) -> Self {
        SqlError::Columnar(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SqlError>;
