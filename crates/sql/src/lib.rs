//! # lakehouse-sql
//!
//! The DuckDB stand-in (paper §4.5): an embeddable, vectorized analytical
//! SQL engine operating directly on `lakehouse-columnar` batches.
//!
//! Pipeline: SQL text → [`tokenizer`] → [`parser`] (AST) → [`logical`] plan →
//! [`optimizer`] (constant folding, predicate pushdown, projection pruning)
//! → [`physical`] execution (vectorized operators: scan, filter, project,
//! hash aggregate, hash join, sort, limit).
//!
//! Supported SQL (the dialect the paper's dbt-style pipelines need):
//!
//! * `SELECT [DISTINCT] expr [AS alias], ...`
//! * `FROM table [alias]` with `JOIN` / `LEFT JOIN ... ON a.x = b.y [AND ...]`
//! * `WHERE` with comparisons, `AND/OR/NOT`, `BETWEEN`, `IN (...)`,
//!   `IS [NOT] NULL`, `LIKE`, arithmetic, `CAST(x AS T)`, `CASE WHEN`
//! * `GROUP BY` + aggregates (`COUNT(*)`, `COUNT`, `SUM`, `MIN`, `MAX`,
//!   `AVG`) and `HAVING`
//! * `ORDER BY expr [ASC|DESC], ...`, `LIMIT n [OFFSET m]`
//! * scalar functions: `UPPER`, `LOWER`, `LENGTH`, `ABS`, `ROUND`,
//!   `COALESCE`, `SUBSTR`
//!
//! The engine resolves table names through the [`TableProvider`] trait, which
//! is what lets the platform layer connect it to Iceberg-style scans with
//! pushed-down predicates.

pub mod analyze;
pub mod ast;
pub mod engine;
pub mod error;
pub mod functions;
pub mod logical;
pub mod optimizer;
pub mod parallel;
pub mod parser;
pub mod physical;
pub mod streaming;
pub mod tokenizer;

pub use analyze::render_analyzed;
pub use ast::{Expr, SelectStmt};
pub use engine::{MemoryProvider, SqlEngine, TableProvider};
pub use error::{Result, SqlError};
pub use logical::LogicalPlan;
pub use parallel::{parallel_aggregate, parallel_filter};
pub use parser::{parse_select, referenced_tables};
pub use streaming::{execute_streaming, ExecReport};
