//! `EXPLAIN ANALYZE` rendering: the optimized logical plan annotated with
//! per-operator execution stats pulled from a recorded span tree.
//!
//! Both executors tag each operator span with a `path` attribute — `"0"` for
//! the root, `"p.i"` for child `i` of the node at `p`, with `SubqueryAlias`
//! transparent (its input keeps its path) — so stats can be matched back to
//! plan nodes positionally, independent of operator names.

use crate::logical::LogicalPlan;
use lakehouse_obs::{fmt_duration, SpanData, SpanTree};
use std::collections::HashMap;

/// Render `plan` with each operator line annotated from the matching span:
/// rows and batches emitted, output bytes, wall/simulated span time, and the
/// operator's *self* time on both clocks (span time minus the time of its
/// direct child operators — the cost attributable to this operator alone,
/// since parent spans enclose the time spent pulling from children).
pub fn render_analyzed(plan: &LogicalPlan, tree: &SpanTree) -> String {
    let by_path: HashMap<&str, &SpanData> = tree
        .spans
        .iter()
        .filter_map(|s| s.attr_str("path").map(|p| (p, s)))
        .collect();
    let mut out = String::new();
    go(plan, "0", 0, &by_path, &mut out);
    out
}

fn go(
    plan: &LogicalPlan,
    path: &str,
    indent: usize,
    by_path: &HashMap<&str, &SpanData>,
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    if let LogicalPlan::SubqueryAlias { input, .. } = plan {
        // No operator runs for the alias: print the line unannotated and
        // keep the path for its input (matching both executors).
        out.push_str(&format!("{pad}{}\n", plan.node_label()));
        go(input, path, indent + 1, by_path, out);
        return;
    }
    out.push_str(&format!("{pad}{}", plan.node_label()));
    let children = plan.children();
    if let Some(span) = by_path.get(path) {
        // Children run inside this span (pull-based on both executors), so
        // self time is the span minus its direct children's spans. A
        // SubqueryAlias child is transparent: its input already carries the
        // child path, so the subtraction resolves to the real operator.
        let (mut child_wall, mut child_sim) = (0u64, 0u64);
        for i in 0..children.len() {
            if let Some(child) = by_path.get(format!("{path}.{i}").as_str()) {
                child_wall += child.wall_nanos();
                child_sim += child.sim_nanos();
            }
        }
        out.push_str(&format!(
            "  [rows={} batches={} bytes={} wall={} sim={} self_wall={} self_sim={}]",
            span.attr_u64("rows").unwrap_or(0),
            span.attr_u64("batches").unwrap_or(0),
            span.attr_u64("bytes").unwrap_or(0),
            fmt_duration(span.wall_nanos()),
            fmt_duration(span.sim_nanos()),
            fmt_duration(span.wall_nanos().saturating_sub(child_wall)),
            fmt_duration(span.sim_nanos().saturating_sub(child_sim)),
        ));
    }
    out.push('\n');
    for (i, input) in children.into_iter().enumerate() {
        go(input, &format!("{path}.{i}"), indent + 1, by_path, out);
    }
}
