//! `EXPLAIN ANALYZE` rendering: the optimized logical plan annotated with
//! per-operator execution stats pulled from a recorded span tree.
//!
//! Both executors tag each operator span with a `path` attribute — `"0"` for
//! the root, `"p.i"` for child `i` of the node at `p`, with `SubqueryAlias`
//! transparent (its input keeps its path) — so stats can be matched back to
//! plan nodes positionally, independent of operator names.

use crate::logical::LogicalPlan;
use lakehouse_obs::{fmt_duration, SpanData, SpanTree};
use std::collections::HashMap;

/// Render `plan` with each operator line annotated from the matching span:
/// rows and batches emitted, output bytes, and wall/simulated span time.
pub fn render_analyzed(plan: &LogicalPlan, tree: &SpanTree) -> String {
    let by_path: HashMap<&str, &SpanData> = tree
        .spans
        .iter()
        .filter_map(|s| s.attr_str("path").map(|p| (p, s)))
        .collect();
    let mut out = String::new();
    go(plan, "0", 0, &by_path, &mut out);
    out
}

fn go(
    plan: &LogicalPlan,
    path: &str,
    indent: usize,
    by_path: &HashMap<&str, &SpanData>,
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    if let LogicalPlan::SubqueryAlias { input, .. } = plan {
        // No operator runs for the alias: print the line unannotated and
        // keep the path for its input (matching both executors).
        out.push_str(&format!("{pad}{}\n", plan.node_label()));
        go(input, path, indent + 1, by_path, out);
        return;
    }
    out.push_str(&format!("{pad}{}", plan.node_label()));
    if let Some(span) = by_path.get(path) {
        out.push_str(&format!(
            "  [rows={} batches={} bytes={} wall={} sim={}]",
            span.attr_u64("rows").unwrap_or(0),
            span.attr_u64("batches").unwrap_or(0),
            span.attr_u64("bytes").unwrap_or(0),
            fmt_duration(span.wall_nanos()),
            fmt_duration(span.sim_nanos()),
        ));
    }
    out.push('\n');
    for (i, input) in plan.children().into_iter().enumerate() {
        go(input, &format!("{path}.{i}"), indent + 1, by_path, out);
    }
}
