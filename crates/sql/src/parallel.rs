//! Parallel execution primitives — the paper's §5 future-work item
//! ("parallelizing SQL execution"), implemented as morsel-style partial
//! operators over batch chunks on a bounded scoped worker pool
//! ([`lakehouse_columnar::pool`]), so `threads` caps live workers even when
//! the morsel count is much larger.
//!
//! The design follows the classic two-phase pattern:
//!
//! * **filter**: chunks are filtered independently and concatenated (order
//!   preserved by chunk index);
//! * **aggregate**: each worker builds partial `AggState`s over its chunk,
//!   then partials merge single-threaded (merge is cheap: one state per
//!   group per worker).

use crate::ast::Expr;
use crate::error::{Result, SqlError};
use crate::logical::AggExpr;
use crate::physical::eval;
use lakehouse_columnar::kernels::hash::RowKey;
use lakehouse_columnar::kernels::{filter_batch, to_selection, update_grouped, AggState, Grouper};
use lakehouse_columnar::{Column, ColumnBuilder, DataType, RecordBatch, Schema};
use std::collections::HashMap;

/// How many rows each worker processes at a time.
pub const DEFAULT_MORSEL_ROWS: usize = 16 * 1024;

/// Parallel filter: evaluate `predicate` over chunks of `batch` on
/// `threads` workers and concatenate the surviving rows in input order.
pub fn parallel_filter(
    batch: &RecordBatch,
    predicate: &Expr,
    threads: usize,
) -> Result<RecordBatch> {
    let threads = threads.max(1);
    if batch.num_rows() == 0 || threads == 1 {
        let mask = eval(predicate, batch)?;
        return Ok(filter_batch(batch, &to_selection(&mask)?)?);
    }
    let chunks = batch.chunks(morsel_size(batch.num_rows(), threads))?;
    // Hand the query context across the morsel pool (thread-locals do not
    // propagate) so worker-side charges attribute to the running query.
    let ctx = lakehouse_obs::QueryCtx::current();
    let results: Vec<Result<RecordBatch>> =
        lakehouse_columnar::pool::map_indexed(threads, &chunks, |_, chunk| {
            let _attributed = ctx.as_ref().map(lakehouse_obs::QueryCtx::enter);
            let mask = eval(predicate, chunk)?;
            Ok(filter_batch(chunk, &to_selection(&mask)?)?)
        });
    // Keep only chunks with surviving rows; a lone survivor is returned
    // as-is (no concat copy), and a concat of several pre-sizes its output
    // from the known row counts.
    let mut batches: Vec<RecordBatch> = Vec::with_capacity(chunks.len());
    for result in results {
        let chunk = result?;
        if chunk.num_rows() > 0 {
            batches.push(chunk);
        }
    }
    Ok(match batches.len() {
        0 => RecordBatch::new_empty(batch.schema().clone()),
        1 => batches.pop().expect("one surviving chunk"),
        _ => RecordBatch::concat(&batches)?,
    })
}

/// One worker's partial aggregation output.
struct PartialAgg {
    /// group key → per-aggregate states.
    groups: HashMap<RowKey, Vec<AggState>>,
    /// Insertion order of keys (keeps output deterministic).
    order: Vec<RowKey>,
}

/// Parallel hash aggregation: two-phase (partial per worker, merge).
///
/// `group_exprs`/`agg_exprs` are the aggregate node's expressions;
/// `out_schema` its output schema (group columns then aggregates).
pub fn parallel_aggregate(
    batch: &RecordBatch,
    group_exprs: &[(Expr, String)],
    agg_exprs: &[(AggExpr, String)],
    out_schema: &Schema,
    threads: usize,
) -> Result<RecordBatch> {
    let threads = threads.max(1);
    let chunks = if batch.num_rows() == 0 {
        vec![batch.clone()]
    } else {
        batch.chunks(morsel_size(batch.num_rows(), threads))?
    };

    // Phase 1: partial aggregation per chunk (bounded parallel).
    let ctx = lakehouse_obs::QueryCtx::current();
    let partials = lakehouse_columnar::pool::map_indexed(threads, &chunks, |_, chunk| {
        let _attributed = ctx.as_ref().map(lakehouse_obs::QueryCtx::enter);
        partial_aggregate(chunk, group_exprs, agg_exprs)
    });

    // Phase 2: merge partials (single-threaded; state count is small).
    let mut merged: HashMap<RowKey, Vec<AggState>> = HashMap::new();
    let mut order: Vec<RowKey> = Vec::new();
    for partial in partials {
        let partial = partial?;
        for key in partial.order {
            let states = partial.groups.get(&key).expect("key present");
            match merged.get_mut(&key) {
                Some(existing) => {
                    for (a, b) in existing.iter_mut().zip(states) {
                        a.merge(b)?;
                    }
                }
                None => {
                    merged.insert(key.clone(), states.clone());
                    order.push(key);
                }
            }
        }
    }
    // Global aggregation over zero rows still yields one (empty-set) group.
    if group_exprs.is_empty() && order.is_empty() {
        let key = RowKey::from_values(&[]);
        merged.insert(
            key.clone(),
            agg_exprs
                .iter()
                .map(|(a, _)| AggState::new(a.agg))
                .collect(),
        );
        order.push(key);
    }

    // Materialize output.
    let arg_types: Vec<DataType> = agg_exprs
        .iter()
        .map(|(a, _)| {
            a.arg
                .as_ref()
                .map(|e| crate::logical::infer_type(e, batch.schema()))
                .transpose()
                .map(|t| t.unwrap_or(DataType::Int64))
        })
        .collect::<Result<_>>()?;
    let mut builders: Vec<ColumnBuilder> = out_schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::with_capacity(f.data_type(), order.len()))
        .collect();
    for key in &order {
        let states = merged.get(key).expect("merged key");
        for (i, v) in key.to_values().iter().enumerate() {
            builders[i].push_value(v)?;
        }
        for (j, state) in states.iter().enumerate() {
            let v = state.finish(arg_types[j])?;
            builders[group_exprs.len() + j].push_value(&v)?;
        }
    }
    let columns: Vec<Column> = builders.into_iter().map(ColumnBuilder::finish).collect();
    Ok(RecordBatch::try_new(out_schema.clone(), columns)?)
}

fn partial_aggregate(
    chunk: &RecordBatch,
    group_exprs: &[(Expr, String)],
    agg_exprs: &[(AggExpr, String)],
) -> Result<PartialAgg> {
    let group_cols = group_exprs
        .iter()
        .map(|(e, _)| eval(e, chunk))
        .collect::<Result<Vec<_>>>()?;
    let arg_cols = agg_exprs
        .iter()
        .map(|(a, _)| a.arg.as_ref().map(|e| eval(e, chunk)).transpose())
        .collect::<Result<Vec<_>>>()?;
    // Resolve group ids once for the chunk (dictionary keys group in code
    // space), then one typed accumulation pass per aggregate.
    let n = chunk.num_rows();
    let mut grouper = Grouper::new();
    let mut ids = Vec::new();
    let num_groups = if group_exprs.is_empty() {
        // Global aggregation: one group, even over zero rows.
        ids.resize(n, 0u32);
        1
    } else {
        grouper.group_ids(&group_cols, &mut ids)?;
        grouper.num_groups()
    };
    let mut states_per_agg: Vec<Vec<AggState>> = agg_exprs
        .iter()
        .map(|(a, _)| vec![AggState::new(a.agg); num_groups])
        .collect();
    for (slots, arg_col) in states_per_agg.iter_mut().zip(&arg_cols) {
        update_grouped(slots, &ids, arg_col.as_ref())?;
    }

    let mut groups: HashMap<RowKey, Vec<AggState>> = HashMap::with_capacity(num_groups);
    let mut order = Vec::with_capacity(num_groups);
    for g in 0..num_groups {
        let key = match grouper.keys().get(g) {
            Some(values) => RowKey::from_values(values),
            None => RowKey::from_values(&[]),
        };
        let states = states_per_agg.iter().map(|s| s[g].clone()).collect();
        groups.insert(key.clone(), states);
        order.push(key);
    }
    Ok(PartialAgg { groups, order })
}

fn morsel_size(rows: usize, threads: usize) -> usize {
    rows.div_ceil(threads).clamp(1, DEFAULT_MORSEL_ROWS.max(1))
}

/// Validate a thread-count setting.
pub fn validate_parallelism(threads: usize) -> Result<usize> {
    if threads == 0 {
        return Err(SqlError::Plan("parallelism must be >= 1".into()));
    }
    Ok(threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{plan_select, LogicalPlan, SchemaProvider};
    use crate::parser::parse_select;
    use lakehouse_columnar::kernels::CmpOp;
    use lakehouse_columnar::{Field, Value};

    fn big_batch(n: i64) -> RecordBatch {
        RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, false),
                Field::new("v", DataType::Float64, false),
            ]),
            vec![
                Column::from_i64((0..n).map(|i| i % 17).collect()),
                Column::from_f64((0..n).map(|i| i as f64).collect()),
            ],
        )
        .unwrap()
    }

    struct Fixture(RecordBatch);
    impl SchemaProvider for Fixture {
        fn table_schema(&self, t: &str) -> Option<Schema> {
            (t == "t").then(|| self.0.schema().clone())
        }
    }

    type AggParts = (Vec<(Expr, String)>, Vec<(AggExpr, String)>, Schema);

    /// Pull group/agg exprs out of a planned aggregate query.
    fn agg_parts(sql: &str, batch: &RecordBatch) -> AggParts {
        let plan = plan_select(&parse_select(sql).unwrap(), &Fixture(batch.clone())).unwrap();
        fn find(plan: &LogicalPlan) -> Option<&LogicalPlan> {
            match plan {
                LogicalPlan::Aggregate { .. } => Some(plan),
                LogicalPlan::Project { input, .. }
                | LogicalPlan::Filter { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Distinct { input }
                | LogicalPlan::SubqueryAlias { input, .. } => find(input),
                _ => None,
            }
        }
        let agg = find(&plan).expect("aggregate in plan");
        let LogicalPlan::Aggregate {
            group_exprs,
            agg_exprs,
            ..
        } = agg
        else {
            unreachable!()
        };
        (
            group_exprs.clone(),
            agg_exprs.clone(),
            agg.schema().unwrap(),
        )
    }

    #[test]
    fn parallel_filter_matches_serial() {
        let batch = big_batch(100_000);
        let predicate = Expr::Compare {
            op: CmpOp::Gt,
            left: Box::new(Expr::col("v")),
            right: Box::new(Expr::lit(50_000.0)),
        };
        let serial = parallel_filter(&batch, &predicate, 1).unwrap();
        let parallel = parallel_filter(&batch, &predicate, 8).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.num_rows(), 49_999);
    }

    #[test]
    fn parallel_aggregate_matches_serial_counts() {
        let batch = big_batch(50_000);
        let (groups, aggs, schema) = agg_parts(
            "SELECT k, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS mn, MAX(v) AS mx, AVG(v) AS a \
             FROM t GROUP BY k",
            &batch,
        );
        let serial = parallel_aggregate(&batch, &groups, &aggs, &schema, 1).unwrap();
        let parallel = parallel_aggregate(&batch, &groups, &aggs, &schema, 8).unwrap();
        assert_eq!(serial.num_rows(), 17);
        assert_eq!(parallel.num_rows(), 17);
        // Order-insensitive comparison: sort both by k.
        let sort = |b: &RecordBatch| {
            let key = lakehouse_columnar::kernels::SortField::asc(b.column(0).clone());
            lakehouse_columnar::kernels::sort::sort_batch(b, &[key]).unwrap()
        };
        assert_eq!(sort(&serial), sort(&parallel));
    }

    #[test]
    fn parallel_global_aggregate_empty_input() {
        let batch = big_batch(0);
        let (groups, aggs, schema) = agg_parts("SELECT COUNT(*) AS n, SUM(v) AS s FROM t", &batch);
        let out = parallel_aggregate(&batch, &groups, &aggs, &schema, 4).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0).unwrap()[0], Value::Int64(0));
        assert_eq!(out.row(0).unwrap()[1], Value::Null);
    }

    #[test]
    fn parallel_respects_nulls_in_groups() {
        let batch = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, true),
                Field::new("v", DataType::Float64, false),
            ]),
            vec![
                Column::from_opt_i64(vec![Some(1), None, Some(1), None, Some(2)]),
                Column::from_f64(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            ],
        )
        .unwrap();
        let (groups, aggs, schema) = agg_parts("SELECT k, SUM(v) AS s FROM t GROUP BY k", &batch);
        let out = parallel_aggregate(&batch, &groups, &aggs, &schema, 3).unwrap();
        assert_eq!(out.num_rows(), 3); // groups: 1, NULL, 2
    }

    #[test]
    fn zero_parallelism_rejected() {
        assert!(validate_parallelism(0).is_err());
        assert_eq!(validate_parallelism(4).unwrap(), 4);
    }
}
