//! Physical execution: evaluate a logical plan to a [`RecordBatch`].
//!
//! Materialized, vectorized execution — each operator consumes and produces
//! whole batches, with the columnar kernels doing the per-row work. At the
//! paper's Reasonable Scale (§3.1) this is the right trade: operator
//! pipelining buys little when the data fits in memory and the bottleneck is
//! object storage.

use crate::ast::{ArithOp, Expr, JoinType, LogicalOp};
use crate::engine::TableProvider;
use crate::error::{Result, SqlError};
use crate::functions::{eval_scalar_function, like_match};
use crate::logical::{infer_type, resolve_column, LogicalPlan};
use lakehouse_columnar::kernels::{
    self, cmp_column_scalar, cmp_columns, filter_batch, take_batch, to_selection, AggState, CmpOp,
    Grouper, SortField,
};
use lakehouse_columnar::{
    Bitmap, Column, ColumnBuilder, DataType, Field, RecordBatch, Schema, Value,
};
use std::collections::HashMap;

/// Execution tuning.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Worker threads for parallel operators (1 = serial).
    pub parallelism: usize,
    /// Minimum rows before parallel operators engage (below this the
    /// thread-spawn overhead outweighs the win).
    pub parallel_threshold_rows: usize,
    /// Maximum rows per batch yielded by streaming sources (oversized
    /// batches are split; see [`crate::streaming`]).
    pub batch_rows: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            parallelism: 1,
            parallel_threshold_rows: 32 * 1024,
            batch_rows: 8192,
        }
    }
}

/// Execute a logical plan against a table provider (serial defaults).
pub fn execute(plan: &LogicalPlan, provider: &dyn TableProvider) -> Result<RecordBatch> {
    execute_with_options(plan, provider, &ExecOptions::default())
}

/// Execute with explicit tuning (the paper's §5 "parallelizing SQL
/// execution": filters and aggregations fan out over worker threads when
/// inputs are large enough).
pub fn execute_with_options(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    options: &ExecOptions,
) -> Result<RecordBatch> {
    let wall_start = std::time::Instant::now();
    let sim_start = lakehouse_obs::thread_sim_nanos();
    // Late materialization: dictionary-encoded columns flow through the
    // operators as codes; only the rows that survive to the final result
    // are decoded to plain strings.
    let result = execute_node(plan, provider, options, "0").map(RecordBatch::decode_dicts);
    lakehouse_obs::ctx::charge(|l| {
        l.add_kernel_nanos(
            wall_start.elapsed().as_nanos() as u64,
            lakehouse_obs::thread_sim_nanos().saturating_sub(sim_start),
        );
    });
    result
}

/// Recursive execution step. `path` identifies the node's position in the
/// plan (root `"0"`, child `i` of `p` at `"p.i"`); spans record it so
/// `EXPLAIN ANALYZE` can match stats back to plan nodes.
fn execute_node(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    options: &ExecOptions,
    path: &str,
) -> Result<RecordBatch> {
    // Cooperative cancellation point: every operator boundary re-checks
    // the owning query's token. The message keeps the stable store-layer
    // prefix (`query killed (...)`) so upper layers that only see strings
    // can still classify the failure.
    if let Err(reason) = lakehouse_obs::check_current() {
        return Err(SqlError::Execution(format!("query killed ({reason})")));
    }
    // SubqueryAlias is transparent: no operator runs, so no span, and its
    // input keeps the alias's path (the streaming builder does the same).
    if let LogicalPlan::SubqueryAlias { input, .. } = plan {
        return execute_node(input, provider, options, path);
    }
    let span = lakehouse_obs::span(plan.name());
    let batch = execute_operator(plan, provider, options, path)?;
    if span.is_recording() {
        span.attr("path", path);
        span.attr("rows", batch.num_rows() as u64);
        span.attr("batches", 1u64);
        span.attr("bytes", batch.approx_bytes() as u64);
    }
    Ok(batch)
}

fn execute_operator(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    options: &ExecOptions,
    path: &str,
) -> Result<RecordBatch> {
    match plan {
        LogicalPlan::Scan {
            table,
            schema,
            projection,
            filters,
        } => {
            if table == "__dual" {
                // SELECT-without-FROM: one dummy row.
                return Ok(RecordBatch::try_new(
                    Schema::new(vec![Field::new("__dummy", DataType::Int64, true)]),
                    vec![Column::from_i64(vec![0])],
                )?);
            }
            let batch = provider.scan(table, projection.as_deref(), filters)?;
            // Providers may filter only approximately (file pruning); apply
            // the exact predicates here.
            let mut batch = batch;
            for f in filters {
                if batch.num_rows() == 0 {
                    break;
                }
                let mask = eval(f, &batch)?;
                batch = filter_batch(&batch, &to_selection(&mask)?)?;
            }
            let _ = schema;
            Ok(batch)
        }
        LogicalPlan::Filter { input, predicate } => {
            let batch = execute_node(input, provider, options, &format!("{path}.0"))?;
            if options.parallelism > 1 && batch.num_rows() >= options.parallel_threshold_rows {
                return crate::parallel::parallel_filter(&batch, predicate, options.parallelism);
            }
            let mask = eval(predicate, &batch)?;
            Ok(filter_batch(&batch, &to_selection(&mask)?)?)
        }
        LogicalPlan::Project { input, exprs } => {
            let batch = execute_node(input, provider, options, &format!("{path}.0"))?;
            execute_project(&batch, exprs, plan.schema()?)
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            agg_exprs,
        } => {
            let batch = execute_node(input, provider, options, &format!("{path}.0"))?;
            if options.parallelism > 1 && batch.num_rows() >= options.parallel_threshold_rows {
                return crate::parallel::parallel_aggregate(
                    &batch,
                    group_exprs,
                    agg_exprs,
                    &plan.schema()?,
                    options.parallelism,
                );
            }
            execute_aggregate(plan, &batch, group_exprs, agg_exprs)
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
        } => {
            let lbatch = execute_node(left, provider, options, &format!("{path}.0"))?;
            let rbatch = execute_node(right, provider, options, &format!("{path}.1"))?;
            execute_join(&lbatch, &rbatch, *join_type, on)
        }
        LogicalPlan::Sort { input, keys } => {
            let batch = execute_node(input, provider, options, &format!("{path}.0"))?;
            let sort_fields = keys
                .iter()
                .map(|(e, desc)| {
                    let col = eval(e, &batch)?;
                    Ok(if *desc {
                        SortField::desc(col)
                    } else {
                        SortField::asc(col)
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            let indices = kernels::sort_indices(&sort_fields)?;
            Ok(take_batch(&batch, &indices)?)
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            // Slide the slice below a projection: projection expressions are
            // pure and row-wise, so evaluating them over rows the LIMIT is
            // about to drop is pure waste. (Done here rather than in the
            // optimizer so EXPLAIN output is unchanged.)
            if let LogicalPlan::Project {
                input: proj_input,
                exprs,
            } = input.as_ref()
            {
                // The slice runs before the projection, but the span tree
                // still shows Project at its plan position under Limit.
                let proj_span = lakehouse_obs::span("Project");
                let proj_path = format!("{path}.0");
                let batch = execute_node(proj_input, provider, options, &format!("{proj_path}.0"))?;
                let sliced = slice_limit(&batch, *limit, *offset)?;
                let out = execute_project(&sliced, exprs, input.schema()?)?;
                if proj_span.is_recording() {
                    proj_span.attr("path", proj_path);
                    proj_span.attr("rows", out.num_rows() as u64);
                    proj_span.attr("batches", 1u64);
                    proj_span.attr("bytes", out.approx_bytes() as u64);
                }
                return Ok(out);
            }
            let batch = execute_node(input, provider, options, &format!("{path}.0"))?;
            slice_limit(&batch, *limit, *offset)
        }
        LogicalPlan::Distinct { input } => {
            let batch = execute_node(input, provider, options, &format!("{path}.0"))?;
            let all_cols: Vec<usize> = (0..batch.num_columns()).collect();
            let mut seen = std::collections::HashSet::new();
            let mut keep = Vec::new();
            for row in 0..batch.num_rows() {
                let key = kernels::hash::RowKey::from_batch(&batch, &all_cols, row)?;
                if seen.insert(key) {
                    keep.push(row);
                }
            }
            Ok(take_batch(&batch, &keep)?)
        }
        // Handled by `execute_node` before dispatch; recurse for completeness.
        LogicalPlan::SubqueryAlias { input, .. } => execute_node(input, provider, options, path),
    }
}

/// Apply LIMIT/OFFSET to a materialized batch.
fn slice_limit(batch: &RecordBatch, limit: Option<usize>, offset: usize) -> Result<RecordBatch> {
    let start = offset.min(batch.num_rows());
    let len = limit.unwrap_or(usize::MAX).min(batch.num_rows() - start);
    Ok(batch.slice(start, len)?)
}

/// Evaluate projection expressions over a batch, casting each column to the
/// inferred output field type (e.g. an int literal projected into a float
/// column). Shared by the Project operator, the limit-below-projection fast
/// path, and the streaming executor.
pub(crate) fn execute_project(
    batch: &RecordBatch,
    exprs: &[(Expr, String)],
    schema: Schema,
) -> Result<RecordBatch> {
    let columns = exprs
        .iter()
        .zip(schema.fields())
        .map(|((e, _), field)| {
            let col = eval(e, batch)?;
            if col.data_type() != field.data_type() {
                Ok(kernels::cast(&col, field.data_type())?)
            } else {
                Ok(col)
            }
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(RecordBatch::try_new(schema, columns)?)
}

fn execute_aggregate(
    plan: &LogicalPlan,
    batch: &RecordBatch,
    group_exprs: &[(Expr, String)],
    agg_exprs: &[(crate::logical::AggExpr, String)],
) -> Result<RecordBatch> {
    let out_schema = plan.schema()?;
    // Evaluate group keys and aggregate arguments once, vectorized.
    let group_cols = group_exprs
        .iter()
        .map(|(e, _)| eval(e, batch))
        .collect::<Result<Vec<_>>>()?;
    let arg_cols = agg_exprs
        .iter()
        .map(|(a, _)| a.arg.as_ref().map(|e| eval(e, batch)).transpose())
        .collect::<Result<Vec<_>>>()?;

    // Resolve rows to dense group ids once (dictionary keys group in code
    // space), then run each aggregate as one typed pass over the batch.
    let n = batch.num_rows();
    let mut grouper = Grouper::new();
    let mut ids = Vec::new();
    if group_exprs.is_empty() {
        // Global aggregation: one group even over zero rows.
        ids.resize(n, 0u32);
    } else {
        grouper.group_ids(&group_cols, &mut ids)?;
    }
    let num_groups = if group_exprs.is_empty() {
        1
    } else {
        grouper.num_groups()
    };
    let mut states: Vec<Vec<AggState>> = agg_exprs
        .iter()
        .map(|(a, _)| vec![AggState::new(a.agg); num_groups])
        .collect();
    for (slots, arg_col) in states.iter_mut().zip(&arg_cols) {
        kernels::update_grouped(slots, &ids, arg_col.as_ref())?;
    }

    // Assemble output.
    let mut builders: Vec<ColumnBuilder> = out_schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::with_capacity(f.data_type(), num_groups))
        .collect();
    let keys = grouper.keys();
    for g in 0..num_groups {
        if let Some(key_values) = keys.get(g) {
            for (i, v) in key_values.iter().enumerate() {
                builders[i].push_value(v)?;
            }
        }
        for (j, slots) in states.iter().enumerate() {
            let input_type = match &arg_cols[j] {
                Some(col) => col.data_type(),
                None => DataType::Int64,
            };
            let v = slots[g].finish(input_type)?;
            builders[group_exprs.len() + j].push_value(&v)?;
        }
    }
    let columns = builders.into_iter().map(ColumnBuilder::finish).collect();
    Ok(RecordBatch::try_new(out_schema, columns)?)
}

fn execute_join(
    left: &RecordBatch,
    right: &RecordBatch,
    join_type: JoinType,
    on: &[(Expr, Expr)],
) -> Result<RecordBatch> {
    if on.is_empty() {
        return Err(SqlError::Execution("join requires an ON clause".into()));
    }
    // Decide which side of each equality belongs to which input by trying to
    // resolve against the left schema.
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    for (a, b) in on {
        if expr_resolves(a, left.schema()) && expr_resolves(b, right.schema()) {
            left_keys.push(a.clone());
            right_keys.push(b.clone());
        } else if expr_resolves(b, left.schema()) && expr_resolves(a, right.schema()) {
            left_keys.push(b.clone());
            right_keys.push(a.clone());
        } else {
            return Err(SqlError::Plan(format!(
                "cannot resolve join condition {a} = {b} against the two inputs"
            )));
        }
    }
    let lcols = left_keys
        .iter()
        .map(|e| eval(e, left))
        .collect::<Result<Vec<_>>>()?;
    let rcols = right_keys
        .iter()
        .map(|e| eval(e, right))
        .collect::<Result<Vec<_>>>()?;

    // Build hash table on the right side.
    let mut table: HashMap<kernels::hash::RowKey, Vec<usize>> = HashMap::new();
    for row in 0..right.num_rows() {
        let key_values: Vec<Value> = rcols
            .iter()
            .map(|c| c.get(row))
            .collect::<lakehouse_columnar::Result<_>>()?;
        let key = kernels::hash::RowKey::from_values(&key_values);
        if key.has_null() {
            continue; // SQL: null keys never join
        }
        table.entry(key).or_default().push(row);
    }
    // Probe with the left side.
    let mut left_idx = Vec::new();
    let mut right_idx: Vec<Option<usize>> = Vec::new();
    for row in 0..left.num_rows() {
        let key_values: Vec<Value> = lcols
            .iter()
            .map(|c| c.get(row))
            .collect::<lakehouse_columnar::Result<_>>()?;
        let key = kernels::hash::RowKey::from_values(&key_values);
        let matches = if key.has_null() {
            None
        } else {
            table.get(&key)
        };
        match matches {
            Some(rows) => {
                for &r in rows {
                    left_idx.push(row);
                    right_idx.push(Some(r));
                }
            }
            None => {
                if join_type == JoinType::Left {
                    left_idx.push(row);
                    right_idx.push(None);
                }
            }
        }
    }

    // Materialize output: left columns gathered, right columns gathered with
    // nulls for non-matches.
    let mut fields: Vec<Field> = left.schema().fields().to_vec();
    let mut columns: Vec<Column> = left
        .columns()
        .iter()
        .map(|c| kernels::take_column(c, &left_idx))
        .collect::<lakehouse_columnar::Result<_>>()?;
    for (f, col) in right.schema().fields().iter().zip(right.columns()) {
        // LEFT JOIN makes right columns nullable.
        fields.push(Field::new(f.name(), f.data_type(), true));
        let mut b = ColumnBuilder::with_capacity(f.data_type(), right_idx.len());
        for r in &right_idx {
            match r {
                Some(r) => b.push_value(&col.get(*r)?)?,
                None => b.push_null(),
            }
        }
        columns.push(b.finish());
    }
    Ok(RecordBatch::try_new(Schema::new(fields), columns)?)
}

fn expr_resolves(expr: &Expr, schema: &Schema) -> bool {
    let mut ok = true;
    expr.walk(&mut |e| {
        if let Expr::Column { qualifier, name } = e {
            if resolve_column(schema, qualifier.as_deref(), name).is_err() {
                ok = false;
            }
        }
    });
    ok
}

/// Evaluate an expression against a batch, producing a column of
/// `batch.num_rows()` values.
pub fn eval(expr: &Expr, batch: &RecordBatch) -> Result<Column> {
    let n = batch.num_rows();
    match expr {
        Expr::Column { qualifier, name } => {
            let i = resolve_column(batch.schema(), qualifier.as_deref(), name)?;
            Ok(batch.column(i).clone())
        }
        Expr::Literal(v) => Ok(Column::from_value(v, n)?),
        Expr::Compare { op, left, right } => {
            // Column-vs-literal fast path.
            if let Expr::Literal(v) = right.as_ref() {
                let l = eval(left, batch)?;
                return Ok(cmp_column_scalar(*op, &l, v)?);
            }
            if let Expr::Literal(v) = left.as_ref() {
                let r = eval(right, batch)?;
                return Ok(cmp_column_scalar(op.flip(), &r, v)?);
            }
            let l = eval(left, batch)?;
            let r = eval(right, batch)?;
            Ok(cmp_columns(*op, &l, &r)?)
        }
        Expr::Arith { op, left, right } => {
            let l = eval(left, batch)?;
            let r = eval(right, batch)?;
            Ok(match op {
                ArithOp::Add => kernels::add(&l, &r)?,
                ArithOp::Sub => kernels::sub(&l, &r)?,
                ArithOp::Mul => kernels::mul(&l, &r)?,
                ArithOp::Div => kernels::div(&l, &r)?,
                ArithOp::Mod => kernels::modulo(&l, &r)?,
            })
        }
        Expr::Logical { op, left, right } => {
            let l = eval(left, batch)?;
            let r = eval(right, batch)?;
            Ok(match op {
                LogicalOp::And => kernels::and_kleene(&l, &r)?,
                LogicalOp::Or => kernels::or_kleene(&l, &r)?,
            })
        }
        Expr::Not(e) => Ok(kernels::not(&eval(e, batch)?)?),
        Expr::Negate(e) => Ok(kernels::neg(&eval(e, batch)?)?),
        Expr::IsNull { expr, negated } => {
            let col = eval(expr, batch)?;
            let values: Vec<bool> = (0..col.len())
                .map(|i| col.is_valid(i) == *negated)
                .collect();
            Ok(Column::from_bool(values))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            // Desugar: expr >= low AND expr <= high.
            let ge = Expr::Compare {
                op: CmpOp::GtEq,
                left: expr.clone(),
                right: low.clone(),
            };
            let le = Expr::Compare {
                op: CmpOp::LtEq,
                left: expr.clone(),
                right: high.clone(),
            };
            let both = Expr::Logical {
                op: LogicalOp::And,
                left: Box::new(ge),
                right: Box::new(le),
            };
            let result = eval(&both, batch)?;
            if *negated {
                Ok(kernels::not(&result)?)
            } else {
                Ok(result)
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let col = eval(expr, batch)?;
            let mut acc: Option<Column> = None;
            for item in list {
                let eq = match item {
                    Expr::Literal(v) => cmp_column_scalar(CmpOp::Eq, &col, v)?,
                    other => cmp_columns(CmpOp::Eq, &col, &eval(other, batch)?)?,
                };
                acc = Some(match acc {
                    Some(prev) => kernels::or_kleene(&prev, &eq)?,
                    None => eq,
                });
            }
            let result = acc.ok_or_else(|| SqlError::Execution("empty IN list".into()))?;
            if *negated {
                Ok(kernels::not(&result)?)
            } else {
                Ok(result)
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let col = eval(expr, batch)?;
            // Dictionary column: run the pattern over each distinct value
            // once, then the per-row work is a u32 table lookup.
            if let Some(d) = col.as_dict() {
                let table: Vec<bool> = d
                    .dict()
                    .iter()
                    .map(|s| like_match(s, pattern) != *negated)
                    .collect();
                let out: Vec<bool> = d.codes().iter().map(|&c| table[c as usize]).collect();
                return Ok(Column::Bool(out, d.validity().cloned()));
            }
            let (values, validity) = col.as_utf8()?;
            let out: Vec<bool> = values
                .iter()
                .map(|s| like_match(s, pattern) != *negated)
                .collect();
            Ok(Column::Bool(out, validity.cloned()))
        }
        Expr::Function { name, args } => {
            // Aggregates must have been rewritten away by the planner.
            if lakehouse_columnar::kernels::Aggregator::parse(name).is_some() {
                return Err(SqlError::Execution(format!(
                    "aggregate {name} in a row-level context"
                )));
            }
            let arg_cols = args
                .iter()
                .map(|a| eval(a, batch))
                .collect::<Result<Vec<_>>>()?;
            let out_type = crate::functions::scalar_return_type(name, args, batch.schema())?;
            let mut b = ColumnBuilder::with_capacity(out_type, n);
            for row in 0..n {
                let row_args: Vec<Value> = arg_cols
                    .iter()
                    .map(|c| c.get(row))
                    .collect::<lakehouse_columnar::Result<_>>()?;
                let v = eval_scalar_function(name, &row_args)?;
                let v = lakehouse_columnar::kernels::cast::cast_value(&v, out_type)?;
                b.push_value(&v)?;
            }
            Ok(b.finish())
        }
        Expr::CountStar => Err(SqlError::Execution(
            "COUNT(*) in a row-level context".into(),
        )),
        Expr::Cast { expr, to } => Ok(kernels::cast(&eval(expr, batch)?, *to)?),
        Expr::Case {
            branches,
            else_expr,
        } => {
            let out_type = infer_type(expr, batch.schema())?;
            let cond_cols = branches
                .iter()
                .map(|(c, _)| eval(c, batch))
                .collect::<Result<Vec<_>>>()?;
            let val_cols = branches
                .iter()
                .map(|(_, v)| eval(v, batch))
                .collect::<Result<Vec<_>>>()?;
            let else_col = else_expr.as_ref().map(|e| eval(e, batch)).transpose()?;
            let mut b = ColumnBuilder::with_capacity(out_type, n);
            for row in 0..n {
                let mut pushed = false;
                for (cond, val) in cond_cols.iter().zip(&val_cols) {
                    if cond.get(row)? == Value::Bool(true) {
                        let v = lakehouse_columnar::kernels::cast::cast_value(
                            &val.get(row)?,
                            out_type,
                        )?;
                        b.push_value(&v)?;
                        pushed = true;
                        break;
                    }
                }
                if !pushed {
                    match &else_col {
                        Some(c) => {
                            let v = lakehouse_columnar::kernels::cast::cast_value(
                                &c.get(row)?,
                                out_type,
                            )?;
                            b.push_value(&v)?;
                        }
                        None => b.push_null(),
                    }
                }
            }
            Ok(b.finish())
        }
    }
}

// Mask construction via `to_selection` lives in the columnar crate; nothing
// else to re-export here.
#[allow(unused)]
fn _mask_helper(mask: &Column) -> Result<Bitmap> {
    Ok(to_selection(mask)?)
}
