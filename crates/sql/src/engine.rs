//! The top-level engine: SQL text in, record batch out.

use crate::ast::Expr;
use crate::error::Result;
use crate::logical::{plan_select, LogicalPlan, SchemaProvider};
use crate::optimizer::optimize;
use crate::parser::parse_select;
use lakehouse_columnar::{BatchStream, BatchesStream, RechunkStream, RecordBatch, Schema};
use std::collections::HashMap;

/// Data access for execution: schema resolution plus scanning, with optional
/// projection and filter pushdown. Implementors may apply filters only
/// *approximately* (pruning); the executor re-applies them exactly.
pub trait TableProvider: SchemaProvider {
    /// Scan a table. `projection` lists the column names to return (in table
    /// order is acceptable); `filters` are conjunctive predicates that MAY be
    /// used to skip data.
    fn scan(
        &self,
        table: &str,
        projection: Option<&[String]>,
        filters: &[Expr],
    ) -> Result<RecordBatch>;

    /// Scan a table as a pull-based stream of batches, each at most
    /// `batch_rows` rows. The default materializes via [`Self::scan`] and
    /// rechunks; providers backed by multi-file tables override this to
    /// yield batches lazily (one per data file) so unconsumed files are
    /// never fetched.
    fn scan_stream(
        &self,
        table: &str,
        projection: Option<&[String]>,
        filters: &[Expr],
        batch_rows: usize,
    ) -> Result<Box<dyn BatchStream>> {
        let batch = self.scan(table, projection, filters)?;
        Ok(Box::new(RechunkStream::new(
            BatchesStream::one(batch),
            batch_rows,
        )))
    }
}

/// A provider over in-memory named batches (used by tests, the fused
/// executor, and `bauplan query` over intermediate artifacts).
#[derive(Debug, Default, Clone)]
pub struct MemoryProvider {
    tables: HashMap<String, RecordBatch>,
}

impl MemoryProvider {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    pub fn register(&mut self, name: impl Into<String>, batch: RecordBatch) {
        self.tables.insert(name.into(), batch);
    }

    pub fn get(&self, name: &str) -> Option<&RecordBatch> {
        self.tables.get(name)
    }

    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }
}

impl SchemaProvider for MemoryProvider {
    fn table_schema(&self, table: &str) -> Option<Schema> {
        self.tables.get(table).map(|b| b.schema().clone())
    }
}

impl TableProvider for MemoryProvider {
    fn scan(
        &self,
        table: &str,
        projection: Option<&[String]>,
        _filters: &[Expr],
    ) -> Result<RecordBatch> {
        let batch = self
            .tables
            .get(table)
            .ok_or_else(|| crate::error::SqlError::Plan(format!("unknown table: {table}")))?;
        match projection {
            Some(cols) => {
                let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                Ok(batch.project(&names)?)
            }
            None => Ok(batch.clone()),
        }
    }
}

/// The SQL engine façade.
#[derive(Debug, Default, Clone, Copy)]
pub struct SqlEngine {
    options: crate::physical::ExecOptions,
    streaming: bool,
}

impl SqlEngine {
    pub fn new() -> Self {
        SqlEngine::default()
    }

    /// Enable parallel filter/aggregate execution over `threads` workers
    /// (the paper's §5 future-work item).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.options.parallelism = threads.max(1);
        self
    }

    /// Lower the row threshold above which parallel operators engage
    /// (mostly useful in tests).
    pub fn with_parallel_threshold(mut self, rows: usize) -> Self {
        self.options.parallel_threshold_rows = rows;
        self
    }

    /// Route execution through the streaming pipeline (pull-based, batch at
    /// a time, early termination). Off by default: the materialized path
    /// keeps exact operator ordering for metrics-asserting callers.
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Cap rows per batch in streaming sources (default 8192).
    pub fn with_batch_rows(mut self, rows: usize) -> Self {
        self.options.batch_rows = rows.max(1);
        self
    }

    /// Parse, plan, optimize, and execute a query.
    pub fn query(&self, sql: &str, provider: &dyn TableProvider) -> Result<RecordBatch> {
        if self.streaming {
            return Ok(self.query_with_report(sql, provider)?.0);
        }
        let plan = self.plan(sql, provider)?;
        crate::physical::execute_with_options(&plan, provider, &self.options)
    }

    /// Execute through the streaming pipeline and report peak memory and
    /// per-operator row counts. Scans stream per-file when the engine is in
    /// streaming mode; otherwise each table is materialized up front and fed
    /// through the same operators (the honest baseline for comparing
    /// `peak_bytes`).
    pub fn query_with_report(
        &self,
        sql: &str,
        provider: &dyn TableProvider,
    ) -> Result<(RecordBatch, crate::streaming::ExecReport)> {
        let plan = self.plan(sql, provider)?;
        crate::streaming::execute_streaming(&plan, provider, &self.options, self.streaming)
    }

    /// Produce the optimized logical plan without executing.
    pub fn plan(&self, sql: &str, provider: &dyn TableProvider) -> Result<LogicalPlan> {
        let stmt = parse_select(sql)?;
        // &dyn TableProvider upcasts to &dyn SchemaProvider (supertrait).
        let plan = plan_select(&stmt, provider as &dyn SchemaProvider)?;
        optimize(plan)
    }

    /// EXPLAIN: the optimized plan as text.
    pub fn explain(&self, sql: &str, provider: &dyn TableProvider) -> Result<String> {
        Ok(self.plan(sql, provider)?.display_indent())
    }

    /// EXPLAIN ANALYZE: execute the query under a forced trace (through the
    /// engine's configured executor — streaming or materialized) and render
    /// the optimized plan annotated per operator with rows, batches, output
    /// bytes, and wall/simulated span time.
    pub fn explain_analyze(
        &self,
        sql: &str,
        provider: &dyn TableProvider,
    ) -> Result<(RecordBatch, String)> {
        let (batch, text, _) = self.explain_analyze_traced(sql, provider)?;
        Ok((batch, text))
    }

    /// [`Self::explain_analyze`], additionally returning the recorded span
    /// tree (for exporters: Chrome trace, `bauplan profile`).
    pub fn explain_analyze_traced(
        &self,
        sql: &str,
        provider: &dyn TableProvider,
    ) -> Result<(RecordBatch, String, lakehouse_obs::SpanTree)> {
        let plan = self.plan(sql, provider)?;
        let trace = lakehouse_obs::Trace::start_forced("explain_analyze");
        let result = if self.streaming {
            crate::streaming::execute_streaming(&plan, provider, &self.options, true)
                .map(|(batch, _)| batch)
        } else {
            crate::physical::execute_with_options(&plan, provider, &self.options)
        };
        let tree = trace.finish();
        let batch = result?;
        let text = crate::analyze::render_analyzed(&plan, &tree);
        Ok((batch, text, tree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakehouse_columnar::{Column, DataType, Field, Value};

    fn provider() -> MemoryProvider {
        let mut p = MemoryProvider::new();
        // The paper's taxi_table (Appendix A shape).
        p.register(
            "taxi_table",
            RecordBatch::try_new(
                Schema::new(vec![
                    Field::new("pickup_location_id", DataType::Int64, false),
                    Field::new("dropoff_location_id", DataType::Int64, false),
                    Field::new("passenger_count", DataType::Int64, true),
                    Field::new("pickup_at", DataType::Date, false),
                    Field::new("fare", DataType::Float64, true),
                ]),
                vec![
                    Column::from_i64(vec![1, 1, 2, 2, 3, 3, 1, 2]),
                    Column::from_i64(vec![10, 20, 10, 20, 10, 30, 10, 10]),
                    Column::from_opt_i64(vec![
                        Some(1),
                        Some(2),
                        None,
                        Some(4),
                        Some(5),
                        Some(1),
                        Some(3),
                        Some(2),
                    ]),
                    Column::from_date(vec![
                        17_980, 17_985, 17_990, 17_995, 18_000, 18_005, 18_010, 18_015,
                    ]),
                    Column::from_opt_f64(vec![
                        Some(10.0),
                        Some(20.0),
                        Some(5.0),
                        None,
                        Some(50.0),
                        Some(7.5),
                        Some(12.5),
                        Some(30.0),
                    ]),
                ],
            )
            .unwrap(),
        );
        p.register(
            "zones",
            RecordBatch::try_new(
                Schema::new(vec![
                    Field::new("id", DataType::Int64, false),
                    Field::new("name", DataType::Utf8, false),
                ]),
                vec![
                    Column::from_i64(vec![1, 2, 3]),
                    Column::from_strs(vec!["midtown", "soho", "harlem"]),
                ],
            )
            .unwrap(),
        );
        p
    }

    fn q(sql: &str) -> RecordBatch {
        SqlEngine::new().query(sql, &provider()).unwrap()
    }

    #[test]
    fn select_star() {
        let b = q("SELECT * FROM taxi_table");
        assert_eq!(b.num_rows(), 8);
        assert_eq!(b.num_columns(), 5);
    }

    #[test]
    fn paper_step1_trips() {
        // Appendix A, Step 1.
        let b = q("SELECT pickup_location_id, passenger_count as count, \
                   dropoff_location_id FROM taxi_table WHERE pickup_at >= DATE '2019-04-01'");
        // 2019-04-01 = day 17987 → rows with pickup_at >= 17987: 6 rows.
        assert_eq!(b.num_rows(), 6);
        assert_eq!(
            b.schema().names(),
            vec!["pickup_location_id", "count", "dropoff_location_id"]
        );
    }

    #[test]
    fn paper_step3_pickups() {
        // Appendix A, Step 3: aggregate + order.
        let b = q(
            "SELECT pickup_location_id, dropoff_location_id, COUNT(*) AS counts \
                   FROM taxi_table GROUP BY pickup_location_id, dropoff_location_id \
                   ORDER BY counts DESC",
        );
        assert!(b.num_rows() >= 4);
        // Top group is (1,10) or (2,10) with count 2; counts must be
        // non-increasing.
        let counts = b.column_by_name("counts").unwrap();
        let values: Vec<i64> = counts.iter_values().map(|v| v.as_i64().unwrap()).collect();
        for w in values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(values[0], 2); // (1,10) and (2,10) each appear twice
    }

    #[test]
    fn where_with_nulls_dropped() {
        let b = q("SELECT fare FROM taxi_table WHERE fare > 9.0");
        // fares: 10,20,50,12.5,30 > 9 (null dropped).
        assert_eq!(b.num_rows(), 5);
    }

    #[test]
    fn global_aggregates() {
        let b = q("SELECT COUNT(*) AS n, COUNT(fare) AS nf, SUM(fare) AS s, \
                   MIN(fare) AS mn, MAX(fare) AS mx, AVG(passenger_count) AS ap \
                   FROM taxi_table");
        assert_eq!(b.num_rows(), 1);
        let row = b.row(0).unwrap();
        assert_eq!(row[0], Value::Int64(8));
        assert_eq!(row[1], Value::Int64(7));
        assert_eq!(row[2], Value::Float64(135.0));
        assert_eq!(row[3], Value::Float64(5.0));
        assert_eq!(row[4], Value::Float64(50.0));
        let Value::Float64(avg) = row[5] else {
            panic!()
        };
        assert!((avg - 18.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn global_aggregate_on_empty_filter() {
        let b = q("SELECT COUNT(*) AS n, SUM(fare) AS s FROM taxi_table WHERE fare > 1000.0");
        assert_eq!(b.row(0).unwrap()[0], Value::Int64(0));
        assert_eq!(b.row(0).unwrap()[1], Value::Null);
    }

    #[test]
    fn having_filters_groups() {
        let b = q("SELECT pickup_location_id, COUNT(*) AS n FROM taxi_table \
                   GROUP BY pickup_location_id HAVING COUNT(*) > 2");
        assert_eq!(b.num_rows(), 2); // ids 1 (3 rows) and 2 (3 rows)
    }

    #[test]
    fn inner_join() {
        let b = q("SELECT name, fare FROM taxi_table t JOIN zones z \
                   ON t.pickup_location_id = z.id WHERE fare > 15.0");
        assert_eq!(b.num_rows(), 3); // fares 20 (id1), 50 (id3), 30 (id2)
        assert_eq!(b.schema().names(), vec!["name", "fare"]);
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let mut p = provider();
        p.register(
            "extra",
            RecordBatch::try_new(
                Schema::new(vec![
                    Field::new("zid", DataType::Int64, false),
                    Field::new("extra", DataType::Utf8, false),
                ]),
                vec![
                    Column::from_i64(vec![1]),
                    Column::from_strs(vec!["only-one"]),
                ],
            )
            .unwrap(),
        );
        let b = SqlEngine::new()
            .query(
                "SELECT z.name, e.extra FROM zones z LEFT JOIN extra e ON z.id = e.zid \
                 ORDER BY z.id",
                &p,
            )
            .unwrap();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.row(0).unwrap()[1], Value::Utf8("only-one".into()));
        assert_eq!(b.row(1).unwrap()[1], Value::Null);
    }

    #[test]
    fn order_by_multiple_and_limit_offset() {
        let b = q("SELECT pickup_location_id AS p, fare FROM taxi_table \
                   ORDER BY p ASC, fare DESC LIMIT 3 OFFSET 1");
        assert_eq!(b.num_rows(), 3);
        // Full order for p=1: fares 20, 12.5, 10 → offset 1 gives 12.5, 10, then p=2...
        assert_eq!(b.row(0).unwrap()[1], Value::Float64(12.5));
    }

    #[test]
    fn distinct_rows() {
        let b = q("SELECT DISTINCT pickup_location_id FROM taxi_table");
        assert_eq!(b.num_rows(), 3);
    }

    #[test]
    fn expressions_and_functions() {
        let b = q("SELECT UPPER(name) AS un, LENGTH(name) AS ln FROM zones ORDER BY id");
        assert_eq!(b.row(0).unwrap()[0], Value::Utf8("MIDTOWN".into()));
        assert_eq!(b.row(0).unwrap()[1], Value::Int64(7));
    }

    #[test]
    fn case_when() {
        let b = q(
            "SELECT CASE WHEN fare >= 20.0 THEN 'high' WHEN fare >= 10.0 THEN 'mid' \
                   ELSE 'low' END AS band, fare FROM taxi_table WHERE fare IS NOT NULL \
                   ORDER BY fare",
        );
        assert_eq!(b.row(0).unwrap()[0], Value::Utf8("low".into())); // 5.0
        let last = b.num_rows() - 1;
        assert_eq!(b.row(last).unwrap()[0], Value::Utf8("high".into())); // 50.0
    }

    #[test]
    fn between_and_in() {
        let b = q("SELECT fare FROM taxi_table WHERE fare BETWEEN 10.0 AND 30.0");
        assert_eq!(b.num_rows(), 4); // 10, 20, 12.5, 30
        let b = q("SELECT * FROM taxi_table WHERE pickup_location_id IN (1, 3)");
        assert_eq!(b.num_rows(), 5);
    }

    #[test]
    fn is_null_checks() {
        assert_eq!(
            q("SELECT * FROM taxi_table WHERE fare IS NULL").num_rows(),
            1
        );
        assert_eq!(
            q("SELECT * FROM taxi_table WHERE fare IS NOT NULL").num_rows(),
            7
        );
    }

    #[test]
    fn like_on_strings() {
        assert_eq!(q("SELECT * FROM zones WHERE name LIKE '%o%'").num_rows(), 2);
        assert_eq!(
            q("SELECT * FROM zones WHERE name NOT LIKE 'm%'").num_rows(),
            2
        );
    }

    #[test]
    fn arithmetic_in_projection() {
        let b = q("SELECT fare * 2.0 AS double_fare FROM taxi_table WHERE fare = 10.0");
        assert_eq!(b.row(0).unwrap()[0], Value::Float64(20.0));
    }

    #[test]
    fn cast_in_query() {
        let b = q(
            "SELECT CAST(passenger_count AS DOUBLE) AS pc FROM taxi_table \
                   WHERE passenger_count = 5",
        );
        assert_eq!(b.row(0).unwrap()[0], Value::Float64(5.0));
    }

    #[test]
    fn subquery_in_from() {
        let b = q(
            "SELECT count FROM (SELECT passenger_count AS count FROM taxi_table \
                   WHERE passenger_count IS NOT NULL) sub WHERE count >= 3",
        );
        assert_eq!(b.num_rows(), 3); // 4, 5, 3
    }

    #[test]
    fn select_without_from() {
        let b = q("SELECT 1 + 1 AS two, 'x' AS s");
        assert_eq!(b.num_rows(), 1);
        assert_eq!(b.row(0).unwrap()[0], Value::Int64(2));
    }

    #[test]
    fn explain_shows_pushdown() {
        let text = SqlEngine::new()
            .explain(
                "SELECT fare FROM taxi_table WHERE pickup_location_id = 1",
                &provider(),
            )
            .unwrap();
        assert!(text.contains("Scan: taxi_table"));
        assert!(text.contains("filters=["));
        assert!(text.contains("projection=["));
    }

    #[test]
    fn explain_analyze_annotates_every_operator() {
        for engine in [SqlEngine::new(), SqlEngine::new().with_streaming(true)] {
            let (batch, text) = engine
                .explain_analyze(
                    "SELECT pickup_location_id, COUNT(*) AS n FROM taxi_table \
                     WHERE fare > 9.0 GROUP BY pickup_location_id",
                    &provider(),
                )
                .unwrap();
            assert_eq!(batch.num_rows(), 3);
            for line in text.lines() {
                assert!(
                    line.contains("[rows="),
                    "unannotated operator line: {line:?}"
                );
            }
            // The aggregate emits exactly the three output groups.
            let agg = text
                .lines()
                .find(|l| l.trim_start().starts_with("Aggregate"))
                .unwrap();
            assert!(agg.contains("[rows=3 "), "{agg}");
        }
    }

    #[test]
    fn explain_analyze_annotates_joins_and_subqueries() {
        let engine = SqlEngine::new().with_streaming(true);
        let (batch, text) = engine
            .explain_analyze(
                "SELECT name, total FROM (SELECT pickup_location_id AS p, SUM(fare) AS total \
                 FROM taxi_table GROUP BY pickup_location_id) t JOIN zones z ON t.p = z.id \
                 ORDER BY total DESC LIMIT 2",
                &provider(),
            )
            .unwrap();
        assert_eq!(batch.num_rows(), 2);
        for line in text.lines() {
            if line.trim_start().starts_with("SubqueryAlias") {
                continue; // transparent: no operator, no stats
            }
            assert!(
                line.contains("[rows="),
                "unannotated operator line: {line:?}"
            );
        }
    }

    #[test]
    fn unknown_table_is_plan_error() {
        assert!(SqlEngine::new()
            .query("SELECT * FROM ghost", &provider())
            .is_err());
    }

    #[test]
    fn aggregate_with_expression_over_group() {
        let b = q(
            "SELECT pickup_location_id, COUNT(*) + 1 AS n1 FROM taxi_table \
                   GROUP BY pickup_location_id ORDER BY pickup_location_id",
        );
        assert_eq!(b.row(0).unwrap()[1], Value::Int64(4)); // 3 rows + 1
    }

    #[test]
    fn count_distinct_native() {
        let b = q("SELECT COUNT(DISTINCT pickup_location_id) AS z,                    COUNT(DISTINCT dropoff_location_id) AS d FROM taxi_table");
        assert_eq!(b.row(0).unwrap()[0], Value::Int64(3));
        assert_eq!(b.row(0).unwrap()[1], Value::Int64(3));
    }

    #[test]
    fn count_distinct_grouped() {
        let b = q("SELECT pickup_location_id, COUNT(DISTINCT dropoff_location_id) AS d                    FROM taxi_table GROUP BY pickup_location_id ORDER BY pickup_location_id");
        // pickups 1 -> dropoffs {10,20}; 2 -> {10,20}; 3 -> {10,30}
        assert_eq!(b.row(0).unwrap()[1], Value::Int64(2));
        assert_eq!(b.row(1).unwrap()[1], Value::Int64(2));
        assert_eq!(b.row(2).unwrap()[1], Value::Int64(2));
    }

    #[test]
    fn count_distinct_like_via_subquery() {
        let b = q("SELECT COUNT(*) AS n FROM \
                   (SELECT DISTINCT pickup_location_id FROM taxi_table) d");
        assert_eq!(b.row(0).unwrap()[0], Value::Int64(3));
    }
}
