//! Pull-based streaming execution: the logical plan compiled to a tree of
//! [`BatchStream`] operators that pipeline batch-at-a-time.
//!
//! Pipeline operators (scan, filter, project, limit) transform each batch as
//! it flows through and hold only their current output; pipeline breakers
//! (hash aggregate, hash join build, sort, distinct) consume their input
//! incrementally — accumulating group states, a hash table over stored build
//! batches, or per-batch sorted runs — so no operator ever needs the whole
//! input concatenated. A satisfied `LIMIT` drops its input stream, which
//! drops the scan, which leaves the remaining data files unread.
//!
//! Every operator charges its live bytes to a shared
//! [`MemoryTracker`]; the tracker's high-water mark is the
//! pipeline's true peak working set, reported as
//! [`ExecReport::peak_bytes`] — the number a serverless runtime's vertical
//! memory allocator would have to grant (the resource the paper's §3.1
//! "reasonable scale" argument is about bounding).
//!
//! Output is byte-for-byte identical to the materialized executor
//! ([`crate::physical`]): operators preserve row order per batch, breakers
//! use the same insertion-order grouping / stable merge, and the columnar
//! crate normalizes validity bitmaps so representation cannot diverge.

use crate::ast::{Expr, JoinType};
use crate::engine::TableProvider;
use crate::error::{Result, SqlError};
use crate::logical::{AggExpr, LogicalPlan};
use crate::physical::{eval, execute_project, ExecOptions};
use lakehouse_columnar::kernels::hash::RowKey;
use lakehouse_columnar::kernels::{
    self, filter_batch, take_batch, to_selection, AggState, SortField,
};
use lakehouse_columnar::{
    BatchStream, BatchesStream, Column, ColumnBuilder, ColumnarError, DataType, Field,
    MemoryTracker, RecordBatch, Schema, Value,
};
use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::rc::Rc;

/// What one streaming execution did: peak working set, batches pulled out of
/// table scans, and rows emitted per operator (leaf to root).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// High-water mark of live bytes across all operators.
    pub peak_bytes: usize,
    /// Batches yielded by table scans (per-file under streaming; one per
    /// table when the source is materialized).
    pub batches_streamed: usize,
    /// (operator name, rows emitted), in construction order (leaves first).
    pub operator_rows: Vec<(String, usize)>,
    /// Whether scans streamed per-file (vs. a materialized one-shot source).
    pub streaming: bool,
    /// Wall-clock time of the execution, in **nanoseconds** (every report
    /// struct carries times in nanos; render with
    /// [`lakehouse_obs::fmt_duration`]).
    pub wall_nanos: u64,
    /// Simulated-clock time charged to the executing thread, in
    /// **nanoseconds** (0 when no sim source is installed).
    pub sim_nanos: u64,
}

/// Shared per-execution state: the memory gauge plus counters.
#[derive(Default)]
struct ExecStats {
    tracker: MemoryTracker,
    batches_streamed: Cell<usize>,
    operator_rows: RefCell<Vec<(String, usize)>>,
}

impl ExecStats {
    fn register(&self, name: &str) -> usize {
        let mut rows = self.operator_rows.borrow_mut();
        rows.push((name.to_string(), 0));
        rows.len() - 1
    }

    fn add_rows(&self, slot: usize, n: usize) {
        self.operator_rows.borrow_mut()[slot].1 += n;
    }
}

/// One operator's stake in the shared tracker: `hold(n)` swaps the
/// operator's previously-charged bytes for `n` (its new live set), and drop
/// releases whatever is still held, so the gauge never leaks across early
/// termination.
struct Gauge {
    stats: Rc<ExecStats>,
    held: usize,
}

impl Gauge {
    fn new(stats: &Rc<ExecStats>) -> Gauge {
        Gauge {
            stats: Rc::clone(stats),
            held: 0,
        }
    }

    fn hold(&mut self, bytes: usize) {
        self.stats.tracker.release(self.held);
        self.stats.tracker.charge(bytes);
        self.held = bytes;
    }
}

impl Drop for Gauge {
    fn drop(&mut self) {
        self.stats.tracker.release(self.held);
    }
}

type CResult<T> = lakehouse_columnar::Result<T>;

/// Carry a SQL-layer error through the columnar [`BatchStream`] interface.
fn ext(e: SqlError) -> ColumnarError {
    ColumnarError::External(e.to_string())
}

/// Recover at the pipeline root: external messages were SQL errors.
fn unext(e: ColumnarError) -> SqlError {
    match e {
        ColumnarError::External(msg) => SqlError::Execution(msg),
        other => SqlError::Columnar(other),
    }
}

fn value_bytes(v: &Value) -> usize {
    std::mem::size_of::<Value>()
        + match v {
            Value::Utf8(s) => s.len(),
            _ => 0,
        }
}

/// Execute a plan through the streaming operator tree. `stream_scans`
/// selects the source: pull batches per data file via
/// [`TableProvider::scan_stream`], or materialize each table up front
/// (identical machinery, honest baseline for the memory comparison).
pub fn execute_streaming(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    options: &ExecOptions,
    stream_scans: bool,
) -> Result<(RecordBatch, ExecReport)> {
    // Declared before the operator tree: the operators' spans (fields of the
    // stream, dropped at the end of the block below) close before this one.
    let span = lakehouse_obs::span("execute");
    let wall_start = std::time::Instant::now();
    let sim_start = lakehouse_obs::thread_sim_nanos();
    let stats = Rc::new(ExecStats::default());
    let result = {
        let ctx = lakehouse_obs::QueryCtx::current();
        let memory_budget = ctx.as_ref().and_then(|c| c.memory_budget_bytes());
        let mut root = build_stream(plan, provider, options, &stats, stream_scans, "0")?;
        let mut batches: Vec<RecordBatch> = Vec::new();
        while let Some(batch) = root.next_batch().map_err(unext)? {
            // Per-batch cooperative cancellation + memory-budget point: the
            // root drain is the one yield every streaming plan flows
            // through, so a killed query stops within one batch and an
            // over-budget working set trips the token here, where the
            // shared tracker sees every operator's live bytes.
            if let Some(ctx) = &ctx {
                if memory_budget.is_some_and(|b| stats.tracker.current() as u64 > b) {
                    ctx.kill(lakehouse_obs::KillReason::MemoryBudget);
                }
                if let Err(reason) = ctx.check() {
                    return Err(SqlError::Execution(format!("query killed ({reason})")));
                }
            }
            if batch.num_rows() > 0 {
                // Collected output is live until the query returns.
                stats.tracker.charge(batch.approx_bytes());
                batches.push(batch);
            }
        }
        // Late materialization: dictionary-encoded columns survive the whole
        // pipeline as codes; decode to plain strings only here, at the root.
        match batches.len() {
            0 => RecordBatch::new_empty(root.schema().clone()),
            1 => batches.pop().expect("one surviving batch"),
            _ => RecordBatch::concat(&batches)?,
        }
        .decode_dicts()
        // Dropping `root` here releases every operator's gauge.
    };
    let wall_nanos = wall_start.elapsed().as_nanos() as u64;
    let sim_nanos = lakehouse_obs::thread_sim_nanos().saturating_sub(sim_start);
    lakehouse_obs::ctx::charge(|l| l.add_kernel_nanos(wall_nanos, sim_nanos));
    let report = ExecReport {
        peak_bytes: stats.tracker.peak(),
        batches_streamed: stats.batches_streamed.get(),
        operator_rows: stats.operator_rows.borrow().clone(),
        streaming: stream_scans,
        wall_nanos,
        sim_nanos,
    };
    if span.is_recording() {
        span.attr("rows", result.num_rows() as u64);
        span.attr("peak_bytes", report.peak_bytes as u64);
        span.attr("batches_streamed", report.batches_streamed as u64);
    }
    let registry = lakehouse_obs::global();
    registry
        .gauge("sql.peak_bytes")
        .record_max(report.peak_bytes as u64);
    registry
        .counter("sql.batches_streamed")
        .add(report.batches_streamed as u64);
    Ok((result, report))
}

/// Open a node's span at build time, tagged with its plan path. The guard
/// lives as the operator's **last** field: it closes when the operator drops,
/// after the operator's input (declared earlier) has closed its own spans, so
/// an operator's span covers its whole lifetime in the pipeline and nests its
/// children correctly even under LIMIT early termination.
fn node_span(plan: &LogicalPlan, path: &str) -> lakehouse_obs::SpanGuard {
    let span = lakehouse_obs::span(plan.name());
    span.attr("path", path);
    span
}

/// Accumulate one emitted batch into a node's span (no-op when not tracing).
fn record_emit(span: &lakehouse_obs::SpanGuard, batch: &RecordBatch) {
    if span.is_recording() {
        span.add_u64("rows", batch.num_rows() as u64);
        span.add_u64("batches", 1);
        span.add_u64("bytes", batch.approx_bytes() as u64);
    }
}

/// Compile a logical plan node to a streaming operator.
fn build_stream(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    options: &ExecOptions,
    stats: &Rc<ExecStats>,
    stream_scans: bool,
    path: &str,
) -> Result<Box<dyn BatchStream>> {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filters,
            ..
        } => {
            let span = node_span(plan, path);
            span.attr("table", table.as_str());
            let inner: Box<dyn BatchStream> = if table == "__dual" {
                // SELECT-without-FROM: one dummy row.
                Box::new(BatchesStream::one(RecordBatch::try_new(
                    Schema::new(vec![Field::new("__dummy", DataType::Int64, true)]),
                    vec![Column::from_i64(vec![0])],
                )?))
            } else if stream_scans {
                provider.scan_stream(table, projection.as_deref(), filters, options.batch_rows)?
            } else {
                let batch = provider.scan(table, projection.as_deref(), filters)?;
                Box::new(BatchesStream::one(batch))
            };
            Ok(Box::new(ScanNode {
                inner,
                filters: filters.clone(),
                slot: stats.register(plan.name()),
                stats: Rc::clone(stats),
                gauge: Gauge::new(stats),
                span,
            }))
        }
        LogicalPlan::Filter { input, predicate } => {
            let span = node_span(plan, path);
            let input = build_stream(
                input,
                provider,
                options,
                stats,
                stream_scans,
                &child(path, 0),
            )?;
            Ok(Box::new(FilterNode {
                input,
                predicate: predicate.clone(),
                options: *options,
                slot: stats.register(plan.name()),
                stats: Rc::clone(stats),
                gauge: Gauge::new(stats),
                span,
            }))
        }
        LogicalPlan::Project { input, exprs } => {
            let span = node_span(plan, path);
            let schema = plan.schema()?;
            let input = build_stream(
                input,
                provider,
                options,
                stats,
                stream_scans,
                &child(path, 0),
            )?;
            Ok(Box::new(ProjectNode {
                input,
                exprs: exprs.clone(),
                schema,
                slot: stats.register(plan.name()),
                stats: Rc::clone(stats),
                gauge: Gauge::new(stats),
                span,
            }))
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            agg_exprs,
        } => {
            let span = node_span(plan, path);
            let input_schema = input.schema()?;
            let out_schema = plan.schema()?;
            let input = build_stream(
                input,
                provider,
                options,
                stats,
                stream_scans,
                &child(path, 0),
            )?;
            Ok(Box::new(AggNode {
                input: Some(input),
                input_schema,
                group_exprs: group_exprs.clone(),
                agg_exprs: agg_exprs.clone(),
                out_schema,
                done: false,
                slot: stats.register(plan.name()),
                stats: Rc::clone(stats),
                gauge: Gauge::new(stats),
                span,
            }))
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
        } => {
            let span = node_span(plan, path);
            let left = build_stream(
                left,
                provider,
                options,
                stats,
                stream_scans,
                &child(path, 0),
            )?;
            // The left subtree's guards are still open inside its nodes;
            // without re-parenting, the right subtree's spans would nest
            // under the left scan instead of under the join.
            let right = {
                let _under_join = lakehouse_obs::reparent_under(&span);
                build_stream(
                    right,
                    provider,
                    options,
                    stats,
                    stream_scans,
                    &child(path, 1),
                )?
            };
            // Output schema mirrors the materialized join: left fields as-is,
            // right fields nullable (LEFT JOIN may null them).
            let mut fields: Vec<Field> = left.schema().fields().to_vec();
            for f in right.schema().fields() {
                fields.push(Field::new(f.name(), f.data_type(), true));
            }
            Ok(Box::new(JoinNode {
                left: Some(left),
                right: Some(right),
                join_type: *join_type,
                on: on.clone(),
                schema: Schema::new(fields),
                build: None,
                slot: stats.register(plan.name()),
                stats: Rc::clone(stats),
                gauge: Gauge::new(stats),
                span,
            }))
        }
        LogicalPlan::Sort { input, keys } => {
            let span = node_span(plan, path);
            let input = build_stream(
                input,
                provider,
                options,
                stats,
                stream_scans,
                &child(path, 0),
            )?;
            let schema = input.schema().clone();
            Ok(Box::new(SortNode {
                input: Some(input),
                keys: keys.clone(),
                schema,
                done: false,
                slot: stats.register(plan.name()),
                stats: Rc::clone(stats),
                gauge: Gauge::new(stats),
                span,
            }))
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let span = node_span(plan, path);
            let input = build_stream(
                input,
                provider,
                options,
                stats,
                stream_scans,
                &child(path, 0),
            )?;
            let schema = input.schema().clone();
            Ok(Box::new(LimitNode {
                input: Some(input),
                schema,
                to_skip: *offset,
                remaining: *limit,
                slot: stats.register(plan.name()),
                stats: Rc::clone(stats),
                gauge: Gauge::new(stats),
                span,
            }))
        }
        LogicalPlan::Distinct { input } => {
            let span = node_span(plan, path);
            let input = build_stream(
                input,
                provider,
                options,
                stats,
                stream_scans,
                &child(path, 0),
            )?;
            Ok(Box::new(DistinctNode {
                input,
                seen: std::collections::HashSet::new(),
                state_bytes: 0,
                slot: stats.register(plan.name()),
                stats: Rc::clone(stats),
                gauge: Gauge::new(stats),
                span,
            }))
        }
        // Transparent: no operator runs, the input keeps the alias's path
        // (the materialized executor does the same).
        LogicalPlan::SubqueryAlias { input, .. } => {
            build_stream(input, provider, options, stats, stream_scans, path)
        }
    }
}

/// Path of child `i` of the node at `path`.
fn child(path: &str, i: usize) -> String {
    format!("{path}.{i}")
}

// ---- pipeline operators ---------------------------------------------------

/// Source node: pulls batches from the provider's stream and re-applies the
/// pushed-down filters exactly (providers may filter only approximately).
struct ScanNode {
    inner: Box<dyn BatchStream>,
    filters: Vec<Expr>,
    slot: usize,
    stats: Rc<ExecStats>,
    gauge: Gauge,
    span: lakehouse_obs::SpanGuard,
}

impl BatchStream for ScanNode {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next_batch(&mut self) -> CResult<Option<RecordBatch>> {
        loop {
            let Some(mut batch) = self.inner.next_batch()? else {
                self.gauge.hold(0);
                return Ok(None);
            };
            self.stats
                .batches_streamed
                .set(self.stats.batches_streamed.get() + 1);
            for f in &self.filters {
                if batch.num_rows() == 0 {
                    break;
                }
                let mask = eval(f, &batch).map_err(ext)?;
                batch = filter_batch(&batch, &to_selection(&mask)?)?;
            }
            if batch.num_rows() == 0 {
                continue;
            }
            self.stats.add_rows(self.slot, batch.num_rows());
            record_emit(&self.span, &batch);
            self.gauge.hold(batch.approx_bytes());
            return Ok(Some(batch));
        }
    }
}

struct FilterNode {
    input: Box<dyn BatchStream>,
    predicate: Expr,
    options: ExecOptions,
    slot: usize,
    stats: Rc<ExecStats>,
    gauge: Gauge,
    span: lakehouse_obs::SpanGuard,
}

impl BatchStream for FilterNode {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next_batch(&mut self) -> CResult<Option<RecordBatch>> {
        loop {
            let Some(batch) = self.input.next_batch()? else {
                self.gauge.hold(0);
                return Ok(None);
            };
            let out = if self.options.parallelism > 1
                && batch.num_rows() >= self.options.parallel_threshold_rows
            {
                crate::parallel::parallel_filter(&batch, &self.predicate, self.options.parallelism)
                    .map_err(ext)?
            } else {
                let mask = eval(&self.predicate, &batch).map_err(ext)?;
                filter_batch(&batch, &to_selection(&mask)?)?
            };
            if out.num_rows() == 0 {
                continue;
            }
            self.stats.add_rows(self.slot, out.num_rows());
            record_emit(&self.span, &out);
            self.gauge.hold(out.approx_bytes());
            return Ok(Some(out));
        }
    }
}

struct ProjectNode {
    input: Box<dyn BatchStream>,
    exprs: Vec<(Expr, String)>,
    schema: Schema,
    slot: usize,
    stats: Rc<ExecStats>,
    gauge: Gauge,
    span: lakehouse_obs::SpanGuard,
}

impl BatchStream for ProjectNode {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> CResult<Option<RecordBatch>> {
        let Some(batch) = self.input.next_batch()? else {
            self.gauge.hold(0);
            return Ok(None);
        };
        let out = execute_project(&batch, &self.exprs, self.schema.clone()).map_err(ext)?;
        self.stats.add_rows(self.slot, out.num_rows());
        record_emit(&self.span, &out);
        self.gauge.hold(out.approx_bytes());
        Ok(Some(out))
    }
}

/// LIMIT/OFFSET with early termination: once satisfied, the input stream is
/// dropped, which unwinds straight down to the scan — remaining data files
/// are never fetched.
struct LimitNode {
    input: Option<Box<dyn BatchStream>>,
    schema: Schema,
    to_skip: usize,
    remaining: Option<usize>,
    slot: usize,
    stats: Rc<ExecStats>,
    gauge: Gauge,
    span: lakehouse_obs::SpanGuard,
}

impl BatchStream for LimitNode {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> CResult<Option<RecordBatch>> {
        loop {
            if self.remaining == Some(0) {
                self.input = None;
            }
            let Some(input) = self.input.as_mut() else {
                self.gauge.hold(0);
                return Ok(None);
            };
            let Some(batch) = input.next_batch()? else {
                self.input = None;
                self.gauge.hold(0);
                return Ok(None);
            };
            let mut batch = batch;
            if self.to_skip > 0 {
                let skip = self.to_skip.min(batch.num_rows());
                self.to_skip -= skip;
                if skip == batch.num_rows() {
                    continue;
                }
                batch = batch.slice(skip, batch.num_rows() - skip)?;
            }
            if let Some(rem) = self.remaining {
                if batch.num_rows() > rem {
                    batch = batch.slice(0, rem)?;
                }
                self.remaining = Some(rem - batch.num_rows());
            }
            if batch.num_rows() == 0 {
                continue;
            }
            self.stats.add_rows(self.slot, batch.num_rows());
            record_emit(&self.span, &batch);
            self.gauge.hold(batch.approx_bytes());
            return Ok(Some(batch));
        }
    }
}

/// DISTINCT as a streaming dedup: the seen-set grows, but each batch is
/// emitted (minus already-seen rows) as soon as it arrives.
struct DistinctNode {
    input: Box<dyn BatchStream>,
    seen: std::collections::HashSet<RowKey>,
    state_bytes: usize,
    slot: usize,
    stats: Rc<ExecStats>,
    gauge: Gauge,
    span: lakehouse_obs::SpanGuard,
}

impl BatchStream for DistinctNode {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next_batch(&mut self) -> CResult<Option<RecordBatch>> {
        loop {
            let Some(batch) = self.input.next_batch()? else {
                self.gauge.hold(0);
                return Ok(None);
            };
            let all_cols: Vec<usize> = (0..batch.num_columns()).collect();
            let mut keep = Vec::new();
            for row in 0..batch.num_rows() {
                let key = RowKey::from_batch(&batch, &all_cols, row)?;
                if !self.seen.contains(&key) {
                    self.state_bytes += key.to_values().iter().map(value_bytes).sum::<usize>();
                    self.seen.insert(key);
                    keep.push(row);
                }
            }
            if keep.is_empty() {
                self.gauge.hold(self.state_bytes);
                continue;
            }
            let out = take_batch(&batch, &keep)?;
            self.stats.add_rows(self.slot, out.num_rows());
            record_emit(&self.span, &out);
            self.gauge.hold(self.state_bytes + out.approx_bytes());
            return Ok(Some(out));
        }
    }
}

// ---- pipeline breakers ----------------------------------------------------

/// Hash aggregate consuming its input batch-at-a-time: group states
/// accumulate incrementally (insertion order, matching the materialized
/// operator), and only the per-group state — not the input — is retained.
struct AggNode {
    input: Option<Box<dyn BatchStream>>,
    input_schema: Schema,
    group_exprs: Vec<(Expr, String)>,
    agg_exprs: Vec<(AggExpr, String)>,
    out_schema: Schema,
    done: bool,
    slot: usize,
    stats: Rc<ExecStats>,
    gauge: Gauge,
    span: lakehouse_obs::SpanGuard,
}

impl AggNode {
    fn new_states(&self) -> Vec<AggState> {
        self.agg_exprs
            .iter()
            .map(|(a, _)| AggState::new(a.agg))
            .collect()
    }
}

impl BatchStream for AggNode {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn next_batch(&mut self) -> CResult<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        // One `Grouper` lives across all input batches: group ids stay
        // stable (insertion order) while each batch is accumulated by the
        // typed grouped kernels instead of per-row boxed updates.
        let mut grouper = kernels::Grouper::new();
        let global = self.group_exprs.is_empty();
        let mut states_per_agg: Vec<Vec<AggState>> = if global {
            // Global aggregation: one group even over zero rows.
            self.new_states().into_iter().map(|s| vec![s]).collect()
        } else {
            self.agg_exprs.iter().map(|_| Vec::new()).collect()
        };
        let mut ids: Vec<u32> = Vec::new();
        let mut state_bytes = 0usize;
        let mut arg_types: Option<Vec<DataType>> = None;
        let mut input = self.input.take().expect("aggregate input not yet consumed");
        while let Some(batch) = input.next_batch()? {
            let group_cols = self
                .group_exprs
                .iter()
                .map(|(e, _)| eval(e, &batch))
                .collect::<Result<Vec<_>>>()
                .map_err(ext)?;
            let arg_cols = self
                .agg_exprs
                .iter()
                .map(|(a, _)| a.arg.as_ref().map(|e| eval(e, &batch)).transpose())
                .collect::<Result<Vec<_>>>()
                .map_err(ext)?;
            if arg_types.is_none() {
                arg_types = Some(
                    arg_cols
                        .iter()
                        .map(|c| c.as_ref().map_or(DataType::Int64, Column::data_type))
                        .collect(),
                );
            }
            if global {
                ids.clear();
                ids.resize(batch.num_rows(), 0);
            } else {
                let known = grouper.num_groups();
                grouper.group_ids(&group_cols, &mut ids)?;
                // Charge newly interned groups: key bytes + one state per
                // aggregate.
                for key in &grouper.keys()[known..] {
                    state_bytes += key.iter().map(value_bytes).sum::<usize>()
                        + self.agg_exprs.len() * std::mem::size_of::<AggState>();
                }
                for ((a, _), slots) in self.agg_exprs.iter().zip(&mut states_per_agg) {
                    slots.resize(grouper.num_groups(), AggState::new(a.agg));
                }
            }
            for (slots, arg_col) in states_per_agg.iter_mut().zip(&arg_cols) {
                kernels::update_grouped(slots, &ids, arg_col.as_ref())?;
            }
            self.gauge.hold(state_bytes);
        }
        drop(input);

        // Finish types: from the first batch's evaluated argument columns,
        // or (empty input) from the args evaluated over an empty batch of
        // the input schema — same result, since eval types are
        // schema-determined.
        let arg_types = match arg_types {
            Some(t) => t,
            None => {
                let empty = RecordBatch::new_empty(self.input_schema.clone());
                self.agg_exprs
                    .iter()
                    .map(|(a, _)| match &a.arg {
                        Some(e) => eval(e, &empty).map(|c| c.data_type()),
                        None => Ok(DataType::Int64),
                    })
                    .collect::<Result<Vec<_>>>()
                    .map_err(ext)?
            }
        };
        let num_groups = if global { 1 } else { grouper.num_groups() };
        let mut builders: Vec<ColumnBuilder> = self
            .out_schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::with_capacity(f.data_type(), num_groups))
            .collect();
        let keys = grouper.keys();
        for g in 0..num_groups {
            if let Some(key_values) = keys.get(g) {
                for (i, v) in key_values.iter().enumerate() {
                    builders[i].push_value(v)?;
                }
            }
            for (j, slots) in states_per_agg.iter().enumerate() {
                let v = slots[g].finish(arg_types[j])?;
                builders[self.group_exprs.len() + j].push_value(&v)?;
            }
        }
        let columns: Vec<Column> = builders.into_iter().map(ColumnBuilder::finish).collect();
        let out = RecordBatch::try_new(self.out_schema.clone(), columns)?;
        self.stats.add_rows(self.slot, out.num_rows());
        record_emit(&self.span, &out);
        self.gauge.hold(out.approx_bytes());
        Ok(Some(out))
    }
}

/// The join's build side: stored right-side batches plus a hash index of
/// key → (batch, row) locations.
struct BuildSide {
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    batches: Vec<RecordBatch>,
    table: HashMap<RowKey, Vec<(usize, usize)>>,
}

/// Hash join: builds the right side incrementally (batches stored as they
/// stream in, never concatenated), then probes one left batch at a time.
struct JoinNode {
    left: Option<Box<dyn BatchStream>>,
    right: Option<Box<dyn BatchStream>>,
    join_type: JoinType,
    on: Vec<(Expr, Expr)>,
    schema: Schema,
    build: Option<BuildSide>,
    slot: usize,
    stats: Rc<ExecStats>,
    gauge: Gauge,
    span: lakehouse_obs::SpanGuard,
}

impl JoinNode {
    fn build_right(&mut self) -> CResult<()> {
        if self.build.is_some() {
            return Ok(());
        }
        let mut right = self.right.take().expect("join build side not yet consumed");
        let left_schema = self
            .left
            .as_ref()
            .expect("join probe side present during build")
            .schema()
            .clone();
        if self.on.is_empty() {
            return Err(ext(SqlError::Execution(
                "join requires an ON clause".into(),
            )));
        }
        // Decide which side of each equality belongs to which input by
        // trying to resolve against the left schema (same rule as the
        // materialized join).
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        for (a, b) in &self.on {
            if expr_resolves(a, &left_schema) && expr_resolves(b, right.schema()) {
                left_keys.push(a.clone());
                right_keys.push(b.clone());
            } else if expr_resolves(b, &left_schema) && expr_resolves(a, right.schema()) {
                left_keys.push(b.clone());
                right_keys.push(a.clone());
            } else {
                return Err(ext(SqlError::Plan(format!(
                    "cannot resolve join condition {a} = {b} against the two inputs"
                ))));
            }
        }
        let mut build = BuildSide {
            left_keys,
            right_keys,
            batches: Vec::new(),
            table: HashMap::new(),
        };
        let mut bytes = 0usize;
        while let Some(batch) = right.next_batch()? {
            let rcols = build
                .right_keys
                .iter()
                .map(|e| eval(e, &batch))
                .collect::<Result<Vec<_>>>()
                .map_err(ext)?;
            let batch_idx = build.batches.len();
            for row in 0..batch.num_rows() {
                let key_values: Vec<Value> =
                    rcols.iter().map(|c| c.get(row)).collect::<CResult<_>>()?;
                let key = RowKey::from_values(&key_values);
                if key.has_null() {
                    continue; // SQL: null keys never join
                }
                build.table.entry(key).or_default().push((batch_idx, row));
            }
            bytes += batch.approx_bytes();
            self.gauge.hold(bytes);
            build.batches.push(batch);
        }
        self.build = Some(build);
        Ok(())
    }
}

impl BatchStream for JoinNode {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> CResult<Option<RecordBatch>> {
        self.build_right()?;
        let build = self.build.as_ref().expect("build side ready");
        loop {
            let Some(left) = self.left.as_mut() else {
                return Ok(None);
            };
            let Some(lbatch) = left.next_batch()? else {
                self.left = None;
                return Ok(None);
            };
            let lcols = build
                .left_keys
                .iter()
                .map(|e| eval(e, &lbatch))
                .collect::<Result<Vec<_>>>()
                .map_err(ext)?;
            let mut left_idx: Vec<usize> = Vec::new();
            let mut right_ref: Vec<Option<(usize, usize)>> = Vec::new();
            for row in 0..lbatch.num_rows() {
                let key_values: Vec<Value> =
                    lcols.iter().map(|c| c.get(row)).collect::<CResult<_>>()?;
                let key = RowKey::from_values(&key_values);
                let matches = if key.has_null() {
                    None
                } else {
                    build.table.get(&key)
                };
                match matches {
                    Some(locs) => {
                        for &loc in locs {
                            left_idx.push(row);
                            right_ref.push(Some(loc));
                        }
                    }
                    None => {
                        if self.join_type == JoinType::Left {
                            left_idx.push(row);
                            right_ref.push(None);
                        }
                    }
                }
            }
            if left_idx.is_empty() {
                continue;
            }
            let mut columns: Vec<Column> = lbatch
                .columns()
                .iter()
                .map(|c| kernels::take_column(c, &left_idx))
                .collect::<CResult<_>>()?;
            let n_left = lbatch.num_columns();
            for ci in 0..build
                .batches
                .first()
                .map_or(self.schema.len() - n_left, |b| b.num_columns())
            {
                let field = self.schema.field(n_left + ci);
                let mut b = ColumnBuilder::with_capacity(field.data_type(), right_ref.len());
                for r in &right_ref {
                    match r {
                        Some((bi, ri)) => b.push_value(&build.batches[*bi].column(ci).get(*ri)?)?,
                        None => b.push_null(),
                    }
                }
                columns.push(b.finish());
            }
            let out = RecordBatch::try_new(self.schema.clone(), columns)?;
            self.stats.add_rows(self.slot, out.num_rows());
            record_emit(&self.span, &out);
            return Ok(Some(out));
        }
    }
}

/// One sorted run: a batch sorted by the keys, plus the (sorted) key values
/// materialized for the merge comparator.
struct SortedRun {
    batch: RecordBatch,
    key_values: Vec<Vec<Value>>,
}

/// Sort as accumulated sorted runs + a stable k-way merge: each input batch
/// is sorted on arrival and stored, so peak memory is the input plus one
/// output — never input-concat plus output.
struct SortNode {
    input: Option<Box<dyn BatchStream>>,
    keys: Vec<(Expr, bool)>,
    schema: Schema,
    done: bool,
    slot: usize,
    stats: Rc<ExecStats>,
    gauge: Gauge,
    span: lakehouse_obs::SpanGuard,
}

impl BatchStream for SortNode {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> CResult<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut input = self.input.take().expect("sort input not yet consumed");
        let mut runs: Vec<SortedRun> = Vec::new();
        let mut acc_bytes = 0usize;
        while let Some(batch) = input.next_batch()? {
            if batch.num_rows() == 0 {
                continue;
            }
            let sort_fields = self
                .keys
                .iter()
                .map(|(e, desc)| {
                    let col = eval(e, &batch)?;
                    Ok(if *desc {
                        SortField::desc(col)
                    } else {
                        SortField::asc(col)
                    })
                })
                .collect::<Result<Vec<_>>>()
                .map_err(ext)?;
            let indices = kernels::sort_indices(&sort_fields)?;
            let sorted = take_batch(&batch, &indices)?;
            let key_values: Vec<Vec<Value>> = sort_fields
                .iter()
                .map(|sf| {
                    kernels::take_column(&sf.column, &indices).map(|c| c.iter_values().collect())
                })
                .collect::<CResult<_>>()?;
            acc_bytes += sorted.approx_bytes();
            self.gauge.hold(acc_bytes);
            runs.push(SortedRun {
                batch: sorted,
                key_values,
            });
        }
        drop(input);

        // Stable k-way merge: on key ties the earlier run (earlier input
        // batch) wins, and within a run input order is already preserved —
        // exactly the materialized stable sort's order.
        let descs: Vec<bool> = self.keys.iter().map(|(_, d)| *d).collect();
        let total: usize = runs.iter().map(|r| r.batch.num_rows()).sum();
        let mut heads = vec![0usize; runs.len()];
        let mut order: Vec<(usize, usize)> = Vec::with_capacity(total);
        loop {
            let mut best: Option<usize> = None;
            for r in 0..runs.len() {
                if heads[r] >= runs[r].batch.num_rows() {
                    continue;
                }
                best = match best {
                    None => Some(r),
                    Some(b) => {
                        if cmp_key_rows(
                            &runs[r].key_values,
                            heads[r],
                            &runs[b].key_values,
                            heads[b],
                            &descs,
                        ) == Ordering::Less
                        {
                            Some(r)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            let Some(r) = best else { break };
            order.push((r, heads[r]));
            heads[r] += 1;
        }
        // Apply the permutation with `take_batch` over the concatenated runs
        // (not a value-at-a-time rebuild) so the output is representationally
        // identical to the materialized sort, then release the runs.
        if runs.is_empty() {
            let out = RecordBatch::new_empty(self.schema.clone());
            self.gauge.hold(0);
            return Ok(Some(out));
        }
        let mut offsets = Vec::with_capacity(runs.len());
        let mut next = 0usize;
        for run in &runs {
            offsets.push(next);
            next += run.batch.num_rows();
        }
        let indices: Vec<usize> = order.iter().map(|&(r, i)| offsets[r] + i).collect();
        let combined = if runs.len() == 1 {
            runs.pop().expect("one run").batch
        } else {
            let batches: Vec<RecordBatch> = runs.into_iter().map(|r| r.batch).collect();
            RecordBatch::concat(&batches)?
        };
        self.gauge.hold(combined.approx_bytes());
        let out = take_batch(&combined, &indices)?;
        self.stats.add_rows(self.slot, out.num_rows());
        record_emit(&self.span, &out);
        self.gauge.hold(out.approx_bytes());
        Ok(Some(out))
    }
}

/// The sort comparator over materialized key values, replicating
/// [`kernels::sort_indices`]: ascending keys put nulls first, descending
/// keys put nulls last.
fn cmp_key_rows(
    a: &[Vec<Value>],
    arow: usize,
    b: &[Vec<Value>],
    brow: usize,
    descs: &[bool],
) -> Ordering {
    for (k, desc) in descs.iter().enumerate() {
        let (va, vb) = (&a[k][arow], &b[k][brow]);
        let nulls_first = !desc;
        let ord = match (va.is_null(), vb.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => {
                let o = va.total_cmp(vb);
                if *desc {
                    o.reverse()
                } else {
                    o
                }
            }
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn expr_resolves(expr: &Expr, schema: &Schema) -> bool {
    let mut ok = true;
    expr.walk(&mut |e| {
        if let Expr::Column { qualifier, name } = e {
            if crate::logical::resolve_column(schema, qualifier.as_deref(), name).is_err() {
                ok = false;
            }
        }
    });
    ok
}
