//! SQL tokenizer: text → token stream with byte positions for diagnostics.

use crate::error::{Result, SqlError};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognized by the parser, so
    /// `select` the identifier and `SELECT` the keyword share this variant).
    Word(String),
    /// Quoted identifier: `"column name"`.
    QuotedIdent(String),
    /// Numeric literal (lexed as text; the parser decides int vs float).
    Number(String),
    /// Single-quoted string literal with '' escaping.
    String(String),
    Comma,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Dot,
    Semicolon,
}

impl Token {
    /// The uppercase keyword text if this is a word token.
    pub fn keyword(&self) -> Option<String> {
        match self {
            Token::Word(w) => Some(w.to_ascii_uppercase()),
            _ => None,
        }
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::LtEq);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_string(sql, i)?;
                tokens.push(Token::String(s));
                i = next;
            }
            '"' => {
                let end = sql[i + 1..].find('"').ok_or_else(|| SqlError::Tokenize {
                    message: "unterminated quoted identifier".into(),
                    position: i,
                })?;
                tokens.push(Token::QuotedIdent(sql[i + 1..i + 1 + end].to_string()));
                i += end + 2;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    // Stop a trailing dot that begins a qualified name like 1.x
                    if bytes[i] == b'.'
                        && bytes
                            .get(i + 1)
                            .is_some_and(|b| (*b as char).is_ascii_alphabetic())
                    {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token::Number(sql[start..i].to_string()));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Word(sql[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Tokenize {
                    message: format!("unexpected character {other:?}"),
                    position: i,
                })
            }
        }
    }
    Ok(tokens)
}

fn lex_string(sql: &str, start: usize) -> Result<(String, usize)> {
    let bytes = sql.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Copy the full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&sql[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(SqlError::Tokenize {
        message: "unterminated string literal".into(),
        position: start,
    })
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let toks = tokenize("SELECT a, b FROM t WHERE x >= 10").unwrap();
        assert_eq!(toks[0], Token::Word("SELECT".into()));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Number("10".into())));
    }

    #[test]
    fn operators() {
        let toks = tokenize("a <> b != c <= d >= e < f > g = h").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t, Token::Word(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::NotEq,
                &Token::NotEq,
                &Token::LtEq,
                &Token::GtEq,
                &Token::Lt,
                &Token::Gt,
                &Token::Eq
            ]
        );
    }

    #[test]
    fn string_with_escape() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::String("it's".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn numbers_int_float_sci() {
        let toks = tokenize("1 2.5 3e10 4.2E-3").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number("1".into()),
                Token::Number("2.5".into()),
                Token::Number("3e10".into()),
                Token::Number("4.2E-3".into()),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn qualified_names() {
        let toks = tokenize("t.col").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("t".into()),
                Token::Dot,
                Token::Word("col".into())
            ]
        );
    }

    #[test]
    fn quoted_identifier() {
        let toks = tokenize("\"weird name\"").unwrap();
        assert_eq!(toks, vec![Token::QuotedIdent("weird name".into())]);
    }

    #[test]
    fn unexpected_char_errors() {
        let err = tokenize("SELECT @").unwrap_err();
        assert!(matches!(err, SqlError::Tokenize { position: 7, .. }));
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("'héllo — wörld'").unwrap();
        assert_eq!(toks, vec![Token::String("héllo — wörld".into())]);
    }
}
