//! Recursive-descent parser: tokens → [`SelectStmt`].

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::tokenizer::{tokenize, Token};
use lakehouse_columnar::kernels::CmpOp;
use lakehouse_columnar::{DataType, Value};

/// Parse one SELECT statement (a trailing semicolon is allowed).
pub fn parse_select(sql: &str) -> Result<SelectStmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_select()?;
    p.consume_if(&Token::Semicolon);
    if !p.at_end() {
        return Err(SqlError::Parse(format!(
            "unexpected trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

/// Table names referenced by a query (FROM + JOINs + subqueries), in
/// first-appearance order. This is what the code-intelligence layer uses to
/// build the pipeline DAG from "implicit references" (paper §4.4.1).
pub fn referenced_tables(sql: &str) -> Result<Vec<String>> {
    let stmt = parse_select(sql)?;
    let mut out = Vec::new();
    collect_tables(&stmt, &mut out);
    Ok(out)
}

fn collect_tables(stmt: &SelectStmt, out: &mut Vec<String>) {
    let mut visit = |rel: &Relation| match rel {
        Relation::Table { name, .. } => {
            if !out.contains(name) {
                out.push(name.clone());
            }
        }
        Relation::Subquery { query, .. } => collect_tables(query, out),
    };
    if let Some(from) = &stmt.from {
        visit(from);
    }
    for j in &stmt.joins {
        visit(&j.relation);
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn peek_keyword(&self) -> Option<String> {
        self.peek().and_then(Token::keyword)
    }

    /// Consume a specific keyword, or error.
    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.consume_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    /// Consume a keyword if present; returns whether it was.
    fn consume_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword().as_deref() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn consume_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.consume_if(t) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn parse_identifier(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Word(w)) => Ok(w),
            Some(Token::QuotedIdent(w)) => Ok(w),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let distinct = self.consume_keyword("DISTINCT");
        let projection = self.parse_projection()?;
        let mut from = None;
        let mut joins = Vec::new();
        if self.consume_keyword("FROM") {
            from = Some(self.parse_relation()?);
            loop {
                let join_type = if self.consume_keyword("JOIN") {
                    JoinType::Inner
                } else if self.peek_keyword().as_deref() == Some("INNER") {
                    self.pos += 1;
                    self.expect_keyword("JOIN")?;
                    JoinType::Inner
                } else if self.peek_keyword().as_deref() == Some("LEFT") {
                    self.pos += 1;
                    self.consume_keyword("OUTER");
                    self.expect_keyword("JOIN")?;
                    JoinType::Left
                } else {
                    break;
                };
                let relation = self.parse_relation()?;
                self.expect_keyword("ON")?;
                let on = self.parse_join_on()?;
                joins.push(Join {
                    join_type,
                    relation,
                    on,
                });
            }
        }
        let where_clause = if self.consume_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.consume_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.consume_keyword("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.consume_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let descending = if self.consume_keyword("DESC") {
                    true
                } else {
                    self.consume_keyword("ASC");
                    false
                };
                order_by.push(OrderByExpr { expr, descending });
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.consume_keyword("LIMIT") {
            limit = Some(self.parse_usize()?);
        }
        if self.consume_keyword("OFFSET") {
            offset = Some(self.parse_usize()?);
        }
        Ok(SelectStmt {
            distinct,
            projection,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_usize(&mut self) -> Result<usize> {
        match self.advance() {
            Some(Token::Number(n)) => n
                .parse::<usize>()
                .map_err(|_| SqlError::Parse(format!("expected integer, found {n}"))),
            other => Err(SqlError::Parse(format!(
                "expected integer, found {other:?}"
            ))),
        }
    }

    fn parse_projection(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.consume_if(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.consume_keyword("AS") {
                    Some(self.parse_identifier()?)
                } else {
                    // Implicit alias: bare identifier that isn't a clause
                    // keyword.
                    match self.peek() {
                        Some(Token::Word(w)) if !is_clause_keyword(w) => {
                            let w = w.clone();
                            self.pos += 1;
                            Some(w)
                        }
                        _ => None,
                    }
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_relation(&mut self) -> Result<Relation> {
        if self.consume_if(&Token::LParen) {
            let query = self.parse_select()?;
            self.expect(&Token::RParen)?;
            self.consume_keyword("AS");
            let alias = self.parse_identifier()?;
            return Ok(Relation::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let mut name = self.parse_identifier()?;
        // Dotted table names (`system.queries`) keep the dot in the name —
        // providers resolve the full string, there is no catalog/schema
        // hierarchy here.
        while self.consume_if(&Token::Dot) {
            name.push('.');
            name.push_str(&self.parse_identifier()?);
        }
        let alias = match self.peek() {
            Some(Token::Word(w)) if !is_clause_keyword(w) => {
                let w = w.clone();
                self.pos += 1;
                Some(w)
            }
            _ => None,
        };
        Ok(Relation::Table { name, alias })
    }

    /// Parse `a.x = b.y [AND c.z = d.w ...]` from an ON clause.
    fn parse_join_on(&mut self) -> Result<Vec<(Expr, Expr)>> {
        let mut pairs = Vec::new();
        loop {
            let left = self.parse_additive()?;
            self.expect(&Token::Eq)?;
            let right = self.parse_additive()?;
            pairs.push((left, right));
            if !self.consume_keyword("AND") {
                break;
            }
        }
        Ok(pairs)
    }

    // ---- expressions (precedence climbing) --------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.consume_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::Logical {
                op: LogicalOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.consume_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::Logical {
                op: LogicalOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.consume_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // Postfix predicates: IS [NOT] NULL, [NOT] BETWEEN/IN/LIKE.
        if self.consume_keyword("IS") {
            let negated = self.consume_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.peek_keyword().as_deref() == Some("NOT")
            && matches!(
                self.tokens
                    .get(self.pos + 1)
                    .and_then(Token::keyword)
                    .as_deref(),
                Some("BETWEEN") | Some("IN") | Some("LIKE")
            ) {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.consume_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.consume_keyword("IN") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.consume_keyword("LIKE") {
            let pattern = match self.advance() {
                Some(Token::String(s)) => s,
                other => {
                    return Err(SqlError::Parse(format!(
                        "LIKE requires a string literal, found {other:?}"
                    )))
                }
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if negated {
            return Err(SqlError::Parse("dangling NOT before non-predicate".into()));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOp::Eq),
            Some(Token::NotEq) => Some(CmpOp::NotEq),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::LtEq) => Some(CmpOp::LtEq),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::GtEq) => Some(CmpOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::Compare {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                Some(Token::Percent) => ArithOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.consume_if(&Token::Minus) {
            return Ok(Expr::Negate(Box::new(self.parse_unary()?)));
        }
        if self.consume_if(&Token::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.advance() {
            Some(Token::Number(n)) => {
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    n.parse::<f64>()
                        .map(|v| Expr::Literal(Value::Float64(v)))
                        .map_err(|_| SqlError::Parse(format!("bad float literal {n}")))
                } else {
                    n.parse::<i64>()
                        .map(|v| Expr::Literal(Value::Int64(v)))
                        .map_err(|_| SqlError::Parse(format!("bad integer literal {n}")))
                }
            }
            Some(Token::String(s)) => Ok(Expr::Literal(Value::Utf8(s))),
            Some(Token::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Word(w)) => self.parse_word(w),
            Some(Token::QuotedIdent(w)) => self.finish_column(w),
            other => Err(SqlError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    fn parse_word(&mut self, word: String) -> Result<Expr> {
        let upper = word.to_ascii_uppercase();
        match upper.as_str() {
            "TRUE" => return Ok(Expr::Literal(Value::Bool(true))),
            "FALSE" => return Ok(Expr::Literal(Value::Bool(false))),
            "NULL" => return Ok(Expr::Literal(Value::Null)),
            "CAST" => {
                self.expect(&Token::LParen)?;
                let expr = self.parse_expr()?;
                self.expect_keyword("AS")?;
                let type_name = self.parse_identifier()?;
                let to = DataType::parse(&type_name)
                    .ok_or_else(|| SqlError::Parse(format!("unknown type {type_name}")))?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::Cast {
                    expr: Box::new(expr),
                    to,
                });
            }
            "CASE" => {
                let mut branches = Vec::new();
                while self.consume_keyword("WHEN") {
                    let cond = self.parse_expr()?;
                    self.expect_keyword("THEN")?;
                    let val = self.parse_expr()?;
                    branches.push((cond, val));
                }
                let else_expr = if self.consume_keyword("ELSE") {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                self.expect_keyword("END")?;
                if branches.is_empty() {
                    return Err(SqlError::Parse("CASE requires at least one WHEN".into()));
                }
                return Ok(Expr::Case {
                    branches,
                    else_expr,
                });
            }
            "DATE" => {
                // DATE 'YYYY-MM-DD' literal.
                if let Some(Token::String(s)) = self.peek() {
                    let s = s.clone();
                    self.pos += 1;
                    let days = parse_date_literal(&s)
                        .ok_or_else(|| SqlError::Parse(format!("bad date literal '{s}'")))?;
                    return Ok(Expr::Literal(Value::Date(days)));
                }
            }
            _ => {}
        }
        // Function call?
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            if upper == "COUNT" && self.consume_if(&Token::Star) {
                self.expect(&Token::RParen)?;
                return Ok(Expr::CountStar);
            }
            if upper == "COUNT" && self.consume_keyword("DISTINCT") {
                let arg = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::Function {
                    name: "COUNT_DISTINCT".into(),
                    args: vec![arg],
                });
            }
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function { name: upper, args });
        }
        self.finish_column(word)
    }

    /// `word` might be a qualifier followed by `.column`.
    fn finish_column(&mut self, word: String) -> Result<Expr> {
        if self.consume_if(&Token::Dot) {
            let name = self.parse_identifier()?;
            Ok(Expr::Column {
                qualifier: Some(word),
                name,
            })
        } else {
            Ok(Expr::Column {
                qualifier: None,
                name: word,
            })
        }
    }
}

fn is_clause_keyword(word: &str) -> bool {
    matches!(
        word.to_ascii_uppercase().as_str(),
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "OFFSET"
            | "JOIN"
            | "INNER"
            | "LEFT"
            | "OUTER"
            | "ON"
            | "AND"
            | "OR"
            | "AS"
            | "ASC"
            | "DESC"
            | "UNION"
            | "SELECT"
    )
}

/// Parse `YYYY-MM-DD` into days since the Unix epoch.
pub fn parse_date_literal(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    // days_from_civil (Howard Hinnant).
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = ((m + 9) % 12) as u64;
    let doy = (153 * mp + 2) / 5 + d as u64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Some((era * 146_097 + doe as i64 - 719_468) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let s = parse_select("SELECT a, b FROM t").unwrap();
        assert_eq!(s.projection.len(), 2);
        assert!(matches!(s.from, Some(Relation::Table { ref name, .. }) if name == "t"));
    }

    #[test]
    fn select_star_where() {
        let s = parse_select("SELECT * FROM trips WHERE fare > 10.5").unwrap();
        assert_eq!(s.projection, vec![SelectItem::Wildcard]);
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn aliases_explicit_and_implicit() {
        let s = parse_select("SELECT passenger_count as count, x y FROM t").unwrap();
        match &s.projection[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("count")),
            _ => panic!(),
        }
        match &s.projection[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("y")),
            _ => panic!(),
        }
    }

    #[test]
    fn group_by_having_order_limit() {
        let s = parse_select(
            "SELECT zone, COUNT(*) AS n FROM t GROUP BY zone HAVING COUNT(*) > 5 \
             ORDER BY n DESC, zone LIMIT 10 OFFSET 5",
        )
        .unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].descending);
        assert!(!s.order_by[1].descending);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(5));
    }

    #[test]
    fn joins() {
        let s = parse_select(
            "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.k = c.k AND b.j = c.j",
        )
        .unwrap();
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.joins[0].join_type, JoinType::Inner);
        assert_eq!(s.joins[1].join_type, JoinType::Left);
        assert_eq!(s.joins[1].on.len(), 2);
    }

    #[test]
    fn subquery_in_from() {
        let s = parse_select("SELECT n FROM (SELECT COUNT(*) AS n FROM t) sub").unwrap();
        assert!(matches!(s.from, Some(Relation::Subquery { ref alias, .. }) if alias == "sub"));
    }

    #[test]
    fn expression_precedence() {
        let s = parse_select("SELECT 1 + 2 * 3 FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &s.projection[0] else {
            panic!()
        };
        assert_eq!(expr.to_string(), "(1 + (2 * 3))");
    }

    #[test]
    fn and_or_precedence() {
        let s = parse_select("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let w = s.where_clause.unwrap();
        assert_eq!(w.to_string(), "((a = 1) OR ((b = 2) AND (c = 3)))");
    }

    #[test]
    fn between_in_like_isnull() {
        let s = parse_select(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2) AND c LIKE 'x%' \
             AND d IS NOT NULL AND e NOT IN (3)",
        )
        .unwrap();
        let text = s.where_clause.unwrap().to_string();
        assert!(text.contains("BETWEEN"));
        assert!(text.contains("IN (1, 2)"));
        assert!(text.contains("LIKE 'x%'"));
        assert!(text.contains("IS NOT NULL"));
        assert!(text.contains("NOT IN (3)"));
    }

    #[test]
    fn cast_and_case() {
        let s = parse_select(
            "SELECT CAST(x AS DOUBLE), CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END FROM t",
        )
        .unwrap();
        assert_eq!(s.projection.len(), 2);
    }

    #[test]
    fn date_literal() {
        let s = parse_select("SELECT * FROM t WHERE pickup_at >= DATE '2019-04-01'").unwrap();
        let w = s.where_clause.unwrap();
        assert!(w.to_string().contains("date:17987"));
    }

    #[test]
    fn parse_date_literal_values() {
        assert_eq!(parse_date_literal("1970-01-01"), Some(0));
        assert_eq!(parse_date_literal("2019-04-01"), Some(17_987));
        assert_eq!(parse_date_literal("1969-12-31"), Some(-1));
        assert_eq!(parse_date_literal("not-a-date"), None);
        assert_eq!(parse_date_literal("2020-13-01"), None);
    }

    #[test]
    fn count_distinct_parses() {
        let s = parse_select("SELECT COUNT(DISTINCT zone) AS z FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &s.projection[0] else {
            panic!()
        };
        assert_eq!(
            *expr,
            Expr::Function {
                name: "COUNT_DISTINCT".into(),
                args: vec![Expr::col("zone")]
            }
        );
    }

    #[test]
    fn count_star_and_functions() {
        let s = parse_select("SELECT COUNT(*), SUM(fare), UPPER(zone) FROM t").unwrap();
        assert_eq!(s.projection.len(), 3);
        let SelectItem::Expr { expr, .. } = &s.projection[0] else {
            panic!()
        };
        assert_eq!(*expr, Expr::CountStar);
    }

    #[test]
    fn referenced_tables_finds_all() {
        let tables = referenced_tables(
            "SELECT * FROM trips t JOIN zones z ON t.zone_id = z.id \
             WHERE t.fare > (1)",
        )
        .unwrap();
        assert_eq!(tables, vec!["trips", "zones"]);
        let nested = referenced_tables(
            "SELECT * FROM (SELECT * FROM raw_events) e JOIN dims ON e.k = dims.k",
        )
        .unwrap();
        assert_eq!(nested, vec!["raw_events", "dims"]);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_select("SELECT 1 FROM t extra stuff , ,").is_err());
        assert!(parse_select("SELECT 1 FROM t;").is_ok());
    }

    #[test]
    fn errors_are_parse_errors() {
        assert!(matches!(
            parse_select("FROM t SELECT x"),
            Err(SqlError::Parse(_))
        ));
        assert!(parse_select("SELECT").is_err());
        assert!(parse_select("SELECT * FROM").is_err());
    }

    #[test]
    fn negative_numbers_and_unary() {
        let s = parse_select("SELECT -x, -(1 + 2), +5 FROM t").unwrap();
        assert_eq!(s.projection.len(), 3);
    }

    #[test]
    fn distinct() {
        assert!(
            parse_select("SELECT DISTINCT zone FROM t")
                .unwrap()
                .distinct
        );
        assert!(!parse_select("SELECT zone FROM t").unwrap().distinct);
    }

    #[test]
    fn qualified_wildcard_not_supported_but_qualified_cols_are() {
        let s = parse_select("SELECT t.a, u.b FROM t JOIN u ON t.id = u.id").unwrap();
        let SelectItem::Expr { expr, .. } = &s.projection[0] else {
            panic!()
        };
        assert_eq!(
            *expr,
            Expr::Column {
                qualifier: Some("t".into()),
                name: "a".into()
            }
        );
    }
}
