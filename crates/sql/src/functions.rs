//! Scalar function registry: names, return types, and implementations.

use crate::ast::Expr;
use crate::error::{Result, SqlError};
use lakehouse_columnar::{DataType, Schema, Value};

/// Whether `name` is a known scalar function.
pub fn is_scalar_function(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "UPPER" | "LOWER" | "LENGTH" | "ABS" | "ROUND" | "COALESCE" | "SUBSTR" | "SUBSTRING"
    )
}

/// Return type of a scalar function.
pub fn scalar_return_type(name: &str, args: &[Expr], schema: &Schema) -> Result<DataType> {
    let upper = name.to_ascii_uppercase();
    Ok(match upper.as_str() {
        "UPPER" | "LOWER" | "SUBSTR" | "SUBSTRING" => DataType::Utf8,
        "LENGTH" => DataType::Int64,
        "ABS" | "ROUND" => {
            let t = args
                .first()
                .map(|a| crate::logical::infer_type(a, schema))
                .transpose()?
                .unwrap_or(DataType::Float64);
            if upper == "ROUND" {
                DataType::Float64
            } else {
                t
            }
        }
        "COALESCE" => args
            .first()
            .map(|a| crate::logical::infer_type(a, schema))
            .transpose()?
            .unwrap_or(DataType::Int64),
        other => return Err(SqlError::Plan(format!("unknown function: {other}"))),
    })
}

/// Evaluate a scalar function row-wise on already-evaluated argument values.
pub fn eval_scalar_function(name: &str, args: &[Value]) -> Result<Value> {
    let upper = name.to_ascii_uppercase();
    let arity_err =
        |n: usize| SqlError::Execution(format!("{upper} expects at least {n} argument(s)"));
    Ok(match upper.as_str() {
        "UPPER" => match args.first().ok_or_else(|| arity_err(1))? {
            Value::Null => Value::Null,
            Value::Utf8(s) => Value::Utf8(s.to_uppercase()),
            other => Value::Utf8(other.to_string().to_uppercase()),
        },
        "LOWER" => match args.first().ok_or_else(|| arity_err(1))? {
            Value::Null => Value::Null,
            Value::Utf8(s) => Value::Utf8(s.to_lowercase()),
            other => Value::Utf8(other.to_string().to_lowercase()),
        },
        "LENGTH" => match args.first().ok_or_else(|| arity_err(1))? {
            Value::Null => Value::Null,
            Value::Utf8(s) => Value::Int64(s.chars().count() as i64),
            other => Value::Int64(other.to_string().chars().count() as i64),
        },
        "ABS" => match args.first().ok_or_else(|| arity_err(1))? {
            Value::Null => Value::Null,
            Value::Int64(i) => Value::Int64(
                i.checked_abs()
                    .ok_or_else(|| SqlError::Execution("ABS overflow".into()))?,
            ),
            Value::Float64(f) => Value::Float64(f.abs()),
            other => return Err(SqlError::Execution(format!("ABS on non-numeric {other:?}"))),
        },
        "ROUND" => {
            let v = args.first().ok_or_else(|| arity_err(1))?;
            let digits = args.get(1).and_then(Value::as_i64).unwrap_or(0);
            match v {
                Value::Null => Value::Null,
                v => {
                    let f = v
                        .as_f64()
                        .ok_or_else(|| SqlError::Execution("ROUND on non-numeric".into()))?;
                    let factor = 10f64.powi(digits as i32);
                    Value::Float64((f * factor).round() / factor)
                }
            }
        }
        "COALESCE" => args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null),
        "SUBSTR" | "SUBSTRING" => {
            let s = match args.first().ok_or_else(|| arity_err(2))? {
                Value::Null => return Ok(Value::Null),
                Value::Utf8(s) => s.clone(),
                other => other.to_string(),
            };
            // SQL 1-based start.
            let start = args
                .get(1)
                .and_then(Value::as_i64)
                .ok_or_else(|| arity_err(2))?
                .max(1) as usize
                - 1;
            let len = args.get(2).and_then(Value::as_i64);
            let chars: Vec<char> = s.chars().collect();
            let end = match len {
                Some(l) => (start + l.max(0) as usize).min(chars.len()),
                None => chars.len(),
            };
            if start >= chars.len() {
                Value::Utf8(String::new())
            } else {
                Value::Utf8(chars[start..end].iter().collect())
            }
        }
        other => return Err(SqlError::Execution(format!("unknown function: {other}"))),
    })
}

/// SQL LIKE pattern matching with `%` (any run) and `_` (single char).
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn go(t: &[char], p: &[char]) -> bool {
        match (t.first(), p.first()) {
            (_, None) => t.is_empty(),
            (_, Some('%')) => {
                // Match zero or more characters.
                if go(t, &p[1..]) {
                    return true;
                }
                !t.is_empty() && go(&t[1..], p)
            }
            (None, Some(_)) => false,
            (Some(_), Some('_')) => go(&t[1..], &p[1..]),
            (Some(tc), Some(pc)) => tc == pc && go(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    go(&t, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_functions() {
        assert_eq!(
            eval_scalar_function("UPPER", &[Value::Utf8("abc".into())]).unwrap(),
            Value::Utf8("ABC".into())
        );
        assert_eq!(
            eval_scalar_function("lower", &[Value::Utf8("ABC".into())]).unwrap(),
            Value::Utf8("abc".into())
        );
        assert_eq!(
            eval_scalar_function("LENGTH", &[Value::Utf8("héllo".into())]).unwrap(),
            Value::Int64(5)
        );
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(
            eval_scalar_function("ABS", &[Value::Int64(-5)]).unwrap(),
            Value::Int64(5)
        );
        assert_eq!(
            eval_scalar_function("ROUND", &[Value::Float64(2.567), Value::Int64(1)]).unwrap(),
            Value::Float64(2.6)
        );
        assert_eq!(
            eval_scalar_function("ROUND", &[Value::Float64(2.5)]).unwrap(),
            Value::Float64(3.0)
        );
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        assert_eq!(
            eval_scalar_function(
                "COALESCE",
                &[Value::Null, Value::Null, Value::Int64(7), Value::Int64(9)]
            )
            .unwrap(),
            Value::Int64(7)
        );
        assert_eq!(
            eval_scalar_function("COALESCE", &[Value::Null]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn substr_one_based() {
        assert_eq!(
            eval_scalar_function(
                "SUBSTR",
                &[
                    Value::Utf8("hello".into()),
                    Value::Int64(2),
                    Value::Int64(3)
                ]
            )
            .unwrap(),
            Value::Utf8("ell".into())
        );
        assert_eq!(
            eval_scalar_function("SUBSTR", &[Value::Utf8("hello".into()), Value::Int64(99)])
                .unwrap(),
            Value::Utf8("".into())
        );
    }

    #[test]
    fn nulls_propagate() {
        assert_eq!(
            eval_scalar_function("UPPER", &[Value::Null]).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_scalar_function("ABS", &[Value::Null]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn abs_overflow_errors() {
        assert!(eval_scalar_function("ABS", &[Value::Int64(i64::MIN)]).is_err());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
        assert!(!like_match("hello", "HELLO"));
    }
}
