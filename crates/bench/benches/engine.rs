//! Criterion micro-benchmarks for the engine substrates, plus the headline
//! fused-vs-naive comparison at a fixed size.
//!
//! Run with `cargo bench -p lakehouse-bench`.

use bauplan_core::{ExecutionMode, LakehouseConfig, RunOptions};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lakehouse_bench::{taxi_lakehouse, taxi_pipeline};
use lakehouse_columnar::kernels::{cmp_column_scalar, filter_column, to_selection, CmpOp};
use lakehouse_columnar::{Column, Value};
use lakehouse_format::{FileReader, FileWriter, WriterOptions};
use lakehouse_runtime::{
    ContainerManager, EnvSpec, PackageCache, PackageUniverse, PoolPolicy, SimClock, StartupModel,
};
use lakehouse_sql::{MemoryProvider, SqlEngine};
use lakehouse_workload::{fit_power_law, sample_power_law, TaxiGenerator};

fn bench_kernels(c: &mut Criterion) {
    let col = Column::from_i64((0..100_000).collect());
    c.bench_function("kernel/cmp_scalar_100k", |b| {
        b.iter(|| cmp_column_scalar(CmpOp::Gt, &col, &Value::Int64(50_000)).unwrap())
    });
    let mask =
        to_selection(&cmp_column_scalar(CmpOp::Gt, &col, &Value::Int64(50_000)).unwrap()).unwrap();
    c.bench_function("kernel/filter_100k", |b| {
        b.iter(|| filter_column(&col, &mask).unwrap())
    });
}

fn bench_format(c: &mut Criterion) {
    let batch = TaxiGenerator::default().generate(50_000);
    c.bench_function("format/write_50k_rows", |b| {
        b.iter(|| FileWriter::write_file(&batch, WriterOptions::default()).unwrap())
    });
    let bytes = FileWriter::write_file(&batch, WriterOptions::default()).unwrap();
    c.bench_function("format/read_50k_rows", |b| {
        b.iter(|| {
            FileReader::parse(bytes.clone())
                .unwrap()
                .read_all(None)
                .unwrap()
        })
    });
}

fn bench_sql(c: &mut Criterion) {
    let mut provider = MemoryProvider::new();
    provider.register("taxi", TaxiGenerator::default().generate(100_000));
    let engine = SqlEngine::new();
    c.bench_function("sql/filter_project_100k", |b| {
        b.iter(|| {
            engine
                .query(
                    "SELECT pickup_location_id, fare FROM taxi WHERE fare > 20.0",
                    &provider,
                )
                .unwrap()
        })
    });
    c.bench_function("sql/group_by_100k", |b| {
        b.iter(|| {
            engine
                .query(
                    "SELECT pickup_location_id, COUNT(*) AS n, AVG(fare) AS f \
                     FROM taxi GROUP BY pickup_location_id",
                    &provider,
                )
                .unwrap()
        })
    });
}

fn bench_powerlaw(c: &mut Criterion) {
    let data = sample_power_law(20_000, 2.1, 0.5, 42);
    c.bench_function("workload/fit_power_law_20k", |b| {
        b.iter(|| fit_power_law(&data).unwrap())
    });
}

fn bench_containers(c: &mut Criterion) {
    c.bench_function("runtime/acquire_release_frozen", |b| {
        let m = ContainerManager::new(
            StartupModel::paper_defaults(),
            PoolPolicy::Freeze,
            PackageUniverse::synthetic(100, 1.1, 7),
            PackageCache::new(1 << 34),
            SimClock::new(),
        );
        let env = EnvSpec::new("py311", vec!["pkg-00000".into()]);
        // Prime so the steady state (resume) is measured.
        let warmup = m.acquire(&env);
        m.release(warmup);
        b.iter(|| {
            let cont = m.acquire(&env);
            m.release(cont);
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for mode in [ExecutionMode::Naive, ExecutionMode::Fused] {
        group.bench_function(format!("taxi_20k_{mode:?}"), |b| {
            b.iter_batched(
                || taxi_lakehouse(20_000, LakehouseConfig::default()),
                |lh| {
                    lh.run(&taxi_pipeline(), &RunOptions::default().with_mode(mode))
                        .unwrap()
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_format,
    bench_sql,
    bench_powerlaw,
    bench_containers,
    bench_pipeline
);
criterion_main!(benches);
