//! Shared harness for the paper-reproduction benchmarks.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the experiment index); this library holds the
//! fixtures they share.

// The bench harness reports results on stdout.
#![allow(clippy::print_stdout)]

use bauplan_core::{Lakehouse, LakehouseConfig, PipelineProject};
use lakehouse_table::{PartitionField, PartitionSpec, Transform};
use lakehouse_workload::TaxiGenerator;

/// Build a lakehouse seeded with `rows` synthetic taxi trips and the paper's
/// Appendix A expectation registered (with a threshold the synthetic data
/// passes). The taxi table is partitioned by month of `pickup_at`, as the
/// real NYC TLC dataset is distributed — this is what the fused plan's
/// filter pushdown prunes against.
pub fn taxi_lakehouse(rows: usize, config: LakehouseConfig) -> Lakehouse {
    let lh = Lakehouse::in_memory(config).expect("in-memory lakehouse");
    let batch = TaxiGenerator::default().generate(rows);
    let spec = PartitionSpec::new(vec![PartitionField {
        source_column: "pickup_at".into(),
        transform: Transform::Month,
    }]);
    lh.create_table_partitioned("taxi_table", &batch, "main", spec)
        .expect("seed taxi_table");
    lh.register_function(
        "trips_expectation_impl",
        bauplan_core::builtins::mean_greater_than("trips", "count", 1.0),
    );
    lh
}

/// The paper's 3-node pipeline.
pub fn taxi_pipeline() -> PipelineProject {
    PipelineProject::taxi_example()
}

/// Render a two-column numeric series as an aligned text table.
pub fn print_series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) {
    println!("\n## {title}");
    println!("{x_label:>16}  {y_label:>16}");
    for (x, y) in points {
        println!("{x:>16.6}  {y:>16.6}");
    }
}

/// Render a named-row table.
pub fn print_rows(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    println!("{}", header_line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bauplan_core::RunOptions;

    #[test]
    fn fixture_runs_green() {
        let lh = taxi_lakehouse(2_000, LakehouseConfig::zero_latency());
        let report = lh.run(&taxi_pipeline(), &RunOptions::default()).unwrap();
        assert!(report.success);
    }
}
