//! **§4.4.2 claim — "5× faster feedback loop"**: the fused execution plan
//! (filter pushdown + in-place SQL + expectation, one container) vs. the
//! naive isomorphic plan (one serverless function per node, intermediates
//! through object storage).
//!
//! Reproduction: run the paper's 3-node taxi pipeline under both execution
//! modes across dataset sizes and compare total *simulated* latency
//! (container startups + object-store traffic) — deterministic, since all
//! latency comes from the store/startup models, not the host machine.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin fusion_speedup`

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use bauplan_core::{ExecutionMode, LakehouseConfig, RunOptions};
use lakehouse_bench::{print_rows, taxi_lakehouse, taxi_pipeline};

fn main() {
    println!("=== §4.4.2: fused vs naive execution (the 5x feedback loop) ===");
    let mut rows = Vec::new();
    for &n in &[5_000usize, 20_000, 100_000, 400_000] {
        // The paper's claim is about the *feedback loop* — the steady-state
        // edit-run-inspect iteration. Warm up once (images pulled,
        // containers frozen), then measure the next run.
        let run_mode = |mode: ExecutionMode| {
            let lh = taxi_lakehouse(n, LakehouseConfig::default());
            let options = RunOptions::default().with_mode(mode);
            lh.run(&taxi_pipeline(), &options).expect("warmup run");
            lh.run(&taxi_pipeline(), &options).expect("measured run")
        };
        let naive = run_mode(ExecutionMode::Naive);
        let fused = run_mode(ExecutionMode::Fused);
        let speedup =
            naive.simulated_total.as_secs_f64() / fused.simulated_total.as_secs_f64().max(1e-9);
        rows.push(vec![
            format!("{n}"),
            format!("{:.0}", naive.simulated_total.as_secs_f64() * 1e3),
            format!("{}", naive.stages_executed),
            format!("{}/{}", naive.store_ops.0, naive.store_ops.1),
            format!("{:.0}", fused.simulated_total.as_secs_f64() * 1e3),
            format!("{}", fused.stages_executed),
            format!("{}/{}", fused.store_ops.0, fused.store_ops.1),
            format!("{speedup:.1}x"),
        ]);
    }
    print_rows(
        "naive (one function per node) vs fused (§4.4.2) — simulated latency",
        &[
            "taxi rows",
            "naive ms",
            "stages",
            "gets/puts",
            "fused ms",
            "stages",
            "gets/puts",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\nPaper claim check: \"This optimization results in 5x faster feedback \
         loop even with small datasets\" — the speedup column should sit in \
         that regime at small row counts (startup + round-trip dominated)."
    );
}
