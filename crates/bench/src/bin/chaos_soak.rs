//! Chaos soak: query latency and success rate under seeded fault injection
//! with the retry layer absorbing the damage.
//!
//! Builds the 24-file scan-filter-aggregate fixture behind a
//! `Retry(Chaos(Simulated))` store stack and replays the query at fault
//! probabilities p ∈ {0, 0.05, 0.2} (8 retries, decorrelated-jitter
//! backoff). Backoff is charged to the *simulated* clock, so wall-time
//! percentiles measure real compute overhead (extra attempts, RNG gates),
//! not sleeps. Every successful query is compared byte-for-byte against the
//! fault-free result, and the run asserts a 100% success rate at p = 0.05 —
//! the resilience layer's headline guarantee. At p = 0.2 the default 30 s
//! retry budget eventually runs dry mid-soak, so that level also exercises
//! the typed give-up path (`RetriesExhausted`), reflected in its success
//! rate.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin chaos_soak --release`
//! (writes `BENCH_chaos.json` in the working directory). `--files`,
//! `--rows`, and `--trials` override the shape (defaults 24 x 500 x 40).

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use bauplan_core::{Lakehouse, LakehouseConfig};
use lakehouse_bench::print_rows;
use lakehouse_columnar::{Column, DataType, Field, RecordBatch, Schema};
use lakehouse_store::{ChaosConfig, LatencyModel};
use lakehouse_table::PartitionSpec;
use std::time::Instant;

const AGG_SQL: &str = "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM events \
                       WHERE val < 1.0e9 GROUP BY grp ORDER BY grp";
const RETRY_MAX: u32 = 8;
const FAULT_LEVELS: [f64; 3] = [0.0, 0.05, 0.2];

fn build(files: usize, rows_per: usize, fault_p: f64) -> Lakehouse {
    let chaos = (fault_p > 0.0).then(|| ChaosConfig::new(0xC4A05).with_fault_p(fault_p));
    let retry_max = if fault_p > 0.0 { RETRY_MAX } else { 0 };
    let config = LakehouseConfig {
        latency: LatencyModel {
            sigma: 0.0,
            ..LatencyModel::s3_like()
        },
        chaos,
        retry_max,
        ..Default::default()
    };
    let lh = Lakehouse::in_memory(config).expect("lakehouse");
    let total = files * rows_per;
    let batch = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("part", DataType::Int64, false),
            Field::new("grp", DataType::Int64, false),
            Field::new("val", DataType::Float64, false),
        ]),
        vec![
            Column::from_i64((0..total).map(|i| (i / rows_per) as i64).collect()),
            Column::from_i64((0..total).map(|i| (i % 7) as i64).collect()),
            Column::from_f64((0..total).map(|i| i as f64 * 0.5).collect()),
        ],
    )
    .expect("fixture batch");
    lh.create_table_partitioned("events", &batch, "main", PartitionSpec::identity("part"))
        .expect("fixture ingest (retried under chaos)");
    lh
}

fn parse_args() -> (usize, usize, usize) {
    let mut files = 24usize;
    let mut rows = 500usize;
    let mut trials = 40usize;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let parse = |v: Option<&String>, flag: &str| -> usize {
            v.and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("{flag} expects a number"))
        };
        match argv[i].as_str() {
            "--files" => {
                files = parse(argv.get(i + 1), "--files").max(2);
                i += 1;
            }
            "--rows" => {
                rows = parse(argv.get(i + 1), "--rows").max(1);
                i += 1;
            }
            "--trials" => {
                trials = parse(argv.get(i + 1), "--trials").max(2);
                i += 1;
            }
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }
    (files, rows, trials)
}

fn percentile(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[((samples.len() - 1) as f64 * q).round() as usize]
}

struct Level {
    fault_p: f64,
    success_rate: f64,
    p50_ns: u64,
    p99_ns: u64,
    retries: u64,
    stall_ms: u128,
}

fn main() {
    let (files, rows_per, trials) = parse_args();
    println!("=== chaos soak on {files} files x {rows_per} rows, {trials} trials/level ===");

    // Fault-free reference result for byte-identity checks.
    let expected = build(files, rows_per, 0.0)
        .query(AGG_SQL, "main")
        .expect("fault-free query");

    let retry_counter = lakehouse_obs::global().counter("retry.attempts");
    let mut levels = Vec::new();
    for fault_p in FAULT_LEVELS {
        let lh = build(files, rows_per, fault_p);
        let retries_before = retry_counter.get();
        let mut wall = Vec::with_capacity(trials);
        let mut successes = 0usize;
        for _ in 0..trials {
            let t = Instant::now();
            match lh.query(AGG_SQL, "main") {
                Ok(batch) => {
                    wall.push(t.elapsed().as_nanos() as u64);
                    assert_eq!(
                        batch, expected,
                        "p={fault_p}: a successful query must be byte-identical"
                    );
                    successes += 1;
                }
                Err(e) => {
                    // Exhausted retries are an acceptable *typed* outcome at
                    // high fault rates; anything else is a bug.
                    assert!(
                        e.to_string().contains("retries exhausted"),
                        "p={fault_p}: untyped failure: {e}"
                    );
                }
            }
        }
        levels.push(Level {
            fault_p,
            success_rate: successes as f64 / trials as f64,
            p50_ns: percentile(&mut wall, 0.50),
            p99_ns: percentile(&mut wall, 0.99),
            retries: retry_counter.get() - retries_before,
            stall_ms: lh.store_metrics().stall_time().as_millis(),
        });
    }

    print_rows(
        "query under seeded chaos (8 retries, decorrelated jitter)",
        &[
            "fault p",
            "success",
            "p50 (ms)",
            "p99 (ms)",
            "retries",
            "sim stall (ms)",
        ],
        &levels
            .iter()
            .map(|l| {
                vec![
                    format!("{:.2}", l.fault_p),
                    format!("{:.0}%", l.success_rate * 100.0),
                    format!("{:.3}", l.p50_ns as f64 / 1e6),
                    format!("{:.3}", l.p99_ns as f64 / 1e6),
                    format!("{}", l.retries),
                    format!("{}", l.stall_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let at_p05 = levels
        .iter()
        .find(|l| (l.fault_p - 0.05).abs() < 1e-9)
        .expect("p=0.05 level");
    assert!(
        (at_p05.success_rate - 1.0).abs() < f64::EPSILON,
        "retries must mask every fault at p = 0.05, got {:.0}% success",
        at_p05.success_rate * 100.0
    );
    assert!(
        levels[1].retries + levels[2].retries > 0,
        "chaos levels must actually exercise the retry layer"
    );

    let level_json: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "    {{ \"fault_p\": {:.2}, \"success_rate\": {:.4}, \"p50_ns\": {}, \
                 \"p99_ns\": {}, \"retries\": {}, \"sim_stall_ms\": {} }}",
                l.fault_p, l.success_rate, l.p50_ns, l.p99_ns, l.retries, l.stall_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"chaos_soak\",\n  \"files\": {files},\n  \"rows_per_file\": {rows_per},\n  \"trials_per_level\": {trials},\n  \"retry_max\": {RETRY_MAX},\n  \"query\": \"scan-filter-aggregate\",\n  \"levels\": [\n{}\n  ],\n  \"summary\": {{\n    \"success_rate_at_p05\": {:.4},\n    \"all_success_at_p05\": true,\n    \"byte_identical_to_fault_free\": true\n  }}\n}}\n",
        level_json.join(",\n"),
        at_p05.success_rate
    );
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("\nwrote BENCH_chaos.json");
    println!(
        "100% success at p = 0.05 ({} retries absorbed); p99 at p = 0.2 is {:.3} ms",
        at_p05.retries,
        levels[2].p99_ns as f64 / 1e6
    );
}
