//! §5 future work, implemented: parallel SQL execution. Wall-clock speedup
//! of the two-phase parallel aggregate/filter over the serial engine at
//! growing data sizes.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin parallel_sql --release`

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use lakehouse_bench::print_rows;
use lakehouse_sql::{MemoryProvider, SqlEngine};
use lakehouse_workload::TaxiGenerator;
use std::time::Instant;

fn time_engine(engine: &SqlEngine, provider: &MemoryProvider, sql: &str, reps: usize) -> f64 {
    // Warm-up.
    engine.query(sql, provider).expect("query ok");
    let start = Instant::now();
    for _ in 0..reps {
        engine.query(sql, provider).expect("query ok");
    }
    start.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn main() {
    println!("=== §5: parallelizing SQL execution (wall-clock) ===");
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let serial = SqlEngine::new();
    let parallel = SqlEngine::new()
        .with_parallelism(threads)
        .with_parallel_threshold(10_000);

    let agg_sql = "SELECT pickup_location_id, COUNT(*) AS n, AVG(fare) AS avg_fare, \
                   MAX(trip_distance) AS max_dist FROM taxi GROUP BY pickup_location_id";
    let filter_sql = "SELECT fare FROM taxi WHERE fare > 10.0 AND trip_distance < 5.0";

    let mut rows = Vec::new();
    for &n in &[100_000usize, 500_000, 2_000_000] {
        let mut provider = MemoryProvider::new();
        provider.register("taxi", TaxiGenerator::default().generate(n));
        let reps = (2_000_000 / n).clamp(1, 10);
        let agg_serial = time_engine(&serial, &provider, agg_sql, reps);
        let agg_parallel = time_engine(&parallel, &provider, agg_sql, reps);
        let f_serial = time_engine(&serial, &provider, filter_sql, reps);
        let f_parallel = time_engine(&parallel, &provider, filter_sql, reps);
        rows.push(vec![
            format!("{n}"),
            format!("{agg_serial:.1}"),
            format!("{agg_parallel:.1}"),
            format!("{:.2}x", agg_serial / agg_parallel),
            format!("{f_serial:.1}"),
            format!("{f_parallel:.1}"),
            format!("{:.2}x", f_serial / f_parallel),
        ]);
    }
    print_rows(
        &format!("serial vs {threads}-thread engine (ms per query)"),
        &[
            "taxi rows",
            "agg serial",
            "agg parallel",
            "speedup",
            "filter serial",
            "filter parallel",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\nNote: wall-clock (not simulated) — the parallel operators shrink \
         compute time; object-store latency, the dominant cost at reasonable \
         scale, is unaffected, which is why the paper shipped fusion first \
         and left parallel SQL as future work."
    );
}
