//! **§4.5 claim — package cache**: "we were able to exploit the power-law in
//! package utilization (SOCK) to limit overall download times with an
//! efficient local, disk-based cache."
//!
//! Reproduction: replay a Zipf-distributed stream of environment builds over
//! a 2000-package universe and sweep the disk-cache budget, reporting hit
//! rate, bytes downloaded, and total fetch time vs. an uncached baseline.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin package_cache`

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use lakehouse_bench::print_rows;
use lakehouse_runtime::{PackageCache, PackageUniverse};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    println!("=== §4.5: power-law package utilization + disk cache ===");
    let universe = PackageUniverse::synthetic(2_000, 1.1, 7);
    const REQUESTS: usize = 5_000;

    // Pre-draw the request stream once so every cache size sees the same
    // workload.
    let mut rng = StdRng::seed_from_u64(99);
    let stream: Vec<String> = (0..REQUESTS)
        .map(|_| universe.sample_popular(&mut rng).name.clone())
        .collect();

    let mut rows = Vec::new();
    for &(label, capacity) in &[
        ("no cache", 0u64),
        ("1 GB", 1 << 30),
        ("4 GB", 4u64 << 30),
        ("16 GB", 16u64 << 30),
        ("64 GB", 64u64 << 30),
    ] {
        let mut cache = PackageCache::new(capacity);
        let mut total = Duration::ZERO;
        for name in &stream {
            let pkg = universe.get(name).expect("package exists");
            let (_, t) = cache.fetch(pkg);
            total += t;
        }
        rows.push(vec![
            label.into(),
            format!("{:.1}%", cache.hit_rate() * 100.0),
            format!("{:.2}", cache.bytes_downloaded() as f64 / 1e9),
            format!("{:.1}", total.as_secs_f64()),
        ]);
    }
    print_rows(
        &format!("{REQUESTS} Zipf(1.1) package fetches over a 2000-package universe"),
        &[
            "disk cache",
            "hit rate",
            "GB downloaded",
            "total fetch time s",
        ],
        &rows,
    );
    println!(
        "\nPaper claim check: with a modest disk cache, the power-law workload \
         turns most fetches into hits, collapsing download time versus the \
         uncached baseline (compare the first and last rows)."
    );
}
