//! **§4.2/§4.5 claims — container startup**: "custom containers optimized
//! for starting a Spark command with 300 milliseconds latency" and
//! "'freezing' a container after initialization would make startup time
//! negligible".
//!
//! Reproduction: measure the three startup regimes of the SOCK-style model
//! (cold, warm-pool, frozen-resume) with the component breakdown, plus the
//! effect of the pool policy across a burst of invocations.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin startup_latency`

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use lakehouse_bench::print_rows;
use lakehouse_runtime::{
    ContainerManager, EnvSpec, PackageCache, PackageUniverse, PoolPolicy, SimClock, StartupModel,
};

fn manager(policy: PoolPolicy) -> ContainerManager {
    ContainerManager::new(
        StartupModel::paper_defaults(),
        policy,
        PackageUniverse::synthetic(2_000, 1.1, 7),
        PackageCache::new(20 * 1024 * 1024 * 1024),
        SimClock::new(),
    )
}

fn main() {
    println!("=== §4.2/§4.5: container startup regimes ===");
    let env = EnvSpec::new("python3.11", vec!["pkg-00000".into(), "pkg-00003".into()]);

    // Breakdown per regime.
    let m = manager(PoolPolicy::Freeze);
    let cold = m.acquire(&env);
    let cold_b = cold.startup.clone();
    m.release(cold);
    let resumed = m.acquire(&env); // frozen resume
    let resumed_b = resumed.startup.clone();
    let warm = m.acquire(&env); // second container, warm image path
    let warm_b = warm.startup.clone();

    let ms = |d: std::time::Duration| format!("{:.1}", d.as_secs_f64() * 1e3);
    print_rows(
        "startup breakdown (ms) — SOCK-style components",
        &["component", "cold", "warm (300ms path)", "frozen resume"],
        &[
            vec![
                "image fetch".into(),
                ms(cold_b.image_fetch),
                ms(warm_b.image_fetch),
                ms(resumed_b.image_fetch),
            ],
            vec![
                "sandbox create".into(),
                ms(cold_b.sandbox_create),
                ms(warm_b.sandbox_create),
                ms(resumed_b.sandbox_create),
            ],
            vec![
                "runtime boot".into(),
                ms(cold_b.runtime_boot),
                ms(warm_b.runtime_boot),
                ms(resumed_b.runtime_boot),
            ],
            vec![
                "package fetch".into(),
                ms(cold_b.package_fetch),
                ms(warm_b.package_fetch),
                ms(resumed_b.package_fetch),
            ],
            vec![
                "package import".into(),
                ms(cold_b.package_import),
                ms(warm_b.package_import),
                ms(resumed_b.package_import),
            ],
            vec![
                "handler init".into(),
                ms(cold_b.handler_init),
                ms(warm_b.handler_init),
                ms(resumed_b.handler_init),
            ],
            vec![
                "TOTAL".into(),
                ms(cold_b.total()),
                ms(warm_b.total()),
                ms(resumed_b.total()),
            ],
        ],
    );

    // Burst of 50 invocations under each pool policy.
    let mut rows = Vec::new();
    for (name, policy) in [
        ("none (always restart)", PoolPolicy::None),
        ("warm pool", PoolPolicy::Warm),
        ("freeze/resume (paper)", PoolPolicy::Freeze),
    ] {
        let m = manager(policy);
        let mut total = std::time::Duration::ZERO;
        for _ in 0..50 {
            let c = m.acquire(&env);
            total += c.startup.total();
            m.release(c);
        }
        let (cold, warm, resume) = m.start_counts();
        rows.push(vec![
            name.into(),
            format!("{:.0}", total.as_secs_f64() * 1e3),
            format!("{:.1}", total.as_secs_f64() * 1e3 / 50.0),
            format!("{cold}/{warm}/{resume}"),
        ]);
    }
    print_rows(
        "50 sequential invocations per pool policy",
        &[
            "policy",
            "total startup ms",
            "mean ms/invoke",
            "cold/warm/resume",
        ],
        &rows,
    );
    println!(
        "\nPaper claim checks: warm path ≈ 300 ms ({} ms measured); frozen \
         resume is negligible ({} ms measured); cold start is in the \
         Spark-cluster-launch regime ({} ms).",
        ms(warm_b.total()),
        ms(resumed_b.total()),
        ms(cold_b.total()),
    );
}
