//! Completion-based I/O dispatcher: real overlapped wall clock vs the
//! simulated ideal, and hedged-read tail latency under stall chaos.
//!
//! Part A reuses the `scan_parallel` fixture (24 identity-partitioned files,
//! deterministic s3-like latency, sigma = 0) but runs the store in
//! `SleepMode::Scaled` so every simulated delay really sleeps, scaled down.
//! The scan then goes through the dispatcher with speculative read-ahead at
//! increasing depths and we measure *actual* wall clock: at depth 8 it must
//! land within 25% of what the simulated-overlap model (BENCH_scan.json's
//! parallelism-8 number) predicts for the same scale.
//!
//! Part B times single gets through a 5%-stall chaos layer, first raw and
//! then through the dispatcher with p95 hedging: the hedged p99 must be at
//! most half the unhedged p99.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin io_overlap --release`
//! (writes `BENCH_io.json` in the working directory).

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use bytes::Bytes;
use lakehouse_bench::print_rows;
use lakehouse_columnar::kernels::CmpOp;
use lakehouse_columnar::{Column, DataType, Field, RecordBatch, Schema, Value};
use lakehouse_store::{
    ChaosConfig, ChaosStore, HedgePolicy, InMemoryStore, IoConfig, IoDispatcher, LatencyModel,
    ObjectPath, ObjectStore, SimulatedStore, SleepMode,
};
use lakehouse_table::{PartitionSpec, ScanPredicate, SnapshotOperation, Table};
use std::sync::Arc;
use std::time::Instant;

const FILES: usize = 24;
const ROWS_PER_FILE: usize = 4_000;
/// Simulated seconds per real second in part A (keeps the bench fast while
/// every latency still really sleeps).
const SCALE: f64 = 0.2;
/// The acceptance window: measured overlapped wall clock vs the simulated
/// ideal at depth 8.
const OVERLAP_TOLERANCE: f64 = 1.25;

/// Part B: stall probability and get count for the hedging measurement.
const STALL_P: f64 = 0.05;
const HEDGE_SCALE: f64 = 0.05;
const HEDGE_WARMUP: usize = 50;
const HEDGE_GETS: usize = 400;

/// Ingest the `scan_parallel` fixture through the plain backend (no sleeps),
/// then hand back a really-sleeping simulated view of the same objects.
fn scaled_fixture() -> (Arc<dyn ObjectStore>, String) {
    let base = Arc::new(InMemoryStore::new());
    let plain: Arc<dyn ObjectStore> = base.clone();
    let schema = Schema::new(vec![
        Field::new("zone", DataType::Utf8, false),
        Field::new("fare", DataType::Float64, false),
    ]);
    let zones: Vec<String> = (0..FILES)
        .flat_map(|f| std::iter::repeat_n(format!("zone_{f:02}"), ROWS_PER_FILE))
        .collect();
    let fares: Vec<f64> = (0..FILES * ROWS_PER_FILE)
        .map(|i| (i % 97) as f64 + 0.5)
        .collect();
    let batch = RecordBatch::try_new(
        schema.clone(),
        vec![
            Column::from_strs(zones.iter().map(String::as_str).collect()),
            Column::from_f64(fares),
        ],
    )
    .expect("fixture batch");
    let table = Table::create(
        Arc::clone(&plain),
        "wh/io_bench",
        &schema,
        PartitionSpec::identity("zone"),
    )
    .expect("create table");
    let mut tx = table.new_transaction(SnapshotOperation::Append);
    tx.write(&batch).expect("write");
    let (location, _) = tx.commit().expect("commit");

    let sim: Arc<dyn ObjectStore> = Arc::new(
        SimulatedStore::with_seed(
            plain,
            LatencyModel {
                sigma: 0.0,
                ..LatencyModel::s3_like()
            },
            42,
        )
        .with_sleep_mode(SleepMode::Scaled(SCALE)),
    );
    (sim, location)
}

struct ScanRun {
    measured_wall_ms: f64,
    sim_wall_ms: f64,
    batch: RecordBatch,
}

fn timed_scan(store: &Arc<dyn ObjectStore>, location: &str, io: Option<(usize, usize)>) -> ScanRun {
    let table = Table::load(Arc::clone(store), location).expect("load table");
    let mut scan = table
        .scan()
        .with_predicate(ScanPredicate::new("fare", CmpOp::Lt, Value::Float64(90.0)))
        .select(&["zone", "fare"]);
    match io {
        Some((depth, read_ahead)) => {
            let io = Arc::new(IoDispatcher::new(Arc::clone(store), IoConfig::new(depth)));
            scan = scan.with_io_dispatcher(io).with_read_ahead(read_ahead);
        }
        None => scan = scan.with_parallelism(8),
    }
    let started = Instant::now();
    let (batch, report) = scan.execute_with_report().expect("scan");
    ScanRun {
        measured_wall_ms: started.elapsed().as_secs_f64() * 1e3,
        sim_wall_ms: report.wall_clock_simulated.as_secs_f64() * 1e3,
        batch,
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx]
}

struct TailStats {
    p50: f64,
    p95: f64,
    p99: f64,
}

fn tail(mut samples: Vec<f64>) -> TailStats {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    TailStats {
        p50: percentile(&samples, 0.50),
        p95: percentile(&samples, 0.95),
        p99: percentile(&samples, 0.99),
    }
}

fn main() {
    // ---- part A: real overlap through the dispatcher -----------------------
    println!("=== io dispatcher overlap, SleepMode::Scaled({SCALE}) ({FILES} files) ===");
    let (store, location) = scaled_fixture();

    // The simulated-overlap prediction: the plain parallelism-8 scan (the
    // BENCH_scan.json configuration) on its simulated clock, scaled.
    let plain = timed_scan(&store, &location, None);
    let ideal_ms = plain.sim_wall_ms * SCALE;

    let mut rows = Vec::new();
    let mut depth_results = Vec::new();
    let mut measured_d8 = f64::INFINITY;
    for depth in [1usize, 2, 4, 8] {
        let run = timed_scan(&store, &location, Some((depth, depth)));
        assert_eq!(
            run.batch, plain.batch,
            "depth {depth}: read-ahead changed the scan result"
        );
        if depth == 8 {
            measured_d8 = run.measured_wall_ms;
        }
        rows.push(vec![
            format!("{depth}"),
            format!("{:.1}", run.measured_wall_ms),
            format!("{:.1}", run.sim_wall_ms * SCALE),
            format!("{:.1}", plain.sim_wall_ms),
        ]);
        depth_results.push(format!(
            "    {{\"depth\": {depth}, \"measured_wall_ms\": {:.3}, \"sim_wall_ms\": {:.3}}}",
            run.measured_wall_ms, run.sim_wall_ms
        ));
    }
    print_rows(
        "measured wall clock vs the scaled simulated ideal",
        &["depth", "measured ms", "own sim ideal ms", "p8 sim ms"],
        &rows,
    );
    println!(
        "depth 8: measured {measured_d8:.1} ms vs simulated-overlap ideal {ideal_ms:.1} ms \
         (gate: <= {OVERLAP_TOLERANCE}x)"
    );
    let overlap_ok = measured_d8 <= OVERLAP_TOLERANCE * ideal_ms;

    // ---- part B: hedged tail latency under stall chaos ---------------------
    println!(
        "\n=== hedged reads under {:.0}% stall chaos ===",
        STALL_P * 100.0
    );
    let backend = Arc::new(InMemoryStore::new());
    let payload_path = ObjectPath::new("bench/hot_object").expect("path");
    backend
        .put(&payload_path, Bytes::from(vec![7u8; 1024]))
        .expect("seed object");
    let sim = SimulatedStore::with_seed(
        backend as Arc<dyn ObjectStore>,
        LatencyModel {
            sigma: 0.0,
            ..LatencyModel::s3_like()
        },
        42,
    )
    .with_sleep_mode(SleepMode::Scaled(HEDGE_SCALE));
    let chaos: Arc<dyn ObjectStore> = Arc::new(ChaosStore::new(
        sim,
        ChaosConfig::new(0x10ED6E).with_stall_p(STALL_P),
    ));

    // Unhedged baseline: direct gets, the caller eats every stall.
    let mut unhedged = Vec::with_capacity(HEDGE_GETS);
    for i in 0..HEDGE_WARMUP + HEDGE_GETS {
        let started = Instant::now();
        chaos.get(&payload_path).expect("unhedged get");
        if i >= HEDGE_WARMUP {
            unhedged.push(started.elapsed().as_secs_f64() * 1e3);
        }
    }
    let unhedged = tail(unhedged);

    // Hedged: the same gets through the dispatcher; past the live p95 a
    // second request races the stalled one and the first completion wins.
    let io = IoDispatcher::new(
        Arc::clone(&chaos),
        IoConfig::new(4).with_hedge(HedgePolicy::default()),
    );
    let mut hedged = Vec::with_capacity(HEDGE_GETS);
    for i in 0..HEDGE_WARMUP + HEDGE_GETS {
        let started = Instant::now();
        let ticket = io.submit_get(&payload_path, None);
        io.wait(ticket).result.expect("hedged get");
        if i >= HEDGE_WARMUP {
            hedged.push(started.elapsed().as_secs_f64() * 1e3);
        }
    }
    let hedged = tail(hedged);
    let stats = io.stats();

    print_rows(
        "per-get wall-clock latency, ms",
        &["mode", "p50", "p95", "p99"],
        &[
            vec![
                "unhedged".into(),
                format!("{:.2}", unhedged.p50),
                format!("{:.2}", unhedged.p95),
                format!("{:.2}", unhedged.p99),
            ],
            vec![
                "hedged".into(),
                format!("{:.2}", hedged.p50),
                format!("{:.2}", hedged.p95),
                format!("{:.2}", hedged.p99),
            ],
        ],
    );
    println!(
        "hedges fired: {}, won: {}, cancelled: {} (gate: hedged p99 <= 0.5x unhedged p99)",
        stats.hedges_fired, stats.hedges_won, stats.cancelled
    );
    let hedge_ok = hedged.p99 <= 0.5 * unhedged.p99;

    // ---- report + regression gates -----------------------------------------
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"io_overlap\",\n",
            "  \"overlap\": {{\n",
            "    \"files\": {files}, \"rows_per_file\": {rpf}, \"sleep_scale\": {scale},\n",
            "    \"plain_p8_sim_wall_ms\": {p8:.3},\n",
            "    \"ideal_wall_ms\": {ideal:.3},\n",
            "    \"measured_depth8_wall_ms\": {d8:.3},\n",
            "    \"tolerance\": {tol},\n",
            "    \"results\": [\n{depths}\n    ]\n",
            "  }},\n",
            "  \"hedging\": {{\n",
            "    \"stall_p\": {stall_p}, \"sleep_scale\": {hscale}, \"gets\": {gets},\n",
            "    \"unhedged_ms\": {{\"p50\": {up50:.3}, \"p95\": {up95:.3}, \"p99\": {up99:.3}}},\n",
            "    \"hedged_ms\": {{\"p50\": {hp50:.3}, \"p95\": {hp95:.3}, \"p99\": {hp99:.3}}},\n",
            "    \"hedges_fired\": {fired}, \"hedges_won\": {won}\n",
            "  }},\n",
            "  \"gates\": {{\"overlap_within_tolerance\": {ok1}, \"hedged_p99_halved\": {ok2}}}\n",
            "}}\n"
        ),
        files = FILES,
        rpf = ROWS_PER_FILE,
        scale = SCALE,
        p8 = plain.sim_wall_ms,
        ideal = ideal_ms,
        d8 = measured_d8,
        tol = OVERLAP_TOLERANCE,
        depths = depth_results.join(",\n"),
        stall_p = STALL_P,
        hscale = HEDGE_SCALE,
        gets = HEDGE_GETS,
        up50 = unhedged.p50,
        up95 = unhedged.p95,
        up99 = unhedged.p99,
        hp50 = hedged.p50,
        hp95 = hedged.p95,
        hp99 = hedged.p99,
        fired = stats.hedges_fired,
        won = stats.hedges_won,
        ok1 = overlap_ok,
        ok2 = hedge_ok,
    );
    std::fs::write("BENCH_io.json", &json).expect("write BENCH_io.json");
    println!("\nwrote BENCH_io.json");

    // Regression gates — fail the CI smoke run loudly, like kernel_bench.
    assert!(
        overlap_ok,
        "overlap regression: measured depth-8 wall {measured_d8:.1} ms exceeds \
         {OVERLAP_TOLERANCE}x the simulated ideal {ideal_ms:.1} ms"
    );
    assert!(
        hedge_ok,
        "hedging regression: hedged p99 {:.2} ms exceeds half the unhedged p99 {:.2} ms",
        hedged.p99, unhedged.p99
    );
}
