//! **§3.1 footnote 3**: "in the last 10 years, the cost of 1 TB of memory
//! decreased from 5,000 USD to 2,000 USD" — the hardware-trend leg of the
//! Reasonable Scale argument.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin ram_cost`

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use lakehouse_bench::print_rows;
use lakehouse_workload::ram_cost::{decade_price_ratio, RAM_USD_PER_TB};

fn main() {
    println!("=== §3.1 fn.3: historical cost of 1 TB DRAM ===");
    let rows: Vec<Vec<String>> = RAM_USD_PER_TB
        .iter()
        .map(|(year, usd)| vec![year.to_string(), format!("{usd:.0}")])
        .collect();
    print_rows("USD per TB of DRAM", &["year", "USD/TB"], &rows);
    println!(
        "\nPaper claim check: {:.0} USD (2013) -> {:.0} USD (2023), a {:.0}% drop \
         (paper: 5,000 -> 2,000).",
        RAM_USD_PER_TB.first().unwrap().1,
        RAM_USD_PER_TB.last().unwrap().1,
        (1.0 - decade_price_ratio()) * 100.0
    );
}
