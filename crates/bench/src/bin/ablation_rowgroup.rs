//! Ablation: row-group size vs. pruning effectiveness.
//!
//! Smaller row groups give zone maps finer granularity (fewer bytes fetched
//! for selective queries) but cost more footer metadata and more range-read
//! round trips. This sweep quantifies the trade-off behind the writer's
//! 8192-row default.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin ablation_rowgroup`

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use lakehouse_bench::print_rows;
use lakehouse_columnar::kernels::CmpOp;
use lakehouse_columnar::{Column, DataType, Field, RecordBatch, Schema, Value};
use lakehouse_format::{FileWriter, RangedReader, WriterOptions};
use std::cell::RefCell;

fn main() {
    println!("=== ablation: row-group size vs pruning (selective point query) ===");
    const ROWS: i64 = 200_000;
    // Sorted key so zone maps are maximally useful (clustered data, the
    // layout compaction would produce).
    let batch = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("payload", DataType::Utf8, false),
        ]),
        vec![
            Column::from_i64((0..ROWS).collect()),
            Column::from_str_vec((0..ROWS).map(|i| format!("payload-{i:08}")).collect()),
        ],
    )
    .unwrap();

    let mut rows = Vec::new();
    for &group_rows in &[512usize, 2_048, 8_192, 32_768, 131_072] {
        let bytes = FileWriter::write_file(
            &batch,
            WriterOptions {
                row_group_rows: group_rows,
            },
        )
        .unwrap();
        let fetched = RefCell::new(0usize);
        let fetches = RefCell::new(0usize);
        let fetch = |start: usize, end: usize| -> lakehouse_format::Result<bytes::Bytes> {
            *fetched.borrow_mut() += end - start;
            *fetches.borrow_mut() += 1;
            Ok(bytes.slice(start..end))
        };
        let reader = RangedReader::open(bytes.len(), &fetch).unwrap();
        // Selective range: 1% of the table.
        let lo = ROWS / 2;
        let hi = lo + ROWS / 100;
        let groups_ge = reader.prune("id", CmpOp::GtEq, &Value::Int64(lo)).unwrap();
        let groups_lt = reader.prune("id", CmpOp::Lt, &Value::Int64(hi)).unwrap();
        let groups: Vec<usize> = groups_ge
            .into_iter()
            .filter(|g| groups_lt.contains(g))
            .collect();
        let out = reader.read_groups(&groups, None, &fetch).unwrap();
        rows.push(vec![
            format!("{group_rows}"),
            format!("{}", reader.num_row_groups()),
            format!("{}", bytes.len()),
            format!("{}", groups.len()),
            format!("{}", out.num_rows()),
            format!("{}", *fetches.borrow()),
            format!("{:.1}", *fetched.borrow() as f64 / 1024.0),
            format!(
                "{:.1}%",
                *fetched.borrow() as f64 / bytes.len() as f64 * 100.0
            ),
        ]);
    }
    print_rows(
        "1%-selectivity range query over a 200k-row sorted file",
        &[
            "rows/group",
            "groups",
            "file bytes",
            "groups read",
            "rows decoded",
            "range reads",
            "KB fetched",
            "% of file",
        ],
        &rows,
    );
    println!(
        "\nReading: small groups minimize bytes fetched but multiply range-read \
         round trips (each ≈ one object-store GET); large groups do the \
         opposite. The 8192 default balances the two at S3-like latencies."
    );
}
