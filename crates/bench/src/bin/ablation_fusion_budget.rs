//! Ablation: fusion memory budget vs. stage count and simulated latency.
//!
//! Fusion packs DAG steps into container stages until the estimated working
//! set exceeds the worker's memory budget (DESIGN.md §4). This sweep shows
//! the spectrum between the naive executor (budget ≈ one step) and full
//! fusion (budget ≥ whole DAG), using a 6-node pipeline.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin ablation_fusion_budget`

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use bauplan_core::{builtins, Lakehouse, LakehouseConfig, NodeDef, PipelineProject, RunOptions};
use lakehouse_bench::print_rows;
use lakehouse_planner::{ExecutionMode, LogicalPipeline, PhysicalPipeline, PipelineDag};
use lakehouse_workload::TaxiGenerator;

/// A 6-node chain+fan pipeline over the taxi table.
fn wide_project() -> PipelineProject {
    PipelineProject::new("wide")
        .with(NodeDef::sql(
            "trips",
            "SELECT pickup_location_id, dropoff_location_id, fare FROM taxi_table \
             WHERE fare > 3.0",
        ))
        .with(NodeDef::sql(
            "by_pickup",
            "SELECT pickup_location_id, COUNT(*) AS n FROM trips GROUP BY pickup_location_id",
        ))
        .with(NodeDef::sql(
            "by_dropoff",
            "SELECT dropoff_location_id, COUNT(*) AS n FROM trips GROUP BY dropoff_location_id",
        ))
        .with(NodeDef::sql(
            "busy_pickups",
            "SELECT pickup_location_id, n FROM by_pickup WHERE n > 10",
        ))
        .with(NodeDef::sql(
            "busy_dropoffs",
            "SELECT dropoff_location_id, n FROM by_dropoff WHERE n > 10",
        ))
        .with(NodeDef::function(
            "busy_pickups_expectation",
            vec!["busy_pickups".into()],
            Default::default(),
            "check_busy",
        ))
}

fn main() {
    println!("=== ablation: fusion memory budget (6-node pipeline) ===");
    // Static plan-shape sweep.
    let project = wide_project();
    let dag = PipelineDag::extract(&project).unwrap();
    let logical = LogicalPipeline::plan(&project).unwrap();
    const STEP: u64 = 1 << 20; // pretend each step needs 1 MB
    let mut rows = Vec::new();
    for &(label, budget) in &[
        ("1 step (≈ naive)", STEP),
        ("2 steps", 2 * STEP),
        ("3 steps", 3 * STEP),
        ("whole DAG", 100 * STEP),
    ] {
        let plan =
            PhysicalPipeline::compile(&logical, &dag, ExecutionMode::Fused, budget, |_| STEP)
                .unwrap();
        rows.push(vec![
            label.into(),
            format!("{}", plan.stages.len()),
            format!("{}", plan.spilled_edges()),
        ]);
    }
    print_rows(
        "plan shape vs budget",
        &["budget", "stages", "spilled edges"],
        &rows,
    );

    // End-to-end latency at the extremes (measured on the platform).
    let mut rows = Vec::new();
    for (label, memory_capacity) in [
        ("tiny worker (2 MB, stages split)", 2u64 << 20),
        ("32 GB worker (full fusion)", 32u64 << 30),
    ] {
        let mut config = LakehouseConfig::default();
        config.runtime.memory_capacity = memory_capacity;
        let lh = Lakehouse::in_memory(config).unwrap();
        lh.create_table(
            "taxi_table",
            &TaxiGenerator::default().generate(50_000),
            "main",
        )
        .unwrap();
        lh.register_function("check_busy", builtins::min_row_count("busy_pickups", 1));
        let options = RunOptions::default();
        lh.run(&wide_project(), &options).unwrap(); // warm
        let report = lh.run(&wide_project(), &options).unwrap();
        rows.push(vec![
            label.into(),
            format!("{}", report.stages_executed),
            format!("{}/{}", report.store_ops.0, report.store_ops.1),
            format!("{:.0}", report.simulated_total.as_secs_f64() * 1e3),
        ]);
    }
    print_rows(
        "end-to-end (steady state, simulated ms)",
        &["worker", "stages", "gets/puts", "simulated ms"],
        &rows,
    );
    println!(
        "\nReading: every stage boundary costs a container start plus an \
         object-store round trip for each crossing edge — vertical memory \
         (paper §4.5) is what buys fusion."
    );
}
