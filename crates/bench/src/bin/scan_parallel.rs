//! Parallel object-store scan pipeline: overlapped-wall-clock speedup and
//! metadata-cache effectiveness on the simulated S3 store.
//!
//! Sweeps scan parallelism ∈ {1,2,4,8,16} × cache {off,on} over a 24-file
//! identity-partitioned table. The store charges deterministic latency
//! (lognormal sigma = 0), so every number below is exactly reproducible; no
//! thread ever sleeps. For each configuration the query runs twice — cold
//! (empty cache) and warm (repeated query) — reporting the scan's
//! overlapped simulated wall clock, bytes actually moved from the store,
//! and the cache hit rate.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin scan_parallel --release`
//! (writes `BENCH_scan.json` in the working directory).

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use lakehouse_bench::print_rows;
use lakehouse_columnar::kernels::CmpOp;
use lakehouse_columnar::{Column, DataType, Field, RecordBatch, Schema, Value};
use lakehouse_store::{
    CachedStore, InMemoryStore, LatencyModel, ObjectStore, SimulatedStore, StoreMetrics,
};
use lakehouse_table::{PartitionSpec, ScanPredicate, SnapshotOperation, Table};
use std::sync::Arc;

const FILES: usize = 24;
const ROWS_PER_FILE: usize = 4_000;
const CACHE_BYTES: usize = 32 << 20;

type Cache = Arc<CachedStore<SimulatedStore<InMemoryStore>>>;

struct Fixture {
    store: Arc<dyn ObjectStore>,
    metrics: Arc<StoreMetrics>,
    location: String,
}

/// Build a fresh simulated store (+ optional cache) holding one table with
/// `FILES` partition files, then zero all counters and drop cached state so
/// the first query is cold.
fn fixture(cached: bool) -> Fixture {
    let sim = SimulatedStore::new(
        InMemoryStore::new(),
        LatencyModel {
            sigma: 0.0,
            ..LatencyModel::s3_like()
        },
    );
    let metrics = sim.metrics();
    let (store, cache): (Arc<dyn ObjectStore>, Option<Cache>) = if cached {
        let c = Arc::new(CachedStore::new(sim, CACHE_BYTES));
        (Arc::clone(&c) as Arc<dyn ObjectStore>, Some(c))
    } else {
        (Arc::new(sim), None)
    };

    let schema = Schema::new(vec![
        Field::new("zone", DataType::Utf8, false),
        Field::new("fare", DataType::Float64, false),
    ]);
    let zones: Vec<String> = (0..FILES)
        .flat_map(|f| std::iter::repeat_n(format!("zone_{f:02}"), ROWS_PER_FILE))
        .collect();
    let fares: Vec<f64> = (0..FILES * ROWS_PER_FILE)
        .map(|i| (i % 97) as f64 + 0.5)
        .collect();
    let batch = RecordBatch::try_new(
        schema.clone(),
        vec![
            Column::from_strs(zones.iter().map(String::as_str).collect()),
            Column::from_f64(fares),
        ],
    )
    .expect("fixture batch");

    let table = Table::create(
        Arc::clone(&store),
        "wh/scan_bench",
        &schema,
        PartitionSpec::identity("zone"),
    )
    .expect("create table");
    let mut tx = table.new_transaction(SnapshotOperation::Append);
    tx.write(&batch).expect("write");
    let (location, _) = tx.commit().expect("commit");

    // Setup traffic must not pollute the measurements.
    metrics.reset();
    if let Some(c) = &cache {
        c.clear();
    }
    Fixture {
        store,
        metrics,
        location,
    }
}

struct RunStats {
    wall_ms: f64,
    serial_ms: f64,
    bytes_read: u64,
    hit_rate: f64,
    rows: usize,
}

fn run_query(fx: &Fixture, parallelism: usize) -> RunStats {
    let m = &fx.metrics;
    let (gets0, hits0, miss0, bytes0, sim0) = (
        m.gets(),
        m.cache_hits(),
        m.cache_misses(),
        m.bytes_read(),
        m.simulated_time(),
    );
    let _ = gets0;
    let table = Table::load(Arc::clone(&fx.store), &fx.location).expect("load table");
    let (batch, report) = table
        .scan()
        .with_parallelism(parallelism)
        .with_predicate(ScanPredicate::new("fare", CmpOp::Lt, Value::Float64(90.0)))
        .select(&["zone", "fare"])
        .execute_with_report()
        .expect("scan");
    let lookups = (m.cache_hits() - hits0) + (m.cache_misses() - miss0);
    RunStats {
        wall_ms: report.wall_clock_simulated.as_secs_f64() * 1e3,
        serial_ms: (m.simulated_time() - sim0).as_secs_f64() * 1e3,
        bytes_read: m.bytes_read() - bytes0,
        hit_rate: if lookups == 0 {
            0.0
        } else {
            (m.cache_hits() - hits0) as f64 / lookups as f64
        },
        rows: batch.num_rows(),
    }
}

fn main() {
    println!("=== parallel scan pipeline over simulated S3 ({FILES} files) ===");
    let parallelisms = [1usize, 2, 4, 8, 16];
    let mut rows = Vec::new();
    let mut json_results = Vec::new();
    let mut baseline_cold_wall: Option<f64> = None;
    let mut summary_speedup_p8 = 0.0;
    let mut summary_warm_hit_rate = 0.0;

    for cached in [false, true] {
        for &p in &parallelisms {
            // Fresh fixture per config: cold numbers are truly cold and the
            // deterministic latency model makes configs comparable.
            let fx = fixture(cached);
            let cold = run_query(&fx, p);
            let warm = run_query(&fx, p);
            assert_eq!(cold.rows, warm.rows, "warm run changed the result");
            if !cached && p == 1 {
                baseline_cold_wall = Some(cold.wall_ms);
            }
            let speedup = baseline_cold_wall.map(|b| b / cold.wall_ms).unwrap_or(1.0);
            if !cached && p == 8 {
                summary_speedup_p8 = speedup;
            }
            if cached && p == 1 {
                summary_warm_hit_rate = warm.hit_rate;
            }
            rows.push(vec![
                if cached { "on" } else { "off" }.to_string(),
                format!("{p}"),
                format!("{:.1}", cold.wall_ms),
                format!("{:.2}x", speedup),
                format!("{:.1}", cold.serial_ms),
                format!("{}", cold.bytes_read),
                format!("{:.1}", warm.wall_ms),
                format!("{:.0}%", warm.hit_rate * 100.0),
            ]);
            json_results.push(format!(
                concat!(
                    "    {{\"cache\": {cached}, \"parallelism\": {p}, ",
                    "\"cold_wall_ms\": {cw:.3}, \"cold_serial_ms\": {cs:.3}, ",
                    "\"cold_bytes_read\": {cb}, \"cold_hit_rate\": {ch:.4}, ",
                    "\"warm_wall_ms\": {ww:.3}, \"warm_bytes_read\": {wb}, ",
                    "\"warm_hit_rate\": {wh:.4}, ",
                    "\"speedup_vs_serial_cold\": {sp:.3}, \"rows\": {rows}}}"
                ),
                cached = cached,
                p = p,
                cw = cold.wall_ms,
                cs = cold.serial_ms,
                cb = cold.bytes_read,
                ch = cold.hit_rate,
                ww = warm.wall_ms,
                wb = warm.bytes_read,
                wh = warm.hit_rate,
                sp = speedup,
                rows = cold.rows,
            ));
        }
    }

    print_rows(
        "overlapped simulated wall clock (cold) and repeat-query cache hit rate",
        &[
            "cache",
            "par",
            "cold wall ms",
            "speedup",
            "serial ms",
            "bytes read",
            "warm wall ms",
            "warm hits",
        ],
        &rows,
    );

    let json = format!(
        "{{\n  \"bench\": \"scan_parallel\",\n  \"files\": {FILES},\n  \"rows_per_file\": {ROWS_PER_FILE},\n  \"latency_model\": \"s3_like, sigma=0 (deterministic)\",\n  \"cache_capacity_bytes\": {CACHE_BYTES},\n  \"summary\": {{\n    \"speedup_p8_vs_p1_cache_off\": {summary_speedup_p8:.3},\n    \"warm_hit_rate_p1_cache_on\": {summary_warm_hit_rate:.4}\n  }},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_results.join(",\n")
    );
    std::fs::write("BENCH_scan.json", &json).expect("write BENCH_scan.json");
    println!("\nwrote BENCH_scan.json");
    println!(
        "speedup p=8 vs p=1 (cache off, cold): {summary_speedup_p8:.2}x; \
         warm hit rate (cache on, p=1): {:.0}%",
        summary_warm_hit_rate * 100.0
    );
}
