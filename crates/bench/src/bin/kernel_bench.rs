//! Kernel micro-benchmarks: the vectorized, dictionary-aware kernels vs the
//! retained scalar reference implementations (`kernels::reference`).
//!
//! Four kernel families — filter (compare + select), aggregate, hash, and
//! take/gather — each timed over the same seeded data, plus the late-
//! materialization case: an equality filter over a low-cardinality string
//! column kept dictionary-encoded (compare against the dictionary once,
//! scan u32 codes) vs eagerly decoded to plain strings.
//!
//! The speedup ratios are regression-asserted: filter and aggregate must
//! hold ≥4× over the scalar baseline, and the dictionary filter must beat
//! the decode-then-filter path. CI runs this as a smoke job.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin kernel_bench --release`
//! (writes `BENCH_kernels.json` in the working directory).

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use lakehouse_bench::print_rows;
use lakehouse_columnar::kernels::reference as scalar;
use lakehouse_columnar::kernels::{self, Aggregator, CmpOp};
use lakehouse_columnar::{Bitmap, Column, DataType, DictColumn, Field, RecordBatch, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const ROWS: usize = 1 << 20;
const DICT_CARDINALITY: usize = 16;
const WARMUP: usize = 2;
const TRIALS: usize = 7;

/// Median wall time of `TRIALS` runs (after warmup), in seconds.
fn bench<T>(mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..WARMUP {
        std::hint::black_box(f());
    }
    let mut times: Vec<f64> = (0..TRIALS)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Case {
    name: &'static str,
    fast_s: f64,
    slow_s: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.slow_s / self.fast_s.max(1e-12)
    }
}

fn main() {
    println!("=== vectorized kernels vs scalar reference ({ROWS} rows) ===");
    let mut rng = StdRng::seed_from_u64(0x6b65726e);

    let ints = Column::Int64(
        (0..ROWS).map(|_| rng.gen_range(-1000i64..1000)).collect(),
        Some(Bitmap::from_bools(
            &(0..ROWS).map(|_| rng.gen_bool(0.9)).collect::<Vec<_>>(),
        )),
    );
    let floats = Column::Float64(
        (0..ROWS).map(|_| rng.gen_range(-1000.0..1000.0)).collect(),
        None,
    );
    let strings: Vec<String> = (0..ROWS)
        .map(|_| format!("category_{:02}", rng.gen_range(0..DICT_CARDINALITY)))
        .collect();
    let dict = Column::Dict(DictColumn::encode(&strings, None).expect("encode"));
    let plain = Column::Utf8(strings, None);

    let threshold = Value::Int64(0);
    let needle = Value::Utf8("category_03".to_string());

    // -- filter: compare to scalar, build selection, gather survivors.
    let filter = Case {
        name: "filter i64 > 0",
        fast_s: bench(|| {
            let mask = kernels::cmp_column_scalar(CmpOp::Gt, &ints, &threshold).expect("cmp");
            let sel = kernels::to_selection(&mask).expect("selection");
            kernels::filter_column(&ints, &sel).expect("filter")
        }),
        slow_s: bench(|| {
            let mask = scalar::cmp_column_scalar_ref(CmpOp::Gt, &ints, &threshold).expect("cmp");
            let sel = scalar::to_selection_ref(&mask).expect("selection");
            scalar::filter_column_ref(&ints, &sel).expect("filter")
        }),
    };

    // -- aggregate: SUM over nullable ints + AVG over floats.
    let agg = Case {
        name: "agg sum+avg",
        fast_s: bench(|| {
            (
                kernels::aggregate_column(Aggregator::Sum, &ints).expect("sum"),
                kernels::aggregate_column(Aggregator::Avg, &floats).expect("avg"),
            )
        }),
        slow_s: bench(|| {
            (
                scalar::aggregate_column_ref(Aggregator::Sum, &ints).expect("sum"),
                scalar::aggregate_column_ref(Aggregator::Avg, &floats).expect("avg"),
            )
        }),
    };

    // -- hash: typed column hashing vs boxed per-value.
    let hash = Case {
        name: "hash i64+utf8",
        fast_s: bench(|| {
            (
                kernels::hash_column(&ints).expect("hash"),
                kernels::hash_column(&dict).expect("hash dict"),
            )
        }),
        slow_s: bench(|| {
            (
                scalar::hash_column_ref(&ints).expect("hash"),
                scalar::hash_column_ref(&plain).expect("hash plain"),
            )
        }),
    };

    // -- take: gather a 25% selection across a 3-column batch.
    let batch = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("i", DataType::Int64, true),
            Field::new("f", DataType::Float64, false),
            Field::new("s", DataType::Utf8, false),
        ]),
        vec![ints.clone(), floats.clone(), dict.clone()],
    )
    .expect("batch");
    let indices: Vec<usize> = (0..ROWS / 4).map(|_| rng.gen_range(0..ROWS)).collect();
    let take = Case {
        name: "take 25% of batch",
        fast_s: bench(|| kernels::take_batch(&batch, &indices).expect("take")),
        slow_s: bench(|| scalar::take_batch_ref(&batch, &indices).expect("take ref")),
    };

    // -- late materialization: equality filter on a low-cardinality string
    // column, dictionary-encoded (codes only) vs decoded to plain strings.
    let dict_filter = Case {
        name: "dict vs plain str filter",
        fast_s: bench(|| {
            let mask = kernels::cmp_column_scalar(CmpOp::Eq, &dict, &needle).expect("cmp");
            let sel = kernels::to_selection(&mask).expect("selection");
            kernels::filter_column(&dict, &sel).expect("filter")
        }),
        slow_s: bench(|| {
            let decoded = dict.materialize(); // eager decode, then filter
            let mask = kernels::cmp_column_scalar(CmpOp::Eq, &decoded, &needle).expect("cmp");
            let sel = kernels::to_selection(&mask).expect("selection");
            kernels::filter_column(&decoded, &sel).expect("filter")
        }),
    };

    let cases = [filter, agg, hash, take, dict_filter];
    print_rows(
        "vectorized kernels vs scalar reference (median of 7 trials)",
        &["kernel", "vectorized ms", "scalar ms", "speedup"],
        &cases
            .iter()
            .map(|c| {
                vec![
                    c.name.to_string(),
                    format!("{:.2}", c.fast_s * 1e3),
                    format!("{:.2}", c.slow_s * 1e3),
                    format!("{:.1}x", c.speedup()),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let entries: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{ \"kernel\": \"{}\", \"vectorized_ms\": {:.3}, \"scalar_ms\": {:.3}, \"speedup\": {:.2} }}",
                c.name,
                c.fast_s * 1e3,
                c.slow_s * 1e3,
                c.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"rows\": {ROWS},\n  \"dict_cardinality\": {DICT_CARDINALITY},\n  \"cases\": [\n{}\n  ],\n  \"asserts\": {{\n    \"filter_speedup_min\": 4.0,\n    \"agg_speedup_min\": 4.0,\n    \"dict_filter_speedup_min\": 1.0\n  }}\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json");

    // Regression gates (CI smoke): the vectorized kernels must hold their
    // headroom over the scalar baseline, and the dictionary-aware filter
    // must beat decode-then-filter.
    let by_name = |name: &str| cases.iter().find(|c| c.name == name).expect("case");
    assert!(
        by_name("filter i64 > 0").speedup() >= 4.0,
        "filter regression: {:.1}x < 4x",
        by_name("filter i64 > 0").speedup()
    );
    assert!(
        by_name("agg sum+avg").speedup() >= 4.0,
        "aggregate regression: {:.1}x < 4x",
        by_name("agg sum+avg").speedup()
    );
    assert!(
        by_name("dict vs plain str filter").speedup() >= 1.0,
        "dictionary filter slower than decode-then-filter: {:.2}x",
        by_name("dict vs plain str filter").speedup()
    );
    println!("regression gates passed (filter/agg >= 4x, dict filter >= 1x)");
}
