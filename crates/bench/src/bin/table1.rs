//! **Table 1**: use cases × environment × interaction modality.
//!
//! | Use case                  | Env  | Mode           |
//! |---------------------------|------|----------------|
//! | Querying + Wrangling      | Dev  | Synch          |
//! | Querying + Wrangling      | Prod | Synch          |
//! | Transforming + Deploying  | Dev  | Synch + Asynch |
//! | Transforming + Deploying  | Prod | Asynch         |
//!
//! Reproduction: exercise each cell end-to-end on the platform — synchronous
//! queries on a dev branch and on main, a synchronous dev run, an
//! asynchronous dev run, and an asynchronous production run — and report
//! support plus measured simulated latency.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin table1`

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use bauplan_core::{LakehouseConfig, RunOptions};
use lakehouse_bench::{print_rows, taxi_lakehouse, taxi_pipeline};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    println!("=== Table 1: use cases and interaction modalities ===");
    let lh = Arc::new(taxi_lakehouse(20_000, LakehouseConfig::default()));
    let mut rows = Vec::new();

    // Dev branch for the Dev cells.
    lh.create_branch("feat_1", Some("main")).expect("branch");

    // --- QW / Dev / Synch: interactive query on the dev branch.
    let t = Instant::now();
    let out = lh
        .query(
            "SELECT pickup_location_id, COUNT(*) AS n FROM taxi_table \
             GROUP BY pickup_location_id ORDER BY n DESC LIMIT 3",
            "feat_1",
        )
        .expect("dev query");
    rows.push(vec![
        "Querying + Wrangling".into(),
        "Dev".into(),
        "Synch".into(),
        "supported".into(),
        format!(
            "{} rows in {:.1} ms wall",
            out.num_rows(),
            t.elapsed().as_secs_f64() * 1e3
        ),
    ]);

    // --- QW / Prod / Synch: same, against main.
    let t = Instant::now();
    let out = lh
        .query("SELECT COUNT(*) AS trips FROM taxi_table", "main")
        .expect("prod query");
    rows.push(vec![
        "Querying + Wrangling".into(),
        "Prod".into(),
        "Synch".into(),
        "supported".into(),
        format!(
            "{} rows in {:.1} ms wall",
            out.num_rows(),
            t.elapsed().as_secs_f64() * 1e3
        ),
    ]);

    // --- TD / Dev / Synch: blocking run on the dev branch.
    let report = lh
        .run(&taxi_pipeline(), &RunOptions::on_branch("feat_1"))
        .expect("sync dev run");
    rows.push(vec![
        "Transforming + Deploying".into(),
        "Dev".into(),
        "Synch".into(),
        "supported".into(),
        format!(
            "run {} merged, {:.0} ms simulated",
            report.run_id,
            report.simulated_total.as_secs_f64() * 1e3
        ),
    ]);

    // --- TD / Dev / Asynch: detached run on the dev branch.
    let handle = lh.run_async(taxi_pipeline(), RunOptions::on_branch("feat_1"));
    let report = handle.wait().expect("async dev run");
    rows.push(vec![
        "Transforming + Deploying".into(),
        "Dev".into(),
        "Asynch".into(),
        "supported".into(),
        format!(
            "run {} merged, {:.0} ms simulated",
            report.run_id,
            report.simulated_total.as_secs_f64() * 1e3
        ),
    ]);

    // --- TD / Prod / Asynch: orchestrator-style production run.
    let handle = lh.run_async(taxi_pipeline(), RunOptions::on_branch("main"));
    let report = handle.wait().expect("async prod run");
    rows.push(vec![
        "Transforming + Deploying".into(),
        "Prod".into(),
        "Asynch".into(),
        "supported".into(),
        format!(
            "run {} merged, {:.0} ms simulated",
            report.run_id,
            report.simulated_total.as_secs_f64() * 1e3
        ),
    ]);

    print_rows(
        "Table 1 (measured)",
        &["Use case", "Env", "Mode", "Status", "Evidence"],
        &rows,
    );
    println!(
        "\nAll four paper cells exercised end-to-end; artifacts on main: {:?}",
        lh.list_tables("main").expect("tables")
    );
}
