//! Overload soak: multi-tenant admission control, quotas, shedding, and
//! deadlines under chaos — the robustness counterpart of `chaos_soak`.
//!
//! Three tenants (per-tenant `Lakehouse` handles over ONE shared backend,
//! sharing ONE `AdmissionController` — the paper's multi-tenant premise)
//! replay `lakehouse-workload` query histories at 4x the gate's slot
//! capacity, with a seeded 5%-fault chaos layer and 8 retries underneath.
//! One tenant is deliberately pathological: it floods with zero think time
//! from twice as many threads.
//!
//! The run *asserts* the scheduler invariants the issue demands:
//!
//! - every submission ends in exactly one typed outcome — completed,
//!   `Overloaded { retry_after }`, or `QueryKilled { reason }`;
//! - the greedy tenant's concurrency never exceeds its slot quota, and
//!   platform concurrency never exceeds the gate width;
//! - overload sheds (`shed > 0`) instead of queueing unboundedly;
//! - polite tenants' p99 stays bounded relative to their solo baseline —
//!   the quota, not the greedy tenant, decides their tail;
//! - completed queries remain byte-identical to an uncontended,
//!   enforcement-free run;
//! - with a deadline armed under heavy throttling, queries die promptly
//!   (typed `deadline` kills, wall-bounded) instead of honoring 10 s
//!   server retry-after hints.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin overload_soak --release`
//! (writes `BENCH_sched.json`). `--trials` scales per-thread submissions.

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use bauplan_core::{
    AdmissionConfig, AdmissionController, BauplanError, Lakehouse, LakehouseConfig, PolicyKind,
};
use lakehouse_bench::print_rows;
use lakehouse_columnar::{Column, DataType, Field, RecordBatch, Schema};
use lakehouse_store::{ChaosConfig, InMemoryStore, LatencyModel, ObjectStore};
use lakehouse_table::PartitionSpec;
use lakehouse_workload::{CompanyProfile, QueryHistory};
use std::sync::Arc;
use std::time::{Duration, Instant};

const AGG_SQL: &str = "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM events \
                       WHERE val < 1.0e9 GROUP BY grp ORDER BY grp";
const FILES: usize = 12;
const ROWS_PER: usize = 200;
const RETRY_MAX: u32 = 8;
const FAULT_P: f64 = 0.05;
/// Gate shape: 2 slots, 1 per tenant, short bounded queue.
const SLOTS: usize = 2;
const TENANT_SLOTS: usize = 1;
const QUEUE_CAP: usize = 4;
const QUEUE_DEADLINE_MS: u64 = 60;
/// Submitter threads per tenant — 8 threads against 2 slots is the issue's
/// "4x slot capacity" overload.
const POLITE_THREADS: usize = 2;
const GREEDY_THREADS: usize = 4;

fn events_batch() -> RecordBatch {
    let total = FILES * ROWS_PER;
    RecordBatch::try_new(
        Schema::new(vec![
            Field::new("part", DataType::Int64, false),
            Field::new("grp", DataType::Int64, false),
            Field::new("val", DataType::Float64, false),
        ]),
        vec![
            Column::from_i64((0..total).map(|i| (i / ROWS_PER) as i64).collect()),
            Column::from_i64((0..total).map(|i| (i % 7) as i64).collect()),
            Column::from_f64((0..total).map(|i| i as f64 * 0.5).collect()),
        ],
    )
    .expect("fixture batch")
}

/// A tenant's front: its own chaos/retry stack and tenant label over the
/// shared backend, sharing the platform-wide admission gate.
fn tenant_front(
    backend: &Arc<dyn ObjectStore>,
    gate: &AdmissionController,
    tenant: &str,
    chaos_seed: u64,
) -> Arc<Lakehouse> {
    let config = LakehouseConfig {
        latency: LatencyModel::zero(),
        tenant: tenant.into(),
        chaos: Some(ChaosConfig::new(chaos_seed).with_fault_p(FAULT_P)),
        retry_max: RETRY_MAX,
        ..Default::default()
    };
    let mut lh = Lakehouse::with_store(Arc::clone(backend), config).expect("tenant front");
    lh.set_admission(Some(gate.clone()));
    Arc::new(lh)
}

fn percentile(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[((samples.len() - 1) as f64 * q).round() as usize]
}

/// Per-submission think times (milliseconds) drawn from a company's query
/// history: replaying the paper's power-law arrival shape, compressed so a
/// month fits in a soak.
fn think_times_ms(profile: &CompanyProfile, n: usize, seed: u64) -> Vec<u64> {
    QueryHistory::generate(profile, seed)
        .sample(n, seed ^ 0x51ED)
        .queries
        .iter()
        .map(|q| (q.seconds * 2.0).min(8.0) as u64)
        .collect()
}

#[derive(Default)]
struct Outcomes {
    wall_ns: Vec<u64>,
    completed: usize,
    shed: usize,
    killed: usize,
}

/// One submitter thread's loop: every submission must end in exactly one
/// typed outcome; anything else aborts the soak.
fn submit_loop(
    lh: &Lakehouse,
    expected: &RecordBatch,
    trials: usize,
    think_ms: &[u64],
) -> Outcomes {
    let mut out = Outcomes::default();
    for i in 0..trials {
        let t = Instant::now();
        match lh.query(AGG_SQL, "main") {
            Ok(batch) => {
                out.wall_ns.push(t.elapsed().as_nanos() as u64);
                assert_eq!(
                    &batch, expected,
                    "a completed query under overload must stay byte-identical"
                );
                out.completed += 1;
            }
            Err(BauplanError::Overloaded { retry_after }) => {
                assert!(
                    retry_after >= Duration::from_millis(1),
                    "shed must carry a usable retry-after hint"
                );
                out.shed += 1;
            }
            Err(BauplanError::QueryKilled { .. }) => out.killed += 1,
            Err(other) => panic!("untyped outcome under overload: {other}"),
        }
        if let Some(ms) = think_ms.get(i).copied().filter(|&ms| ms > 0) {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
    out
}

struct TenantReport {
    tenant: &'static str,
    solo_p50_ns: u64,
    solo_p99_ns: u64,
    over_p50_ns: u64,
    over_p99_ns: u64,
    submitted: usize,
    completed: usize,
    shed: usize,
    killed: usize,
    peak_running: usize,
}

fn parse_trials() -> usize {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.as_slice() {
        [] => 12,
        [flag, v] if flag == "--trials" => v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("--trials expects a number, got {v}"))
            .max(2),
        other => panic!("unknown arguments: {other:?}"),
    }
}

fn main() {
    let trials = parse_trials();
    println!(
        "=== overload soak: 3 tenants x {} threads on {SLOTS} slots \
         (quota {TENANT_SLOTS}/tenant, queue {QUEUE_CAP} x {QUEUE_DEADLINE_MS} ms), \
         fault p = {FAULT_P}, {trials} submissions/thread ===",
        POLITE_THREADS * 2 + GREEDY_THREADS
    );

    // Uncontended, enforcement-free reference result for byte-identity.
    let reference = {
        let lh = Lakehouse::in_memory(LakehouseConfig::zero_latency()).expect("reference");
        lh.create_table_partitioned(
            "events",
            &events_batch(),
            "main",
            PartitionSpec::identity("part"),
        )
        .expect("reference ingest");
        lh.query(AGG_SQL, "main").expect("reference query")
    };

    // The shared platform: one backend, one gate, three tenant fronts.
    let backend: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let gate = AdmissionController::new(AdmissionConfig {
        max_slots: SLOTS,
        tenant_slots: TENANT_SLOTS,
        queue_cap: QUEUE_CAP,
        queue_deadline: Duration::from_millis(QUEUE_DEADLINE_MS),
        policy: PolicyKind::Fifo,
        weights: Vec::new(),
    });
    let alpha = tenant_front(&backend, &gate, "alpha", 0xA1FA);
    let beta = tenant_front(&backend, &gate, "beta", 0xBE7A);
    let greedy = tenant_front(&backend, &gate, "greedy", 0x6EED);
    alpha
        .create_table_partitioned(
            "events",
            &events_batch(),
            "main",
            PartitionSpec::identity("part"),
        )
        .expect("shared ingest (retried under chaos)");

    // Solo baselines: each tenant alone on the platform.
    let profiles = CompanyProfile::paper_companies();
    let mut solo: Vec<(u64, u64)> = Vec::new();
    for lh in [&alpha, &beta, &greedy] {
        let mut wall = Vec::with_capacity(trials);
        for _ in 0..trials {
            let t = Instant::now();
            let batch = lh.query(AGG_SQL, "main").expect("solo query");
            wall.push(t.elapsed().as_nanos() as u64);
            assert_eq!(batch, reference, "solo queries are byte-identical");
        }
        solo.push((percentile(&mut wall, 0.50), percentile(&mut wall, 0.99)));
    }

    // Overload: 8 submitter threads against 2 slots. Polite tenants replay
    // history think times; the greedy tenant floods from twice the threads
    // with no think time at all.
    let spawn = |lh: &Arc<Lakehouse>, threads: usize, think: Vec<u64>| {
        (0..threads)
            .map(|_| {
                let lh = Arc::clone(lh);
                let expected = reference.clone();
                let think = think.clone();
                std::thread::spawn(move || submit_loop(&lh, &expected, trials, &think))
            })
            .collect::<Vec<_>>()
    };
    let handles = [
        spawn(
            &alpha,
            POLITE_THREADS,
            think_times_ms(&profiles[0], trials, 1),
        ),
        spawn(
            &beta,
            POLITE_THREADS,
            think_times_ms(&profiles[1], trials, 2),
        ),
        spawn(&greedy, GREEDY_THREADS, Vec::new()),
    ];
    let mut merged: Vec<Outcomes> = Vec::new();
    for tenant_handles in handles {
        let mut acc = Outcomes::default();
        for h in tenant_handles {
            let out = h.join().expect("submitter thread");
            acc.wall_ns.extend(out.wall_ns);
            acc.completed += out.completed;
            acc.shed += out.shed;
            acc.killed += out.killed;
        }
        merged.push(acc);
    }

    let tenants = ["alpha", "beta", "greedy"];
    let threads = [POLITE_THREADS, POLITE_THREADS, GREEDY_THREADS];
    let mut reports = Vec::new();
    for (i, mut out) in merged.into_iter().enumerate() {
        let submitted = threads[i] * trials;
        assert_eq!(
            out.completed + out.shed + out.killed,
            submitted,
            "{}: every submission ends in exactly one typed outcome",
            tenants[i]
        );
        reports.push(TenantReport {
            tenant: tenants[i],
            solo_p50_ns: solo[i].0,
            solo_p99_ns: solo[i].1,
            over_p50_ns: percentile(&mut out.wall_ns, 0.50),
            over_p99_ns: percentile(&mut out.wall_ns, 0.99),
            submitted,
            completed: out.completed,
            shed: out.shed,
            killed: out.killed,
            peak_running: gate.peak_running(tenants[i]),
        });
    }

    print_rows(
        "multi-tenant overload at 4x slot capacity (seeded chaos underneath)",
        &[
            "tenant",
            "solo p99 (ms)",
            "overload p50 (ms)",
            "overload p99 (ms)",
            "completed",
            "shed",
            "peak slots",
        ],
        &reports
            .iter()
            .map(|r| {
                vec![
                    r.tenant.to_string(),
                    format!("{:.3}", r.solo_p99_ns as f64 / 1e6),
                    format!("{:.3}", r.over_p50_ns as f64 / 1e6),
                    format!("{:.3}", r.over_p99_ns as f64 / 1e6),
                    format!("{}/{}", r.completed, r.submitted),
                    format!("{}", r.shed),
                    format!("{}", r.peak_running),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // ---- scheduler invariants -------------------------------------------
    assert!(
        gate.peak_total() <= SLOTS,
        "platform concurrency {} exceeded the {SLOTS}-slot gate",
        gate.peak_total()
    );
    for r in &reports {
        assert!(
            r.peak_running <= TENANT_SLOTS,
            "{}: peak concurrency {} exceeded its quota of {TENANT_SLOTS}",
            r.tenant,
            r.peak_running
        );
        assert!(r.completed > 0, "{}: starved outright", r.tenant);
    }
    let total_shed: usize = reports.iter().map(|r| r.shed).sum();
    assert!(
        total_shed > 0,
        "4x overload on a bounded queue must shed, not absorb"
    );
    // The quota — not the greedy flood — decides the polite tenants' tail:
    // a completed query waits at most one queue window before running, so
    // p99 stays within a generous constant of solo p99.
    for r in reports.iter().take(2) {
        let bound = (20 * r.solo_p99_ns).max(250_000_000);
        assert!(
            r.over_p99_ns <= bound,
            "{}: overload p99 {} ns blew past bound {} ns — greedy tenant \
             starved a polite one",
            r.tenant,
            r.over_p99_ns,
            bound
        );
    }

    // ---- deadline phase: kills stay prompt under pathological throttling --
    let deadline_ms = 80u64;
    let mut throttle = ChaosConfig::new(0xDEAD).with_throttle_p(0.9);
    throttle.throttle_retry_after = Duration::from_secs(10);
    let config = LakehouseConfig {
        latency: LatencyModel::zero(),
        chaos: Some(throttle),
        retry_max: 1000,
        retry_budget_ms: 1_000_000_000,
        query_timeout_ms: deadline_ms,
        ..Default::default()
    };
    let lh = Lakehouse::in_memory(config).expect("deadline lakehouse");
    lh.create_table_partitioned(
        "events",
        &events_batch(),
        "main",
        PartitionSpec::identity("part"),
    )
    .expect("deadline-phase ingest");
    let mut deadline_kills = 0usize;
    let mut max_wall = Duration::ZERO;
    for _ in 0..trials {
        let t = Instant::now();
        match lh.query(AGG_SQL, "main") {
            Ok(batch) => assert_eq!(batch, reference, "survivors stay byte-identical"),
            Err(BauplanError::QueryKilled { reason }) => {
                assert_eq!(
                    reason,
                    lakehouse_obs::KillReason::Deadline,
                    "the only legal kill here is the deadline"
                );
                deadline_kills += 1;
            }
            Err(other) => panic!("untyped outcome in the deadline phase: {other}"),
        }
        max_wall = max_wall.max(t.elapsed());
    }
    assert!(
        deadline_kills > trials / 2,
        "90% throttling against an 80 ms deadline must kill most queries \
         ({deadline_kills}/{trials} killed)"
    );
    // Backoff is simulated and capped at the remaining deadline, so even a
    // 10 s server hint cannot hold a dying query on the wall clock.
    assert!(
        max_wall < Duration::from_secs(2),
        "a deadline kill took {max_wall:?} of wall time — not prompt"
    );

    // ---- fair-share phase: weighted DRR splits a saturated gate 3:1 -------
    // One slot, two tenants hammering it from three threads each with no
    // think time; alpha weighs 3, beta weighs 1. Virtual-time fair share
    // must hand out admissions in that ratio to within ±15%.
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    let fs_gate = AdmissionController::new(AdmissionConfig {
        max_slots: 1,
        tenant_slots: 0,
        queue_cap: 64,
        queue_deadline: Duration::from_secs(30),
        policy: PolicyKind::FairShare,
        weights: vec![("alpha".into(), 3.0), ("beta".into(), 1.0)],
    });
    let stop = Arc::new(AtomicBool::new(false));
    let mut fs_counts: Vec<(Arc<AtomicUsize>, Vec<std::thread::JoinHandle<()>>)> = Vec::new();
    for tenant in ["alpha", "beta"] {
        let done = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let gate = fs_gate.clone();
                let stop = Arc::clone(&stop);
                let done = Arc::clone(&done);
                let tenant = tenant.to_string();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if let Ok(permit) = gate.acquire_item(&tenant, 0.0) {
                            std::thread::sleep(Duration::from_millis(1));
                            drop(permit);
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        fs_counts.push((done, handles));
    }
    std::thread::sleep(Duration::from_millis(450));
    stop.store(true, Ordering::SeqCst);
    let mut fs_totals = Vec::new();
    for (done, handles) in fs_counts {
        for h in handles {
            h.join().expect("fair-share submitter");
        }
        fs_totals.push(done.load(Ordering::SeqCst));
    }
    let (fs_alpha, fs_beta) = (fs_totals[0], fs_totals[1]);
    let fs_ratio = fs_alpha as f64 / fs_beta.max(1) as f64;
    println!(
        "fair-share phase: alpha {fs_alpha} vs beta {fs_beta} admissions \
         (ratio {fs_ratio:.2}, weights 3:1)"
    );
    assert!(
        (2.55..=3.45).contains(&fs_ratio),
        "fair-share ratio {fs_ratio:.2} strayed more than 15% from the \
         configured 3:1 ({fs_alpha} vs {fs_beta})"
    );

    let tenant_json: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "    {{ \"tenant\": \"{}\", \"solo_p50_ns\": {}, \"solo_p99_ns\": {}, \
                 \"overload_p50_ns\": {}, \"overload_p99_ns\": {}, \"submitted\": {}, \
                 \"completed\": {}, \"shed\": {}, \"killed\": {}, \"peak_running\": {} }}",
                r.tenant,
                r.solo_p50_ns,
                r.solo_p99_ns,
                r.over_p50_ns,
                r.over_p99_ns,
                r.submitted,
                r.completed,
                r.shed,
                r.killed,
                r.peak_running
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"overload_soak\",\n  \"slots\": {SLOTS},\n  \"tenant_slots\": {TENANT_SLOTS},\n  \"queue_cap\": {QUEUE_CAP},\n  \"queue_deadline_ms\": {QUEUE_DEADLINE_MS},\n  \"fault_p\": {FAULT_P},\n  \"retry_max\": {RETRY_MAX},\n  \"submitter_threads\": {},\n  \"trials_per_thread\": {trials},\n  \"tenants\": [\n{}\n  ],\n  \"peak_total\": {},\n  \"total_shed\": {total_shed},\n  \"deadline_phase\": {{\n    \"deadline_ms\": {deadline_ms},\n    \"trials\": {trials},\n    \"deadline_kills\": {deadline_kills},\n    \"max_wall_ms\": {}\n  }},\n  \"fair_share\": {{\n    \"slots\": 1,\n    \"threads_per_tenant\": 3,\n    \"weights\": {{ \"alpha\": 3.0, \"beta\": 1.0 }},\n    \"alpha_admitted\": {fs_alpha},\n    \"beta_admitted\": {fs_beta},\n    \"ratio\": {fs_ratio:.3},\n    \"ratio_within_15pct\": true\n  }},\n  \"summary\": {{\n    \"typed_outcomes_exhaustive\": true,\n    \"quotas_held\": true,\n    \"byte_identical_completions\": true,\n    \"kills_prompt\": true,\n    \"fair_share_ratio_held\": true\n  }}\n}}\n",
        POLITE_THREADS * 2 + GREEDY_THREADS,
        tenant_json.join(",\n"),
        gate.peak_total(),
        max_wall.as_millis(),
    );
    std::fs::write("BENCH_sched.json", &json).expect("write BENCH_sched.json");
    println!("\nwrote BENCH_sched.json");
    println!(
        "quotas held (peak {}/{SLOTS} total), {total_shed} shed, \
         {deadline_kills}/{trials} deadline kills (max wall {max_wall:?})",
        gate.peak_total()
    );
}
