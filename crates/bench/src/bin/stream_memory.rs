//! Streaming executor peak memory vs. the materialized baseline, and LIMIT
//! early termination, over a multi-file identity-partitioned table.
//!
//! Builds the same `events` table (`--files N` identity partitions of
//! `--rows N` rows each) in two lakehouses — one executing queries through
//! the streaming pipeline, one materializing — and runs an identical
//! scan-filter-aggregate query through both. The streaming pipeline holds a
//! few file batches plus aggregate state; the materialized path holds the
//! whole filtered table. Both must return byte-identical results, with the
//! streaming peak at most half the materialized peak (asserted). A `LIMIT 1`
//! query then demonstrates early termination: the scan is abandoned after
//! the first file batch, observable in both the batch count and object-store
//! GETs.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin stream_memory --release`
//! (writes `BENCH_stream.json` in the working directory). `--files` and
//! `--rows` override the table shape (defaults 24 × 4000).

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use bauplan_core::{Lakehouse, LakehouseConfig};
use lakehouse_bench::print_rows;
use lakehouse_columnar::{Column, DataType, Field, RecordBatch, Schema};
use lakehouse_store::LatencyModel;
use lakehouse_table::PartitionSpec;

const AGG_SQL: &str = "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM events \
                       WHERE val < 1.0e9 GROUP BY grp ORDER BY grp";

/// A lakehouse whose `events` table spans `files` identity-partition data
/// files of `rows_per` rows each.
fn build(files: usize, rows_per: usize, streaming: bool) -> Lakehouse {
    let config = LakehouseConfig {
        latency: LatencyModel {
            sigma: 0.0,
            ..LatencyModel::s3_like()
        },
        stream_execution: streaming,
        // One pipeline batch per data file: isolate file-level streaming.
        stream_batch_rows: 1 << 20,
        ..Default::default()
    };
    let lh = Lakehouse::in_memory(config).expect("lakehouse");
    let total = files * rows_per;
    let batch = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("part", DataType::Int64, false),
            Field::new("grp", DataType::Int64, false),
            Field::new("val", DataType::Float64, false),
        ]),
        vec![
            Column::from_i64((0..total).map(|i| (i / rows_per) as i64).collect()),
            Column::from_i64((0..total).map(|i| (i % 7) as i64).collect()),
            Column::from_f64((0..total).map(|i| i as f64 * 0.5).collect()),
        ],
    )
    .expect("fixture batch");
    lh.create_table_partitioned("events", &batch, "main", PartitionSpec::identity("part"))
        .expect("create table");
    lh
}

fn parse_args() -> (usize, usize) {
    let mut files = 24usize;
    let mut rows = 4_000usize;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let parse = |v: Option<&String>, flag: &str| -> usize {
            v.and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("{flag} expects a number"))
        };
        match argv[i].as_str() {
            "--files" => {
                files = parse(argv.get(i + 1), "--files").max(2);
                i += 1;
            }
            "--rows" => {
                rows = parse(argv.get(i + 1), "--rows").max(1);
                i += 1;
            }
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }
    (files, rows)
}

fn main() {
    let (files, rows_per) = parse_args();
    println!("=== streaming executor memory over {files} files x {rows_per} rows ===");

    let lh_stream = build(files, rows_per, true);
    let lh_mat = build(files, rows_per, false);

    // Scan-filter-aggregate through both executors.
    let (got, stream_report) = lh_stream
        .query_with_report(AGG_SQL, "main")
        .expect("streaming query");
    let (expected, mat_report) = lh_mat
        .query_with_report(AGG_SQL, "main")
        .expect("materialized query");
    assert_eq!(got, expected, "streaming result diverged from materialized");
    let peak_ratio = stream_report.peak_bytes as f64 / mat_report.peak_bytes as f64;
    assert!(
        peak_ratio <= 0.5,
        "streaming peak {} is {:.0}% of materialized {}; must be <= 50%",
        stream_report.peak_bytes,
        peak_ratio * 100.0,
        mat_report.peak_bytes
    );

    // LIMIT early termination: file batches pulled and store GETs, full scan
    // vs. LIMIT 1 on the streaming lakehouse.
    let metrics = lh_stream.store_metrics();
    let gets0 = metrics.gets();
    let (_, full_report) = lh_stream
        .query_with_report("SELECT grp FROM events", "main")
        .expect("full scan");
    let full_gets = metrics.gets() - gets0;
    assert_eq!(
        full_report.batches_streamed, files,
        "full scan pulls every file batch"
    );
    let gets1 = metrics.gets();
    let (limited, limit_report) = lh_stream
        .query_with_report("SELECT grp FROM events LIMIT 1", "main")
        .expect("limit scan");
    let limit_gets = metrics.gets() - gets1;
    assert_eq!(limited.num_rows(), 1);
    assert!(
        limit_report.batches_streamed < files,
        "LIMIT 1 pulled {} of {files} file batches; expected early termination",
        limit_report.batches_streamed
    );
    assert!(
        limit_gets < full_gets,
        "LIMIT 1 issued {limit_gets} GETs vs {full_gets} for the full scan"
    );

    print_rows(
        "peak working set (scan-filter-aggregate) and LIMIT early termination",
        &["metric", "streaming", "materialized"],
        &[
            vec![
                "peak bytes".into(),
                format!("{}", stream_report.peak_bytes),
                format!("{}", mat_report.peak_bytes),
            ],
            vec![
                "scan batches".into(),
                format!("{}", stream_report.batches_streamed),
                format!("{}", mat_report.batches_streamed),
            ],
            vec![
                "peak ratio".into(),
                format!("{:.1}%", peak_ratio * 100.0),
                "100%".into(),
            ],
            vec![
                "LIMIT 1 batches".into(),
                format!("{} of {files}", limit_report.batches_streamed),
                "-".into(),
            ],
            vec![
                "LIMIT 1 GETs".into(),
                format!("{limit_gets} (full scan: {full_gets})"),
                "-".into(),
            ],
        ],
    );

    let json = format!(
        "{{\n  \"bench\": \"stream_memory\",\n  \"files\": {files},\n  \"rows_per_file\": {rows_per},\n  \"query\": \"scan-filter-aggregate\",\n  \"summary\": {{\n    \"streaming_peak_bytes\": {sp},\n    \"materialized_peak_bytes\": {mp},\n    \"peak_ratio\": {pr:.4},\n    \"results_identical\": true,\n    \"limit_batches_streamed\": {lb},\n    \"limit_gets\": {lg},\n    \"full_scan_gets\": {fg}\n  }},\n  \"results\": [\n    {{\"mode\": \"streaming\", \"peak_bytes\": {sp}, \"batches_streamed\": {sb}, \"rows\": {rows}}},\n    {{\"mode\": \"materialized\", \"peak_bytes\": {mp}, \"batches_streamed\": {mb}, \"rows\": {rows}}}\n  ]\n}}\n",
        sp = stream_report.peak_bytes,
        mp = mat_report.peak_bytes,
        pr = peak_ratio,
        lb = limit_report.batches_streamed,
        lg = limit_gets,
        fg = full_gets,
        sb = stream_report.batches_streamed,
        mb = mat_report.batches_streamed,
        rows = got.num_rows(),
    );
    std::fs::write("BENCH_stream.json", &json).expect("write BENCH_stream.json");
    println!("\nwrote BENCH_stream.json");
    println!(
        "streaming peak is {:.1}% of materialized; LIMIT 1 read {} of {files} file batches",
        peak_ratio * 100.0,
        limit_report.batches_streamed
    );
}
