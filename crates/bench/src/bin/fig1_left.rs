//! **Figure 1 (left)**: log-log CCDF of SQL query times for three companies,
//! empirical (solid in the paper) and power-law fit (dotted).
//!
//! Reproduction: generate a month of synthetic query history per company
//! profile, fit with the Clauset MLE + KS-minimizing xmin procedure (same
//! algorithm as the `powerlaw` package the paper used), and print both
//! curves plus the fit parameters.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin fig1_left`

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use lakehouse_bench::{print_rows, print_series};
use lakehouse_workload::ccdf::{ccdf_points, fitted_ccdf, log_downsample};
use lakehouse_workload::{fit_power_law, CompanyProfile, QueryHistory};

fn main() {
    println!("=== Figure 1 (left): CCDF of SQL query times, 3 companies ===");
    let mut fit_rows = Vec::new();
    for (i, profile) in CompanyProfile::paper_companies().iter().enumerate() {
        let history = QueryHistory::generate(profile, 100 + i as u64);
        let times = history.times();
        let fit = fit_power_law(&times).expect("fit succeeds on power-law data");
        let within_10s = history.fraction_within(10.0);
        fit_rows.push(vec![
            profile.name.clone(),
            format!("{}", times.len()),
            format!("{:.3}", fit.alpha),
            format!("{:.3}", fit.xmin),
            format!("{:.4}", fit.ks),
            format!("{:.1}%", within_10s * 100.0),
        ]);

        let empirical = log_downsample(&ccdf_points(&times), 40);
        print_series(
            &format!("{} — empirical CCDF (log-log)", profile.name),
            "seconds",
            "P(X >= x)",
            &empirical,
        );
        let max_t = times.iter().copied().fold(0.0f64, f64::max);
        let fitted = fitted_ccdf(&fit, max_t, 20);
        print_series(
            &format!("{} — fitted CCDF (alpha={:.2})", profile.name, fit.alpha),
            "seconds",
            "P(X >= x)",
            &fitted,
        );
    }
    print_rows(
        "Power-law fits (paper: power-law-like behavior holds for all companies)",
        &["company", "queries", "alpha", "xmin_s", "KS", "within 10s"],
        &fit_rows,
    );
    println!(
        "\nPaper claim check: \"a good chunk of the queries being run in the \
         10^0–10^1 seconds range\" — see the 'within 10s' column above."
    );
}
