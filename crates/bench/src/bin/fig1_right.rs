//! **Figure 1 (right)**: cumulative credit cost (y) of running queries up to
//! a given bytes-scanned percentile (x); the paper marks the 80th percentile
//! (≈750 MB for the design partner) accounting for ~80% of all credit usage.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin fig1_right`

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use lakehouse_bench::{print_rows, print_series};
use lakehouse_workload::cost::{
    cost_fraction_at_percentile, cumulative_cost_curve, cumulative_curve_by, CostModel,
};
use lakehouse_workload::powerlaw::quantile;
use lakehouse_workload::{CompanyProfile, QueryHistory};

fn main() {
    println!("=== Figure 1 (right): cumulative cost vs bytes-scanned percentile ===");
    let history = QueryHistory::generate(&CompanyProfile::design_partner(), 42);
    let model = CostModel::default();

    let curve = cumulative_cost_curve(&history, &model, 20);
    print_series(
        "cumulative cost curve (min-billing model, as deployed warehouses bill)",
        "bytes percentile",
        "cost fraction",
        &curve,
    );

    let p80_bytes = quantile(&history.bytes(), 0.8);
    let p80_cost = cost_fraction_at_percentile(&history, &model, 0.8);
    print_rows(
        "Key points",
        &["quantity", "value"],
        &[
            vec![
                "p80 bytes scanned".into(),
                format!("{:.0} MB (paper: ~750 MB)", p80_bytes / 1e6),
            ],
            vec![
                "cost share of bottom 80%".into(),
                format!("{:.1}% (paper: ~80%)", p80_cost * 100.0),
            ],
        ],
    );

    // Ablation: a purely bytes-proportional billing model (shape depends on
    // the billing model, not the data — documents why the curve is near the
    // diagonal).
    let per_byte = CostModel::per_byte(1.0 / 1e12);
    let ablation = cumulative_curve_by(&history, 20, |q| per_byte.query_cost(q));
    print_series(
        "ablation: bytes-proportional billing (no minimum slice)",
        "bytes percentile",
        "cost fraction",
        &ablation,
    );
    println!(
        "\nPaper claim check: queries up to the 80th bytes percentile are \
         responsible for ~80% of credits under minimum-slice billing \
         (measured: {:.1}%).",
        p80_cost * 100.0
    );
}
