//! Shared verified buffer pool vs private per-engine caches.
//!
//! Two `Lakehouse` engines open the same on-disk warehouse — the paper's
//! "several function containers over one object store" shape collapsed into
//! one process. With private caches (the seed behaviour) each engine pays
//! the full cold read for every footer, manifest, and data file. With one
//! shared `BufferPool` the first engine's reads warm the pool for everyone:
//! the second engine's cold query should fetch (almost) nothing from the
//! backend.
//!
//! The corpus is 24 data files of 2 000 rows; every query is the same
//! scan→aggregate. For each mode we report the second engine's backend
//! traffic (gets and bytes) plus the pool's own hit/admission counters.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin pool_sharing --release`
//! (writes `BENCH_pool.json` in the working directory).

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use bauplan_core::{BufferPool, Lakehouse, LakehouseConfig};
use lakehouse_bench::print_rows;
use lakehouse_columnar::{Column, DataType, Field, RecordBatch, Schema};
use std::sync::Arc;

const FILES: usize = 24;
const ROWS_PER_FILE: usize = 2_000;
const POOL_BYTES: usize = 64 << 20;

const SQL: &str = "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM events GROUP BY grp ORDER BY grp";

fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bench_pool_sharing_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus_batch(file: usize) -> RecordBatch {
    let base = (file * ROWS_PER_FILE) as i64;
    RecordBatch::try_new(
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("grp", DataType::Int64, false),
            Field::new("val", DataType::Float64, false),
        ]),
        vec![
            Column::from_i64((0..ROWS_PER_FILE as i64).map(|i| base + i).collect()),
            Column::from_i64((0..ROWS_PER_FILE as i64).map(|i| (base + i) % 16).collect()),
            Column::from_f64(
                (0..ROWS_PER_FILE as i64)
                    .map(|i| (base + i) as f64 * 0.25)
                    .collect(),
            ),
        ],
    )
    .expect("corpus batch")
}

fn populate(dir: &std::path::Path) {
    let lh = Lakehouse::on_disk(dir, LakehouseConfig::zero_latency()).expect("setup engine");
    for file in 0..FILES {
        let batch = corpus_batch(file);
        if file == 0 {
            lh.create_table("events", &batch, "main").expect("create");
        } else {
            lh.append_table("events", &batch, "main").expect("append");
        }
    }
}

fn config(pool: Option<&Arc<BufferPool>>) -> LakehouseConfig {
    LakehouseConfig {
        shared_pool: pool.map(Arc::clone),
        ..LakehouseConfig::zero_latency()
    }
}

struct EngineStats {
    gets: u64,
    bytes: u64,
    rows: usize,
}

/// Open a fresh engine over `dir` and run the query once, cold, reporting
/// the backend traffic that engine itself generated.
fn cold_query(dir: &std::path::Path, cfg: LakehouseConfig) -> EngineStats {
    let lh = Lakehouse::on_disk(dir, cfg).expect("engine");
    let m = lh.store_metrics();
    let (gets0, bytes0) = (m.gets(), m.bytes_read());
    let batch = lh.query(SQL, "main").expect("query");
    EngineStats {
        gets: m.gets() - gets0,
        bytes: m.bytes_read() - bytes0,
        rows: batch.num_rows(),
    }
}

fn main() {
    println!("=== shared buffer pool vs private caches ({FILES} files, 2 engines) ===");
    let dir = scratch_dir();
    populate(&dir);

    // Private caches: each engine starts cold against the backend.
    let private_first = cold_query(&dir, config(None));
    let private_second = cold_query(&dir, config(None));

    // Shared pool: the first engine warms it for the second.
    let pool = Arc::new(BufferPool::new(POOL_BYTES));
    let shared_first = cold_query(&dir, config(Some(&pool)));
    let hits_before_second = pool.metrics().hits();
    let shared_second = cold_query(&dir, config(Some(&pool)));
    let second_pool_hits = pool.metrics().hits() - hits_before_second;

    assert_eq!(
        private_first.rows, shared_second.rows,
        "modes disagree on the result"
    );
    let pm = pool.metrics();
    let lookups = pm.hits() + pm.misses();
    let pool_hit_rate = if lookups == 0 {
        0.0
    } else {
        pm.hits() as f64 / lookups as f64
    };
    let bytes_saved = private_second.bytes.saturating_sub(shared_second.bytes);

    print_rows(
        "second engine's backend traffic, private caches vs one shared pool",
        &["mode", "engine", "backend gets", "backend bytes", "rows"],
        &[
            vec![
                "private".into(),
                "first".into(),
                format!("{}", private_first.gets),
                format!("{}", private_first.bytes),
                format!("{}", private_first.rows),
            ],
            vec![
                "private".into(),
                "second".into(),
                format!("{}", private_second.gets),
                format!("{}", private_second.bytes),
                format!("{}", private_second.rows),
            ],
            vec![
                "shared".into(),
                "first".into(),
                format!("{}", shared_first.gets),
                format!("{}", shared_first.bytes),
                format!("{}", shared_first.rows),
            ],
            vec![
                "shared".into(),
                "second".into(),
                format!("{}", shared_second.gets),
                format!("{}", shared_second.bytes),
                format!("{}", shared_second.rows),
            ],
        ],
    );

    let json = format!(
        "{{\n  \"bench\": \"pool_sharing\",\n  \"files\": {FILES},\n  \"rows_per_file\": {ROWS_PER_FILE},\n  \"pool_capacity_bytes\": {POOL_BYTES},\n  \"summary\": {{\n    \"private_second_engine_backend_gets\": {},\n    \"private_second_engine_backend_bytes\": {},\n    \"shared_second_engine_backend_gets\": {},\n    \"shared_second_engine_backend_bytes\": {},\n    \"shared_second_engine_pool_hits\": {},\n    \"bytes_saved_by_sharing\": {},\n    \"pool_hit_rate\": {:.4}\n  }},\n  \"pool\": {{\n    \"hits\": {},\n    \"misses\": {},\n    \"admitted\": {},\n    \"rejected\": {},\n    \"evicted_bytes\": {},\n    \"verify_failures\": {},\n    \"resident_bytes\": {}\n  }}\n}}\n",
        private_second.gets,
        private_second.bytes,
        shared_second.gets,
        shared_second.bytes,
        second_pool_hits,
        bytes_saved,
        pool_hit_rate,
        pm.hits(),
        pm.misses(),
        pm.admitted(),
        pm.rejected(),
        pm.evicted_bytes(),
        pm.verify_failures(),
        pm.resident_bytes(),
    );
    std::fs::write("BENCH_pool.json", &json).expect("write BENCH_pool.json");
    println!("\nwrote BENCH_pool.json");
    println!(
        "second engine backend bytes: private={} shared={} (saved {}); pool hit rate {:.0}%",
        private_second.bytes,
        shared_second.bytes,
        bytes_saved,
        pool_hit_rate * 100.0
    );

    let _ = std::fs::remove_dir_all(&dir);
}
