//! Tracing overhead on the hot path: disabled tracing must cost < 2% of the
//! 24-file scan-filter-aggregate query (the PR 2 parallel-scan baseline).
//!
//! With no trace active, every instrumentation point is one relaxed atomic
//! load returning a noop guard. This bench measures that cost directly — a
//! microbenchmark of the noop span — then scales it by the number of
//! instrumentation events a real traced run of the query records (span tree
//! size, with a 4x margin for the per-batch `is_recording` checks) and
//! divides by the median wall time of the query itself. The resulting
//! disabled-overhead fraction is asserted `< 2%`. The enabled (forced-trace)
//! overhead is reported for information.
//!
//! The always-on flight recorder gets the same treatment: its per-event cost
//! (one try-lock + ring-slot write) is microbenchmarked, scaled by the number
//! of events one query actually records (delta of `events.recorded`), and
//! asserted `< 2%` of the query. A `telemetry_query` step times the
//! `system.queries` virtual scan itself.
//!
//! Regenerate: `cargo run -p lakehouse-bench --bin obs_overhead --release`
//! (writes `BENCH_obs.json` in the working directory). `--files` and
//! `--rows` override the table shape (defaults 24 × 4000).

// Examples and benches print their results.
#![allow(clippy::print_stdout)]

use bauplan_core::{Lakehouse, LakehouseConfig};
use lakehouse_bench::print_rows;
use lakehouse_columnar::{Column, DataType, Field, RecordBatch, Schema};
use lakehouse_store::LatencyModel;
use lakehouse_table::PartitionSpec;
use std::time::Instant;

const AGG_SQL: &str = "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM events \
                       WHERE val < 1.0e9 GROUP BY grp ORDER BY grp";

/// The PR 2 scan-pipeline fixture: an `events` table spanning `files`
/// identity-partition data files of `rows_per` rows each. Store latency is
/// simulated-clock only, so wall-time medians measure compute, not sleeps.
fn build(files: usize, rows_per: usize) -> Lakehouse {
    let config = LakehouseConfig {
        latency: LatencyModel {
            sigma: 0.0,
            ..LatencyModel::s3_like()
        },
        stream_execution: true,
        stream_batch_rows: 1 << 20,
        ..Default::default()
    };
    let lh = Lakehouse::in_memory(config).expect("lakehouse");
    let total = files * rows_per;
    let batch = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("part", DataType::Int64, false),
            Field::new("grp", DataType::Int64, false),
            Field::new("val", DataType::Float64, false),
        ]),
        vec![
            Column::from_i64((0..total).map(|i| (i / rows_per) as i64).collect()),
            Column::from_i64((0..total).map(|i| (i % 7) as i64).collect()),
            Column::from_f64((0..total).map(|i| i as f64 * 0.5).collect()),
        ],
    )
    .expect("fixture batch");
    lh.create_table_partitioned("events", &batch, "main", PartitionSpec::identity("part"))
        .expect("create table");
    lh
}

fn parse_args() -> (usize, usize) {
    let mut files = 24usize;
    let mut rows = 4_000usize;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let parse = |v: Option<&String>, flag: &str| -> usize {
            v.and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("{flag} expects a number"))
        };
        match argv[i].as_str() {
            "--files" => {
                files = parse(argv.get(i + 1), "--files").max(2);
                i += 1;
            }
            "--rows" => {
                rows = parse(argv.get(i + 1), "--rows").max(1);
                i += 1;
            }
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }
    (files, rows)
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let (files, rows_per) = parse_args();
    println!("=== tracing overhead on {files} files x {rows_per} rows ===");
    let lh = build(files, rows_per);

    // Noop-span microbenchmark: the entire disabled-tracing code path.
    const SPAN_ITERS: u64 = 1_000_000;
    let t0 = Instant::now();
    for _ in 0..SPAN_ITERS {
        std::hint::black_box(lakehouse_obs::span("noop"));
    }
    let noop_span_ns = t0.elapsed().as_nanos() as f64 / SPAN_ITERS as f64;

    // How many spans does one traced run of the query record?
    let (_, tree) = lh.profile(AGG_SQL, "main").expect("traced query");
    let spans_per_query = tree.spans.len();
    // Margin for per-batch `is_recording` checks and attr guards.
    let events_per_query = spans_per_query * 4;

    // Median wall time of the query with tracing disabled (the normal path)
    // and with a forced trace (the `profile` path), after a warmup each.
    const QUERY_ITERS: usize = 30;
    let mut disabled = Vec::with_capacity(QUERY_ITERS);
    let mut enabled = Vec::with_capacity(QUERY_ITERS);
    for _ in 0..QUERY_ITERS {
        let t = Instant::now();
        std::hint::black_box(lh.query(AGG_SQL, "main").expect("query"));
        disabled.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        std::hint::black_box(lh.profile(AGG_SQL, "main").expect("profile"));
        enabled.push(t.elapsed().as_nanos() as u64);
    }
    let disabled_ns = median(disabled);
    let enabled_ns = median(enabled);

    let overhead = noop_span_ns * events_per_query as f64 / disabled_ns as f64;
    let enabled_overhead = (enabled_ns as f64 - disabled_ns as f64) / disabled_ns as f64;

    // Flight-recorder cost: one attributed event on the hot path.
    const REC_ITERS: u64 = 500_000;
    let ctx = lakehouse_obs::QueryCtx::new("bench", "obs_overhead");
    let _attributed = ctx.enter();
    let t0 = Instant::now();
    for i in 0..REC_ITERS {
        lakehouse_obs::recorder().record(lakehouse_obs::EventKind::StoreOp, "get", i);
    }
    let record_ns = t0.elapsed().as_nanos() as f64 / REC_ITERS as f64;
    drop(_attributed);

    // How many events does one query actually record?
    let recorded0 = lakehouse_obs::global().counter("events.recorded").get();
    lh.query(AGG_SQL, "main").expect("query");
    let events_recorded = lakehouse_obs::global().counter("events.recorded").get() - recorded0;
    let recorder_overhead = record_ns * events_recorded as f64 / disabled_ns as f64;

    // The telemetry path itself: querying the flight recorder back out as SQL.
    const TELEMETRY_SQL: &str = "SELECT query_id, io_bytes, pool_hits FROM system.queries \
                                 ORDER BY io_bytes DESC LIMIT 5";
    let mut telemetry = Vec::with_capacity(QUERY_ITERS);
    for _ in 0..QUERY_ITERS {
        let t = Instant::now();
        std::hint::black_box(lh.query(TELEMETRY_SQL, "main").expect("telemetry query"));
        telemetry.push(t.elapsed().as_nanos() as u64);
    }
    let telemetry_ns = median(telemetry);

    print_rows(
        "disabled-tracing overhead on the 24-file scan query",
        &["metric", "value"],
        &[
            vec!["noop span (ns)".into(), format!("{noop_span_ns:.2}")],
            vec![
                "spans per traced query".into(),
                format!("{spans_per_query}"),
            ],
            vec![
                "events budgeted (4x margin)".into(),
                format!("{events_per_query}"),
            ],
            vec![
                "median query, tracing off".into(),
                format!("{:.3} ms", disabled_ns as f64 / 1e6),
            ],
            vec![
                "median query, forced trace".into(),
                format!("{:.3} ms", enabled_ns as f64 / 1e6),
            ],
            vec![
                "disabled overhead".into(),
                format!("{:.5}%", overhead * 100.0),
            ],
            vec![
                "enabled overhead (info)".into(),
                format!("{:.2}%", enabled_overhead * 100.0),
            ],
            vec!["recorder event (ns)".into(), format!("{record_ns:.2}")],
            vec![
                "events recorded per query".into(),
                format!("{events_recorded}"),
            ],
            vec![
                "recorder-on overhead".into(),
                format!("{:.5}%", recorder_overhead * 100.0),
            ],
            vec![
                "median system.queries scan".into(),
                format!("{:.3} ms", telemetry_ns as f64 / 1e6),
            ],
        ],
    );

    assert!(
        overhead < 0.02,
        "disabled-tracing overhead {:.4}% exceeds the 2% budget \
         (noop span {noop_span_ns:.2} ns x {events_per_query} events vs \
         {disabled_ns} ns query)",
        overhead * 100.0
    );
    assert!(
        recorder_overhead < 0.02,
        "flight-recorder overhead {:.4}% exceeds the 2% budget \
         ({record_ns:.2} ns x {events_recorded} events vs {disabled_ns} ns query)",
        recorder_overhead * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"files\": {files},\n  \"rows_per_file\": {rows_per},\n  \"query\": \"scan-filter-aggregate\",\n  \"summary\": {{\n    \"noop_span_ns\": {noop_span_ns:.3},\n    \"spans_per_query\": {spans_per_query},\n    \"events_budgeted\": {events_per_query},\n    \"median_query_ns_tracing_off\": {disabled_ns},\n    \"median_query_ns_forced_trace\": {enabled_ns},\n    \"disabled_overhead_fraction\": {overhead:.8},\n    \"enabled_overhead_fraction\": {enabled_overhead:.6},\n    \"recorder_event_ns\": {record_ns:.3},\n    \"recorder_events_per_query\": {events_recorded},\n    \"recorder_overhead_fraction\": {recorder_overhead:.8},\n    \"median_telemetry_query_ns\": {telemetry_ns},\n    \"budget_fraction\": 0.02,\n    \"within_budget\": true\n  }}\n}}\n"
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("\nwrote BENCH_obs.json");
    println!(
        "disabled tracing costs {:.5}% of the query ({} spans x {:.2} ns, 4x margin)",
        overhead * 100.0,
        spans_per_query,
        noop_span_ns
    );
}
